#include "v2x/citynet.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace aseck::v2x {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}
std::uint64_t fnv1a_d(std::uint64_t h, double v) {
  return fnv1a(h, std::bit_cast<std::uint64_t>(v));
}
}  // namespace

std::uint32_t MetroWorld::temp_id_for(std::uint64_t id, std::uint32_t rotation) {
  util::SplitMix64 sm(id ^ (static_cast<std::uint64_t>(rotation) *
                            0x9e3779b97f4a7c15ULL));
  return static_cast<std::uint32_t>(sm.next());
}

crypto::EcdsaPrivateKey MetroWorld::beacon_key(std::uint64_t id,
                                               std::uint32_t rotation) {
  // Fixed-size buffer (21-byte tag + be64 id + be32 rotation) instead of a
  // util::Bytes insert: GCC 12 -O2 misjudges the vector range-insert here
  // and raises a spurious -Wstringop-overflow under -Werror.
  static constexpr char kTag[] = "aseck.metro.beacon.v1";
  std::array<std::uint8_t, 21 + 8 + 4> seed{};
  std::memcpy(seed.data(), kTag, 21);
  for (std::size_t i = 0; i < 8; ++i) {
    seed[21 + i] = static_cast<std::uint8_t>(id >> (8 * (7 - i)));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    seed[29 + i] = static_cast<std::uint8_t>(rotation >> (8 * (3 - i)));
  }
  const crypto::Digest secret =
      crypto::sha256(util::BytesView(seed.data(), seed.size()));
  return crypto::EcdsaPrivateKey::from_secret(
      util::BytesView(secret.data(), secret.size()));
}

crypto::Digest MetroWorld::beacon_digest(std::uint64_t id,
                                         std::uint32_t rotation,
                                         std::uint32_t temp_id) {
  util::Bytes b;
  util::append_be(b, id, 8);
  util::append_be(b, rotation, 4);
  util::append_be(b, temp_id, 4);
  return crypto::sha256(b);
}

MetroWorld::MetroWorld(MetroConfig cfg) : cfg_(cfg) {
  if (cfg_.cell_m < cfg_.range_m) {
    throw std::invalid_argument(
        "MetroWorld: cell_m must be >= range_m (spill covers only the 8 "
        "adjacent cells)");
  }
  if (cfg_.slots == 0 || cfg_.bsm_period.ns % cfg_.slots != 0) {
    throw std::invalid_argument("MetroWorld: slots must divide bsm_period");
  }
  sim::ShardedWorldConfig wc;
  wc.width_m = cfg_.width_m;
  wc.height_m = cfg_.height_m;
  wc.cell_m = cfg_.cell_m;
  wc.epoch = cfg_.epoch;
  wc.threads = cfg_.threads;
  wc.seed = cfg_.seed;
  wc.trace_capacity = 256;
  world_ = std::make_unique<sim::ShardedWorld>(wc);

  locals_.resize(world_->shard_count());
  for (std::uint32_t i = 0; i < world_->shard_count(); ++i) {
    sim::MetricsRegistry& m = world_->shard(i).metrics();
    ShardLocal& l = locals_[i];
    l.bsm_tx = &m.counter("city.bsm_tx");
    l.rx = &m.counter("city.rx");
    l.rx_cross = &m.counter("city.rx_cross");
    l.lost = &m.counter("city.lost");
    l.migrations = &m.counter("city.migrations");
    l.rotations = &m.counter("city.rotations");
    l.bytes_tx = &m.counter("city.bytes_tx");
    if (cfg_.real_crypto) {
      l.crypto = std::make_unique<ShardCrypto>();
      ShardCrypto& sc = *l.crypto;
      sc.engine.set_cache_capacity(cfg_.crypto_cache_capacity);
      sc.engine.set_batch_kernel(true);
      sc.engine.bind_metrics(m);
      sc.pubs.set_capacity(cfg_.crypto_cache_capacity);
      sc.admitted.set_capacity(cfg_.crypto_cache_capacity);
      sc.signs = &m.counter("city.crypto.signs");
      sc.admit_hits = &m.counter("city.crypto.admit_hits");
      sc.enqueued = &m.counter("city.crypto.enqueued");
      sc.verified_ok = &m.counter("city.crypto.verified_ok");
      sc.verified_fail = &m.counter("city.crypto.verified_fail");
    }
  }

  // Placement draws from the bare master seed; shard streams use
  // Rng::for_stream-derived seeds, so the sequences are unrelated.
  util::Rng place(cfg_.seed);
  for (std::size_t i = 0; i < cfg_.vehicles; ++i) {
    CityVehicle v;
    v.id = i;
    v.x = place.uniform_real(0.0, cfg_.width_m);
    v.y = place.uniform_real(0.0, cfg_.height_m);
    const double speed = place.uniform_real(cfg_.min_speed_mps,
                                            cfg_.max_speed_mps);
    const double heading = place.uniform_real(0.0, kTwoPi);
    v.vx = speed * std::cos(heading);
    v.vy = speed * std::sin(heading);
    v.t0 = util::SimTime::zero();
    v.temp_id = temp_id_for(i, 0);
    // Stagger first rotations across 16 phases of the period.
    v.next_rotation = util::SimTime::from_ns(
        cfg_.pseudonym_period.ns / 16 * ((i % 16) + 1));
    locals_[world_->shard_index_at(v.x, v.y)].vehicles.push_back(v);
  }

  const util::SimTime slot_period =
      util::SimTime::from_ns(cfg_.bsm_period.ns / cfg_.slots);
  tick_tasks_.reserve(world_->shard_count());
  for (std::uint32_t i = 0; i < world_->shard_count(); ++i) {
    tick_tasks_.push_back(std::make_unique<sim::PeriodicTask>(
        world_->shard(i).sched(), slot_period, [this, i] { tick(i); },
        util::SimTime::zero()));
  }
}

MetroWorld::~MetroWorld() = default;

void MetroWorld::run_until(util::SimTime until) {
  world_->run_until(until);
  // Cross-shard spills processed after a shard's last tick can leave checks
  // pending; drain them so every observation point sees settled crypto.
  if (cfg_.real_crypto) {
    for (ShardLocal& l : locals_) flush_crypto(l);
  }
}

void MetroWorld::flush_crypto(ShardLocal& local) {
  ShardCrypto& sc = *local.crypto;
  if (sc.pending.empty()) return;
  std::vector<crypto::VerifyEngine::BatchItem> items;
  items.reserve(sc.pending.size());
  for (const ShardCrypto::PendingItem& p : sc.pending) {
    items.push_back({&p.pub, p.digest, &p.sig});
  }
  const std::vector<bool> ok = sc.engine.verify_batch(items);
  for (std::size_t i = 0; i < ok.size(); ++i) {
    if (ok[i]) {
      sc.verified_ok->inc();
      sc.admitted.put(sc.pending[i].key, 1);
    } else {
      sc.verified_fail->inc();
    }
  }
  sc.pending.clear();
}

void MetroWorld::receive_scan(sim::Shard& shard, ShardLocal& local, double sx,
                              double sy, std::uint64_t sender_id, bool cross,
                              std::uint32_t sender_rotation,
                              std::uint32_t sender_temp_id,
                              const crypto::EcdsaSignature& sender_sig) {
  const double r2 = cfg_.range_m * cfg_.range_m;
  std::uint64_t got = 0, lost = 0, crossed = 0;
  for (const CityVehicle& u : local.vehicles) {
    if (u.id == sender_id) continue;
    const double dx = u.x - sx, dy = u.y - sy;
    if (dx * dx + dy * dy > r2) continue;
    if (cfg_.loss_prob > 0 && shard.rng().chance(cfg_.loss_prob)) {
      ++lost;
      continue;
    }
    ++got;
    if (cross) ++crossed;
    if (local.crypto) {
      // Every receiver checks the sender's rotation beacon; the shard-wide
      // admitted cache makes all but the first check per (sender, rotation)
      // a hit — the amortization real 1609.2 stacks get from verify-result
      // caching, at city scale.
      ShardCrypto& sc = *local.crypto;
      const std::uint64_t key = (sender_id << 32) | sender_rotation;
      if (sc.admitted.find(key)) {
        sc.admit_hits->inc();
        continue;
      }
      const crypto::EcdsaPublicKey* pub = sc.pubs.find(key);
      if (!pub) {
        sc.pubs.put(key, beacon_key(sender_id, sender_rotation).public_key());
        pub = sc.pubs.find(key);
      }
      sc.pending.push_back(
          {key, *pub, beacon_digest(sender_id, sender_rotation, sender_temp_id),
           sender_sig});
      sc.enqueued->inc();
      if (sc.pending.size() >= cfg_.crypto_batch) flush_crypto(local);
    }
  }
  if (got) local.rx->inc(got);
  if (crossed) local.rx_cross->inc(crossed);
  if (lost) local.lost->inc(lost);
}

void MetroWorld::send_bsm(sim::Shard& shard, ShardLocal& local,
                          const CityVehicle& v, util::SimTime now) {
  local.bsm_tx->inc();
  local.bytes_tx->inc(cfg_.bsm_wire_bytes);
  receive_scan(shard, local, v.x, v.y, v.id, /*cross=*/false, v.rotations,
               v.temp_id, v.beacon_sig);

  // Spill into every adjacent cell the range circle overlaps: the
  // destination shard scans its own vehicle list at the next epoch
  // boundary.
  const double cell = cfg_.cell_m, r = cfg_.range_m;
  const std::int32_t col = static_cast<std::int32_t>(shard.col());
  const std::int32_t row = static_cast<std::int32_t>(shard.row());
  const double sx = v.x, sy = v.y;
  const std::uint64_t sid = v.id;
  const std::uint32_t srot = v.rotations, stid = v.temp_id;
  const crypto::EcdsaSignature ssig = v.beacon_sig;
  for (std::int32_t dr = -1; dr <= 1; ++dr) {
    const std::int32_t nr = row + dr;
    if (nr < 0 || nr >= static_cast<std::int32_t>(world_->rows())) continue;
    for (std::int32_t dc = -1; dc <= 1; ++dc) {
      if (dr == 0 && dc == 0) continue;
      const std::int32_t nc = col + dc;
      if (nc < 0 || nc >= static_cast<std::int32_t>(world_->cols())) continue;
      // Distance from the sender to the neighbor cell's rectangle.
      const double nx0 = nc * cell, ny0 = nr * cell;
      const double ddx = std::max({nx0 - sx, 0.0, sx - (nx0 + cell)});
      const double ddy = std::max({ny0 - sy, 0.0, sy - (ny0 + cell)});
      if (ddx * ddx + ddy * ddy > r * r) continue;
      const std::uint32_t to =
          static_cast<std::uint32_t>(nr) * world_->cols() +
          static_cast<std::uint32_t>(nc);
      shard.post(to, now, [this, sx, sy, sid, srot, stid, ssig](sim::Shard& d) {
        receive_scan(d, locals_[d.index()], sx, sy, sid, /*cross=*/true, srot,
                     stid, ssig);
      });
    }
  }
}

void MetroWorld::tick(std::uint32_t shard_index) {
  sim::Shard& shard = world_->shard(shard_index);
  ShardLocal& local = locals_[shard_index];
  const util::SimTime now = shard.sched().now();
  const unsigned slot =
      static_cast<unsigned>(local.tick % cfg_.slots);
  ++local.tick;

  auto& vs = local.vehicles;
  std::vector<char> dead;  // lazily sized on first migration
  for (std::size_t vi = 0; vi < vs.size(); ++vi) {
    CityVehicle& v = vs[vi];
    if (v.id % cfg_.slots != slot) continue;

    // Advance the straight segment; bounce off the world box.
    const double dt = (now - v.t0).seconds();
    double x = v.x + v.vx * dt, y = v.y + v.vy * dt;
    if (x < 0) {
      x = -x;
      v.vx = -v.vx;
    } else if (x > cfg_.width_m) {
      x = 2 * cfg_.width_m - x;
      v.vx = -v.vx;
    }
    if (y < 0) {
      y = -y;
      v.vy = -v.vy;
    } else if (y > cfg_.height_m) {
      y = 2 * cfg_.height_m - y;
      v.vy = -v.vy;
    }
    v.x = x;
    v.y = y;
    v.t0 = now;

    if (now >= v.next_rotation) {
      ++v.rotations;
      v.temp_id = temp_id_for(v.id, v.rotations);
      v.next_rotation += cfg_.pseudonym_period;
      local.rotations->inc();
      v.beacon_signed = 0;  // new pseudonym, new beacon to sign
    }

    if (local.crypto && !v.beacon_signed) {
      v.beacon_sig = beacon_key(v.id, v.rotations)
                         .sign_digest(beacon_digest(v.id, v.rotations,
                                                    v.temp_id));
      v.beacon_signed = 1;
      local.crypto->signs->inc();
    }

    send_bsm(shard, local, v, now);

    const std::uint32_t dst = world_->shard_index_at(v.x, v.y);
    if (dst != shard_index) {
      if (dead.empty()) dead.assign(vs.size(), 0);
      dead[vi] = 1;
      local.migrations->inc();
      const CityVehicle mv = v;
      shard.post(dst, now, [this, mv](sim::Shard& d) {
        locals_[d.index()].vehicles.push_back(mv);
      });
    }
  }
  if (!dead.empty()) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < vs.size(); ++r) {
      if (!dead[r]) {
        if (w != r) vs[w] = vs[r];
        ++w;
      }
    }
    vs.resize(w);
  }
  // Deterministic flush point: whatever this tick (and any cross-shard
  // spills processed since the last one) accumulated gets batch-verified
  // now, so admitted-cache state depends only on the workload order.
  if (local.crypto) flush_crypto(local);
}

MetroWorld::Totals MetroWorld::totals() const {
  Totals t;
  for (const ShardLocal& l : locals_) {
    t.bsm_tx += l.bsm_tx->value();
    t.rx += l.rx->value();
    t.rx_cross += l.rx_cross->value();
    t.lost += l.lost->value();
    t.migrations += l.migrations->value();
    t.rotations += l.rotations->value();
    t.bytes_tx += l.bytes_tx->value();
    if (l.crypto) {
      t.beacon_signs += l.crypto->signs->value();
      t.admit_hits += l.crypto->admit_hits->value();
      t.verify_enqueued += l.crypto->enqueued->value();
      t.verify_fail += l.crypto->verified_fail->value();
    }
  }
  t.cross_msgs = world_->messages();
  return t;
}

std::uint64_t MetroWorld::state_hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const ShardLocal& l : locals_) {
    h = fnv1a(h, l.vehicles.size());
    for (const CityVehicle& v : l.vehicles) {
      h = fnv1a(h, v.id);
      h = fnv1a(h, v.temp_id);
      h = fnv1a(h, v.rotations);
      h = fnv1a_d(h, v.x);
      h = fnv1a_d(h, v.y);
      h = fnv1a_d(h, v.vx);
      h = fnv1a_d(h, v.vy);
      h = fnv1a(h, v.t0.ns);
    }
  }
  return h;
}

double MetroWorld::bytes_per_vehicle() const {
  std::size_t bytes = 0;
  for (const ShardLocal& l : locals_) {
    bytes += l.vehicles.capacity() * sizeof(CityVehicle) + sizeof(ShardLocal);
  }
  bytes += world_->shard_count() * sizeof(sim::Shard);
  return cfg_.vehicles ? static_cast<double>(bytes) /
                             static_cast<double>(cfg_.vehicles)
                       : 0.0;
}

std::string MetroWorld::digest_json() const {
  const Totals t = totals();
  char buf[64];
  std::string out = "{\"config\":{";
  out += "\"vehicles\":" + std::to_string(cfg_.vehicles);
  auto add_d = [&](const char* k, double v) {
    std::snprintf(buf, sizeof buf, ",\"%s\":%.17g", k, v);
    out += buf;
  };
  add_d("width_m", cfg_.width_m);
  add_d("height_m", cfg_.height_m);
  add_d("cell_m", cfg_.cell_m);
  add_d("range_m", cfg_.range_m);
  add_d("loss_prob", cfg_.loss_prob);
  out += ",\"bsm_period_ns\":" + std::to_string(cfg_.bsm_period.ns);
  out += ",\"slots\":" + std::to_string(cfg_.slots);
  out += ",\"epoch_ns\":" + std::to_string(cfg_.epoch.ns);
  out += ",\"pseudonym_period_ns\":" + std::to_string(cfg_.pseudonym_period.ns);
  out += ",\"seed\":" + std::to_string(cfg_.seed);
  out += cfg_.real_crypto ? ",\"real_crypto\":true" : ",\"real_crypto\":false";
  out += "},\"shards\":" + std::to_string(world_->shard_count());
  out += ",\"epochs\":" + std::to_string(world_->epochs());
  out += ",\"totals\":{";
  out += "\"bsm_tx\":" + std::to_string(t.bsm_tx);
  out += ",\"rx\":" + std::to_string(t.rx);
  out += ",\"rx_cross\":" + std::to_string(t.rx_cross);
  out += ",\"lost\":" + std::to_string(t.lost);
  out += ",\"migrations\":" + std::to_string(t.migrations);
  out += ",\"rotations\":" + std::to_string(t.rotations);
  out += ",\"bytes_tx\":" + std::to_string(t.bytes_tx);
  out += ",\"cross_msgs\":" + std::to_string(t.cross_msgs);
  out += ",\"beacon_signs\":" + std::to_string(t.beacon_signs);
  out += ",\"admit_hits\":" + std::to_string(t.admit_hits);
  out += ",\"verify_enqueued\":" + std::to_string(t.verify_enqueued);
  out += ",\"verify_fail\":" + std::to_string(t.verify_fail);
  out += "}";
  std::snprintf(buf, sizeof buf, ",\"state_hash\":\"%016llx\"",
                static_cast<unsigned long long>(state_hash()));
  out += buf;
  out += ",\"metrics\":" + world_->merged_metrics_json();
  out += "}";
  return out;
}

}  // namespace aseck::v2x
