#include "v2x/dcc.hpp"

namespace aseck::v2x {

const char* dcc_state_name(DccState s) {
  switch (s) {
    case DccState::kRelaxed: return "relaxed";
    case DccState::kActive1: return "active1";
    case DccState::kActive2: return "active2";
    case DccState::kRestrictive: return "restrictive";
  }
  return "?";
}

DccState DccController::target_for(double cbr) const {
  if (cbr < th_.relaxed_below) return DccState::kRelaxed;
  if (cbr < th_.active1_below) return DccState::kActive1;
  if (cbr < th_.active2_below) return DccState::kActive2;
  return DccState::kRestrictive;
}

DccState DccController::update(double cbr, util::SimTime now) {
  const DccState target = target_for(cbr);
  if (rank(target) > rank(state_)) {
    // Escalate immediately.
    state_ = target;
    ++transitions_;
    tracking_down_ = false;
  } else if (rank(target) < rank(state_)) {
    if (!tracking_down_) {
      tracking_down_ = true;
      below_since_ = now;
    } else if (now - below_since_ >= down_dwell) {
      // Step down one state at a time (ETSI ramp-down behavior).
      state_ = static_cast<DccState>(rank(state_) - 1);
      ++transitions_;
      below_since_ = now;
      if (state_ == target) tracking_down_ = false;
    }
  } else {
    tracking_down_ = false;
  }
  return state_;
}

util::SimTime DccController::beacon_interval() const {
  switch (state_) {
    case DccState::kRelaxed: return util::SimTime::from_ms(100);      // 10 Hz
    case DccState::kActive1: return util::SimTime::from_ms(200);      // 5 Hz
    case DccState::kActive2: return util::SimTime::from_ms(400);      // 2.5 Hz
    case DccState::kRestrictive: return util::SimTime::from_ms(1000); // 1 Hz
  }
  return util::SimTime::from_ms(100);
}

void CbrEstimator::on_air(util::SimTime now, util::SimTime airtime) {
  if (now - window_start_ >= window_) {
    last_cbr_ = static_cast<double>(busy_in_window_.ns) /
                static_cast<double>(window_.ns);
    if (last_cbr_ > 1.0) last_cbr_ = 1.0;
    window_start_ = now;
    busy_in_window_ = util::SimTime::zero();
  }
  busy_in_window_ += airtime;
}

double CbrEstimator::cbr(util::SimTime now) {
  if (now - window_start_ >= window_) {
    last_cbr_ = static_cast<double>(busy_in_window_.ns) /
                static_cast<double>(window_.ns);
    if (last_cbr_ > 1.0) last_cbr_ = 1.0;
    window_start_ = now;
    busy_in_window_ = util::SimTime::zero();
  }
  return last_cbr_;
}

}  // namespace aseck::v2x
