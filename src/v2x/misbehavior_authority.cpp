#include "v2x/misbehavior_authority.hpp"

namespace aseck::v2x {

util::Bytes MisbehaviorReport::serialize() const {
  util::Bytes out(accused.begin(), accused.end());
  util::append_be(out, reporter_temp_id, 4);
  out.insert(out.end(), reason.begin(), reason.end());
  return out;
}

std::optional<MisbehaviorReport> MisbehaviorReport::parse(util::BytesView b) {
  if (b.size() < 12) return std::nullopt;
  MisbehaviorReport r;
  std::copy(b.begin(), b.begin() + 8, r.accused.begin());
  r.reporter_temp_id = util::load_be32(b.data() + 8);
  r.reason.assign(b.begin() + 12, b.end());
  return r;
}

MisbehaviorAuthority::MisbehaviorAuthority(Crl& crl, const TrustStore& trust,
                                           Config cfg)
    : crl_(crl), trust_(trust), cfg_(cfg) {}

MisbehaviorAuthority::Outcome MisbehaviorAuthority::submit(const Spdu& envelope,
                                                           SimTime now) {
  // The report itself must be authentic. Vehicles report under their
  // pseudonym certificates, which typically carry only the kBsm permission,
  // so the authority accepts either permission on the signer cert — but the
  // SPDU must be signed as a kMisbehaviorReport and fresh-ish (reports may
  // be store-and-forward via RSUs).
  if (envelope.psid != Psid::kMisbehaviorReport) {
    return Outcome::kInvalidEnvelope;
  }
  const Psid accepted_permission = envelope.signer.permits(Psid::kMisbehaviorReport)
                                       ? Psid::kMisbehaviorReport
                                       : Psid::kBsm;
  if (trust_.validate(envelope.signer, now, accepted_permission) !=
      TrustStore::Result::kOk) {
    return Outcome::kInvalidEnvelope;
  }
  if (now > envelope.generation_time + SimTime::from_s(60) ||
      envelope.generation_time > now + SimTime::from_s(1)) {
    return Outcome::kInvalidEnvelope;
  }
  if (!crypto::ecdsa_verify(envelope.signer.verify_key,
                            envelope.signed_portion(), envelope.signature)) {
    return Outcome::kInvalidEnvelope;
  }
  const auto report = MisbehaviorReport::parse(envelope.payload);
  if (!report) return Outcome::kInvalidEnvelope;
  if (crl_.is_revoked(report->accused)) return Outcome::kAlreadyRevoked;

  auto& set = reporters_[report->accused];
  if (!set.insert(report->reporter_temp_id).second) {
    return Outcome::kDuplicateReporter;
  }
  if (set.size() >= cfg_.revocation_threshold) {
    crl_.revoke(report->accused);
    ++revocations_;
    return Outcome::kAcceptedAndRevoked;
  }
  return Outcome::kAccepted;
}

std::size_t MisbehaviorAuthority::distinct_reporters(const CertId& accused) const {
  const auto it = reporters_.find(accused);
  return it == reporters_.end() ? 0 : it->second.size();
}

const char* MisbehaviorAuthority::outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kAccepted: return "accepted";
    case Outcome::kAcceptedAndRevoked: return "accepted_and_revoked";
    case Outcome::kDuplicateReporter: return "duplicate_reporter";
    case Outcome::kInvalidEnvelope: return "invalid_envelope";
    case Outcome::kAlreadyRevoked: return "already_revoked";
  }
  return "?";
}

}  // namespace aseck::v2x
