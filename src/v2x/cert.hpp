#pragma once
// IEEE 1609.2-flavored certificates and PKI for V2X.
//
// Explicit certificates with ECDSA-P256 keys, PSID (application) permissions,
// validity periods, a two-level CA hierarchy (root -> enrollment/pseudonym
// CA), certificate revocation lists, and pseudonym certificate pools used
// for privacy (paper Section 4.2, "Privacy Scenario").

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <memory>

#include "crypto/ecdsa.hpp"
#include "crypto/service.hpp"
#include "crypto/verify_engine.hpp"
#include "util/bytes.hpp"
#include "util/lru.hpp"
#include "util/time.hpp"

namespace aseck::v2x {

using util::SimTime;

/// Provider Service Identifier (application class) — subset used here.
enum class Psid : std::uint32_t {
  kBsm = 0x20,              // vehicle safety messaging
  kIntersection = 0x21,     // SPaT/MAP
  kRoadsideAlert = 0x22,
  kMisbehaviorReport = 0x26,
  kOtaDistribution = 0x80,
};

/// 8-byte certificate identifier (hash of the serialized tbs).
using CertId = std::array<std::uint8_t, 8>;
std::string cert_id_hex(const CertId& id);

struct Certificate {
  std::string subject;            // diagnostic name (not on the wire in 1609.2)
  CertId issuer_id{};             // all-zero = self-signed (root)
  SimTime valid_from = SimTime::zero();
  SimTime valid_until = SimTime::zero();
  std::set<Psid> app_permissions;
  bool is_ca = false;             // may issue certificates
  crypto::EcdsaPublicKey verify_key;
  crypto::EcdsaSignature signature;  // by issuer over tbs_bytes()

  /// To-be-signed serialization (everything except the signature).
  util::Bytes tbs_bytes() const;
  /// Certificate id = first 8 bytes of SHA-256(tbs).
  CertId id() const;
  bool valid_at(SimTime t) const { return t >= valid_from && t <= valid_until; }
  bool permits(Psid p) const { return app_permissions.count(p) > 0; }
};

/// Certificate revocation list.
class Crl {
 public:
  void revoke(const CertId& id) { revoked_.insert(id); }
  bool is_revoked(const CertId& id) const { return revoked_.count(id) > 0; }
  std::size_t size() const { return revoked_.size(); }

 private:
  struct Less {
    bool operator()(const CertId& a, const CertId& b) const { return a < b; }
  };
  std::set<CertId, Less> revoked_;
};

/// A certificate authority: its signing key lives inside a backend
/// CryptoService (never sealed, so issuance keeps working at runtime) and is
/// reachable only through the CA's opaque handle — `issue()` is a service
/// sign call, and nothing outside the service can read the key. Pseudonym
/// *end-entity* keys are different: they are generated for, and handed to,
/// the requesting vehicle — that is the provisioning channel, not a leak.
class CertificateAuthority {
 public:
  /// Creates a self-signed root CA.
  static CertificateAuthority make_root(crypto::Drbg& rng, std::string name,
                                        SimTime valid_until);
  /// Creates a subordinate CA certified by `parent`.
  static CertificateAuthority make_sub(crypto::Drbg& rng, std::string name,
                                       const CertificateAuthority& parent,
                                       SimTime valid_until);

  const Certificate& certificate() const { return cert_; }

  /// Issues an end-entity certificate.
  Certificate issue(const std::string& subject,
                    const crypto::EcdsaPublicKey& key, std::set<Psid> psids,
                    SimTime from, SimTime until, bool is_ca = false) const;

  /// Issues a batch of short-lived pseudonym certificates covering
  /// [from, from + n * lifetime) back-to-back. Each gets a fresh key; the
  /// matching private keys are returned alongside.
  struct PseudonymBatch {
    std::vector<Certificate> certs;
    std::vector<crypto::EcdsaPrivateKey> keys;
  };
  PseudonymBatch issue_pseudonyms(crypto::Drbg& rng, std::size_t n,
                                  SimTime from, SimTime lifetime) const;

  /// The CA's backend HSM (observation: op/denial counters, state).
  const crypto::CryptoService& hsm() const { return *hsm_; }

 private:
  CertificateAuthority(std::shared_ptr<crypto::CryptoService> hsm,
                       crypto::PartitionId part, crypto::KeyHandle key,
                       Certificate cert)
      : hsm_(std::move(hsm)), part_(part), key_(key), cert_(std::move(cert)) {}
  crypto::EcdsaSignature sign_tbs(util::BytesView tbs) const;
  std::shared_ptr<crypto::CryptoService> hsm_;  // CAs are value types; shared
  crypto::PartitionId part_ = 0;
  crypto::KeyHandle key_;
  Certificate cert_;
};

/// Trust store: validates chains ending at a trusted root.
class TrustStore {
 public:
  void add_root(const Certificate& root) { roots_.push_back(root); }
  void add_intermediate(const Certificate& ca) { intermediates_.push_back(ca); }
  void set_crl(const Crl* crl) { crl_ = crl; }

  enum class Result {
    kOk,
    kExpired,
    kRevoked,
    kBadSignature,
    kUnknownIssuer,
    kPermissionDenied,
    kNotCa,
  };

  /// Validates `cert` at time `t` for use with `psid`. Chain signature
  /// checks are cached per certificate id (as production V2X stacks do);
  /// expiry, permissions, and revocation are re-checked on every call.
  Result validate(const Certificate& cert, SimTime t, Psid psid) const;

  static const char* result_name(Result r);

  /// Default bound for the chain-verdict cache. Under pseudonym rotation
  /// every rotation mints a fresh cert id, so an unbounded cache grows
  /// forever; LRU keeps the working set (live pseudonyms) and evicts
  /// retired ones.
  static constexpr std::size_t kDefaultChainCacheCapacity = 4096;
  void set_chain_cache_capacity(std::size_t cap) {
    chain_cache_.set_capacity(cap);
  }
  std::size_t chain_cache_size() const { return chain_cache_.size(); }
  std::uint64_t cache_hits() const { return chain_cache_.hits(); }
  std::uint64_t cache_evictions() const { return chain_cache_.evictions(); }

  /// Routes the expensive chain signature verifications through a shared
  /// VerifyEngine (result cache + crypto.verify.* metrics). Optional; when
  /// unset, ecdsa_verify is called directly.
  void set_verify_engine(crypto::VerifyEngine* engine) { engine_ = engine; }

 private:
  const Certificate* find_issuer(const CertId& id) const;
  Result validate_chain(const Certificate& cert, SimTime t) const;
  std::vector<Certificate> roots_;
  std::vector<Certificate> intermediates_;
  const Crl* crl_ = nullptr;
  crypto::VerifyEngine* engine_ = nullptr;
  // Cache: cert id -> chain-signature verdict (independent of t/psid),
  // bounded LRU so pseudonym churn cannot grow it without limit.
  mutable util::LruCache<CertId, Result> chain_cache_{
      kDefaultChainCacheCapacity};
};

}  // namespace aseck::v2x
