#pragma once
// Uniform-grid spatial index for V2X neighbor discovery.
//
// Replaces the O(N) per-broadcast linear range scan (O(N^2) per simulated
// second of dense traffic) with a hash grid of square cells: a range query
// touches only the cells overlapping the query circle's bounding box, so
// its cost tracks the *local* density, not the world population. Keyed to
// the same cell geometry as the sharded world (sim/sharded.hpp): with
// cell_m >= radio range a query spills into at most the 8 adjacent cells —
// exactly the neighborhoods the epoch batches cover.
//
// Determinism: queries return ids sorted ascending, independent of hash
// layout and insertion history. V2xMedium uses monotonically assigned
// attach sequence numbers as ids, so a sorted query reproduces the linear
// scan's iteration order bit-for-bit (v2x_grid_test.cpp pins this).
//
// The index stores *recorded* positions (from the last insert/update or
// reindex); entities move between refreshes, so callers must query with a
// slack margin covering max_speed * max_staleness and re-check exact
// distances against live positions.

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace aseck::v2x {

class SpatialGrid {
 public:
  explicit SpatialGrid(double cell_m);

  /// Inserts or moves `id` to recorded position (x, y).
  void update(std::uint64_t id, double x, double y);
  /// Removes `id`; no-op if absent.
  void remove(std::uint64_t id);

  /// Appends to `out` every id whose *recorded* position is within
  /// `radius` of (x, y), sorted ascending. `out` is cleared first.
  void query(double x, double y, double radius,
             std::vector<std::uint64_t>& out) const;

  std::size_t size() const { return recs_.size(); }
  double cell_m() const { return cell_; }

  /// Cumulative instrumentation: grid cells visited and candidate records
  /// distance-checked by query() — the E2 old-vs-new discovery-cost metric.
  std::uint64_t cells_scanned() const { return cells_scanned_; }
  std::uint64_t candidates_checked() const { return candidates_checked_; }

 private:
  static std::uint64_t cell_key(std::int64_t cx, std::int64_t cy) {
    // Interleave-free packing: 32 bits per axis, offset to keep negatives
    // distinct.
    return (static_cast<std::uint64_t>(cx + 0x80000000LL) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(
               cy + 0x80000000LL));
  }
  std::int64_t cell_of(double v) const;

  struct Rec {
    double x, y;
    std::uint64_t cell;
  };
  double cell_;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> cells_;
  std::unordered_map<std::uint64_t, Rec> recs_;
  mutable std::uint64_t cells_scanned_ = 0;
  mutable std::uint64_t candidates_checked_ = 0;
};

}  // namespace aseck::v2x
