#include "v2x/grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aseck::v2x {

SpatialGrid::SpatialGrid(double cell_m) : cell_(cell_m) {
  if (!(cell_m > 0)) throw std::invalid_argument("SpatialGrid: bad cell size");
}

std::int64_t SpatialGrid::cell_of(double v) const {
  return static_cast<std::int64_t>(std::floor(v / cell_));
}

void SpatialGrid::update(std::uint64_t id, double x, double y) {
  const std::uint64_t key = cell_key(cell_of(x), cell_of(y));
  auto it = recs_.find(id);
  if (it != recs_.end()) {
    if (it->second.cell == key) {
      it->second.x = x;
      it->second.y = y;
      return;
    }
    auto& old = cells_[it->second.cell];
    old.erase(std::find(old.begin(), old.end(), id));  // swap-free: keep O(k)
    if (old.empty()) cells_.erase(it->second.cell);
    it->second = Rec{x, y, key};
  } else {
    recs_.emplace(id, Rec{x, y, key});
  }
  cells_[key].push_back(id);
}

void SpatialGrid::remove(std::uint64_t id) {
  auto it = recs_.find(id);
  if (it == recs_.end()) return;
  auto& cell = cells_[it->second.cell];
  cell.erase(std::find(cell.begin(), cell.end(), id));
  if (cell.empty()) cells_.erase(it->second.cell);
  recs_.erase(it);
}

void SpatialGrid::query(double x, double y, double radius,
                        std::vector<std::uint64_t>& out) const {
  out.clear();
  if (!(radius >= 0)) return;
  const double r2 = radius * radius;
  const std::int64_t cx0 = cell_of(x - radius), cx1 = cell_of(x + radius);
  const std::int64_t cy0 = cell_of(y - radius), cy1 = cell_of(y + radius);
  for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      const auto it = cells_.find(cell_key(cx, cy));
      ++cells_scanned_;
      if (it == cells_.end()) continue;
      for (const std::uint64_t id : it->second) {
        ++candidates_checked_;
        const Rec& rec = recs_.find(id)->second;
        const double dx = rec.x - x, dy = rec.y - y;
        if (dx * dx + dy * dy <= r2) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

}  // namespace aseck::v2x
