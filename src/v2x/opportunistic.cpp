#include "v2x/opportunistic.hpp"

#include "crypto/sha256.hpp"

namespace aseck::v2x {

DeferredSpduVerifier::DeferredSpduVerifier(sim::Scheduler& sched, Config cfg)
    : sched_(sched), cfg_(cfg), pool_([&cfg] {
        // Jobs are pushed into the pool at flush time, already in canonical
        // (producer, FIFO) order; the pool-side queue needs only one lane.
        crypto::VerifyPoolConfig pc = cfg.pool;
        pc.producers = 1;
        return pc;
      }()) {}

std::size_t DeferredSpduVerifier::add_producer() {
  pending_.emplace_back();
  return pending_.size() - 1;
}

void DeferredSpduVerifier::submit(std::size_t producer, const Spdu& msg,
                                  SimTime admitted_at, Verdict verdict) {
  ++submitted_;
  Pending p{msg, {}, admitted_at, std::move(verdict)};
  const util::Bytes signed_bytes = p.msg.signed_portion();
  p.digest = crypto::sha256(signed_bytes);
  pending_[producer].push_back(std::move(p));
}

void DeferredSpduVerifier::start() {
  flush_task_ = std::make_unique<sim::PeriodicTask>(
      sched_, cfg_.flush_period, [this] { flush(); }, cfg_.flush_period);
}

void DeferredSpduVerifier::stop() {
  flush_task_.reset();
  flush();  // nothing stays provisionally trusted forever
}

std::size_t DeferredSpduVerifier::pending_count() const {
  std::size_t n = 0;
  for (const auto& fifo : pending_) n += fifo.size();
  return n;
}

void DeferredSpduVerifier::flush() {
  if (pending_count() == 0) return;
  // Flat view in canonical order. Deques are stable under no mutation, so
  // the jobs can point straight into the pending entries.
  std::vector<Pending*> flat;
  flat.reserve(pending_count());
  for (auto& fifo : pending_) {
    for (Pending& p : fifo) flat.push_back(&p);
  }
  for (std::size_t i = 0; i < flat.size(); ++i) {
    pool_.queue().push(0, crypto::VerifyJob{&flat[i]->msg.signer.verify_key,
                                            flat[i]->digest,
                                            &flat[i]->msg.signature, i});
  }
  const auto outcomes = pool_.flush();
  const SimTime now = sched_.now();
  for (const crypto::VerifyOutcome& o : outcomes) {
    Pending& p = *flat[o.tag];
    window_us_.add((now - p.admitted_at).seconds() * 1e6);
    if (o.ok) {
      ++confirmed_;
    } else {
      ++revoked_;
    }
    if (p.verdict) p.verdict(o.ok, p.admitted_at, now);
  }
  for (auto& fifo : pending_) fifo.clear();
}

}  // namespace aseck::v2x
