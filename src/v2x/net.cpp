#include "v2x/net.hpp"

#include <algorithm>
#include <cmath>

namespace aseck::v2x {

V2xMedium::V2xMedium(Scheduler& sched, double range_m, double loss_prob,
                     std::uint64_t seed)
    : sched_(sched), range_(range_m), loss_prob_(loss_prob), rng_(seed) {}

void V2xMedium::attach(V2xRadio* radio) {
  radios_.push_back(radio);
  const std::uint64_t seq = next_attach_seq_++;
  attach_seq_[radio] = seq;
  by_seq_[seq] = radio;
  if (grid_) {
    const Position p = radio->position();
    grid_->update(seq, p.x, p.y);
  }
}

void V2xMedium::detach(V2xRadio* radio) {
  radios_.erase(std::remove(radios_.begin(), radios_.end(), radio),
                radios_.end());
  monitors_.erase(std::remove(monitors_.begin(), monitors_.end(), radio),
                  monitors_.end());
  const auto it = attach_seq_.find(radio);
  if (it != attach_seq_.end()) {
    if (grid_) grid_->remove(it->second);
    by_seq_.erase(it->second);
    attach_seq_.erase(it);
  }
}

void V2xMedium::attach_monitor(V2xRadio* radio) { monitors_.push_back(radio); }

void V2xMedium::enable_grid_index(double cell_m, double slack_m) {
  grid_ = std::make_unique<SpatialGrid>(cell_m > 0 ? cell_m : range_);
  grid_slack_ = slack_m;
  reindex_grid();
}

void V2xMedium::reindex_grid() {
  if (!grid_) return;
  for (V2xRadio* r : radios_) {
    const Position p = r->position();
    grid_->update(attach_seq_.find(r)->second, p.x, p.y);
  }
}

bool V2xMedium::deliver_roll(V2xRadio* rx, const Spdu& msg, const Position& src,
                             bool radio_down) {
  ++receivers_checked_;
  const double dist = rx->position().distance_to(src);
  if (dist > range_) return false;
  if (radio_down || (fault_port_ && fault_port_->roll_drop())) {
    ++lost_;
    ++lost_fault_;
    return true;
  }
  if (loss_prob_ > 0 && rng_.chance(loss_prob_)) {
    ++lost_;
    return true;
  }
  ++delivered_;
  // Propagation (~3.3 ns/m) + channel access jitter (0..2 ms DSRC CCH).
  const SimTime delay =
      SimTime::from_ns(static_cast<std::uint64_t>(dist * 3.34)) +
      SimTime::from_us(rng_.uniform(2000));
  sched_.schedule_in(delay,
                     [this, rx, msg] { rx->on_spdu(msg, sched_.now()); });
  return true;
}

void V2xMedium::broadcast(V2xRadio* from, Spdu msg) {
  ++transmitted_;
  const Position src = from->position();
  const bool radio_down = fault_port_ && fault_port_->down();
  if (grid_) {
    // Refresh the sender's record (senders are the fast movers that matter
    // most, and they pass through here at BSM rate anyway).
    const auto from_it = attach_seq_.find(from);
    if (from_it != attach_seq_.end()) {
      grid_->update(from_it->second, src.x, src.y);
    }
    // Candidates sorted by attach seq == linear-scan order, so rng_ draws
    // happen in exactly the order the linear path would make them.
    grid_->query(src.x, src.y, range_ + grid_slack_, query_buf_);
    for (const std::uint64_t seq : query_buf_) {
      V2xRadio* rx = by_seq_.find(seq)->second;
      if (rx == from) continue;
      deliver_roll(rx, msg, src, radio_down);
    }
  } else {
    for (V2xRadio* rx : radios_) {
      if (rx == from) continue;
      deliver_roll(rx, msg, src, radio_down);
    }
  }
  for (V2xRadio* mon : monitors_) {
    sched_.schedule_in(SimTime::from_us(1),
                       [this, mon, msg] { mon->on_spdu(msg, sched_.now()); });
  }
}

std::string MisbehaviorDetector::check(const Bsm& bsm, SimTime now) {
  std::string reason;
  if (bsm.speed_mps > cfg_.max_speed_mps) {
    reason = "implausible_speed";
  } else {
    const auto it = last_.find(bsm.temp_id);
    if (it != last_.end() && now > it->second.at) {
      const double dt = (now - it->second.at).seconds();
      const double moved = bsm.pos.distance_to(it->second.pos);
      const double max_move = cfg_.max_speed_mps * dt + cfg_.position_jump_margin_m;
      if (moved > max_move) reason = "position_jump";
    }
  }
  last_[bsm.temp_id] = LastSeen{bsm.pos, now};
  if (!reason.empty()) ++flagged_;
  return reason;
}

VehicleNode::VehicleNode(Scheduler& sched, V2xMedium& medium, std::string name,
                         Position start, double vx_mps, double vy_mps,
                         const TrustStore& trust,
                         CertificateAuthority::PseudonymBatch pseudonyms,
                         PseudonymPolicy policy)
    : V2xRadio(std::move(name)),
      sched_(sched),
      medium_(medium),
      start_(start),
      vx_(vx_mps),
      vy_(vy_mps),
      t0_(sched.now()),
      trust_(trust),
      pseudonyms_(std::move(pseudonyms)),
      policy_(policy),
      trace_("v2x." + this->name()) {
  if (pseudonyms_.certs.empty()) {
    throw std::invalid_argument("VehicleNode: empty pseudonym pool");
  }
  // Temp id derived from the pseudonym cert id (unlinkable across certs).
  temp_id_ = util::load_be32(pseudonyms_.certs[0].id().data());
  // Standalone nodes stay silent: V2X scale runs have thousands of nodes at
  // 10 Hz and an unbounded private buffer would dominate memory.
  trace_.set_enabled(false);
  k_bsm_tx_ = trace_.kind("bsm_tx");
  k_verify_fail_ = trace_.kind("verify_fail");
  k_misbehavior_ = trace_.kind("misbehavior");
  medium_.attach(this);
}

void VehicleNode::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  trace_.set_enabled(true);
  k_bsm_tx_ = trace_.kind("bsm_tx");
  k_verify_fail_ = trace_.kind("verify_fail");
  k_misbehavior_ = trace_.kind("misbehavior");
  verify_engine_.bind_metrics(*t.metrics);
}

Position VehicleNode::position() const {
  const double t = (sched_.now() - t0_).seconds();
  return Position{start_.x + vx_ * t, start_.y + vy_ * t};
}

void VehicleNode::start() {
  bsm_task_ = std::make_unique<sim::PeriodicTask>(
      sched_, SimTime::from_ms(100), [this] { send_bsm(); }, SimTime::zero());
  if (policy_.enabled && pseudonyms_.certs.size() > 1) {
    rotate_task_ = std::make_unique<sim::PeriodicTask>(
        sched_, policy_.rotation_period, [this] { rotate_pseudonym(); },
        policy_.rotation_period);
  }
}

void VehicleNode::stop() {
  bsm_task_.reset();
  rotate_task_.reset();
}

void VehicleNode::send_bsm() {
  Bsm bsm;
  bsm.temp_id = temp_id_;
  bsm.pos = position();
  bsm.speed_mps = std::sqrt(vx_ * vx_ + vy_ * vy_);
  bsm.heading_rad = std::atan2(vy_, vx_);
  bsm.generated = sched_.now();
  const Spdu msg =
      Spdu::sign(Psid::kBsm, sched_.now(), bsm.serialize(),
                 pseudonyms_.certs[pseudo_idx_], pseudonyms_.keys[pseudo_idx_]);
  ++stats_.bsm_sent;
  ASECK_TRACE(trace_, sched_.now(), k_bsm_tx_,
              "temp_id=" + std::to_string(temp_id_));
  medium_.broadcast(this, msg);
}

void VehicleNode::rotate_pseudonym() {
  if (pseudo_idx_ + 1 >= pseudonyms_.certs.size()) return;  // pool exhausted
  ++pseudo_idx_;
  temp_id_ = util::load_be32(pseudonyms_.certs[pseudo_idx_].id().data());
}

void VehicleNode::enable_opportunistic(DeferredSpduVerifier& v) {
  deferred_ = &v;
  deferred_producer_ = v.add_producer();
  k_revoke_ = trace_.kind("bsm_revoke");
}

void VehicleNode::on_spdu(const Spdu& msg, SimTime) {
  ++stats_.spdu_received;
  const SimTime now = sched_.now();
  const Position me = position();
  std::optional<Bsm> bsm = Bsm::parse(msg.payload);
  const Position* claimed = nullptr;
  Position claimed_pos;
  if (bsm) {
    claimed_pos = bsm->pos;
    claimed = &claimed_pos;
  }
  if (deferred_) {
    // Opportunistic admission: cheap checks now, provisional admit, the
    // signature verdict arrives at the next pipeline flush.
    const VerifyStatus pre =
        verify_spdu_presig(msg, trust_, now, verify_policy_, &me, claimed);
    if (pre != VerifyStatus::kOk) {
      ++stats_.rejected[pre];
      ASECK_TRACE(trace_, now, k_verify_fail_,
                  "status=" + std::to_string(static_cast<int>(pre)));
      return;
    }
    ++stats_.admitted_provisional;
    std::uint32_t tid = 0;
    if (bsm) {
      tid = bsm->temp_id;
      const std::string flag = misbehavior_.check(*bsm, now);
      if (!flag.empty()) {
        ++stats_.misbehavior_flags;
        ASECK_TRACE(trace_, now, k_misbehavior_, flag);
        return;
      }
      if (bsm_sink_) bsm_sink_(*bsm, msg, now);  // acting on unverified data
    }
    deferred_->submit(
        deferred_producer_, msg, now,
        [this, tid](bool ok, SimTime admitted_at, SimTime resolved_at) {
          stats_.exposure_window_us.add(
              (resolved_at - admitted_at).seconds() * 1e6);
          if (ok) {
            ++stats_.verified_ok;
            return;
          }
          ++stats_.revoked_late;
          ++stats_.rejected[VerifyStatus::kBadSignature];
          ASECK_TRACE(trace_, resolved_at, k_revoke_,
                      "temp_id=" + std::to_string(tid));
          if (revoke_sink_) revoke_sink_(tid, admitted_at, resolved_at);
        });
    return;
  }
  const VerifyStatus status = verify_spdu(msg, trust_, now, verify_policy_,
                                          &me, claimed, &verify_engine_);
  stats_.verify_latency_us.add(kVerifyCostUs);
  if (status != VerifyStatus::kOk) {
    ++stats_.rejected[status];
    ASECK_TRACE(trace_, now, k_verify_fail_,
                "status=" + std::to_string(static_cast<int>(status)));
    return;
  }
  ++stats_.verified_ok;
  if (bsm) {
    const std::string flag = misbehavior_.check(*bsm, now);
    if (!flag.empty()) {
      ++stats_.misbehavior_flags;
      ASECK_TRACE(trace_, now, k_misbehavior_, flag);
      return;
    }
    if (bsm_sink_) bsm_sink_(*bsm, msg, now);
  }
}

RsuNode::RsuNode(Scheduler& sched, V2xMedium& medium, std::string name,
                 Position pos, const TrustStore& trust, Certificate cert,
                 crypto::EcdsaPrivateKey key)
    : V2xRadio(std::move(name)),
      sched_(sched),
      medium_(medium),
      pos_(pos),
      trust_(trust),
      cert_(std::move(cert)),
      key_(std::move(key)) {
  medium_.attach(this);
}

void RsuNode::on_spdu(const Spdu& msg, SimTime) {
  ++received_;
  if (verify_spdu(msg, trust_, sched_.now(), VerifyPolicy{}, nullptr, nullptr,
                  &verify_engine_) == VerifyStatus::kOk) {
    ++verified_;
  }
}

void RsuNode::broadcast_alert(util::Bytes payload) {
  const Spdu msg = Spdu::sign(Psid::kRoadsideAlert, sched_.now(),
                              std::move(payload), cert_, key_);
  medium_.broadcast(this, msg);
}

TrackingAdversary::TrackingAdversary(std::string name, Position pos,
                                     SimTime gap_tolerance, double link_radius_m)
    : V2xRadio(std::move(name)),
      pos_(pos),
      gap_tolerance_(gap_tolerance),
      link_radius_(link_radius_m) {}

void TrackingAdversary::on_spdu(const Spdu& msg, SimTime) {
  // The adversary reads plaintext BSMs; it does not need to verify.
  const auto bsm = Bsm::parse(msg.payload);
  if (!bsm) return;
  ++observed_;
  auto it = tracks_.find(bsm->temp_id);
  if (it == tracks_.end()) {
    Track t;
    t.temp_id = bsm->temp_id;
    t.first_pos = t.last_pos = bsm->pos;
    t.last_speed = bsm->speed_mps;
    t.last_heading = bsm->heading_rad;
    t.first_seen = t.last_seen = bsm->generated;
    tracks_[bsm->temp_id] = t;
  } else {
    it->second.last_pos = bsm->pos;
    it->second.last_speed = bsm->speed_mps;
    it->second.last_heading = bsm->heading_rad;
    it->second.last_seen = bsm->generated;
  }
}

std::vector<std::vector<std::uint32_t>> TrackingAdversary::link_chains() const {
  // Sort tracks by first appearance.
  std::vector<const Track*> by_start;
  by_start.reserve(tracks_.size());
  for (const auto& [id, t] : tracks_) by_start.push_back(&t);
  std::sort(by_start.begin(), by_start.end(),
            [](const Track* a, const Track* b) {
              return a->first_seen < b->first_seen;
            });

  std::map<std::uint32_t, std::uint32_t> successor;  // old id -> new id
  std::map<std::uint32_t, bool> consumed;
  for (const Track* ended : by_start) {
    // Find the best candidate appearing right after `ended` vanishes, near
    // the kinematically predicted position.
    const Track* best = nullptr;
    double best_dist = link_radius_;
    for (const Track* cand : by_start) {
      if (cand == ended || consumed[cand->temp_id]) continue;
      if (cand->first_seen < ended->last_seen) continue;
      if (cand->first_seen - ended->last_seen > gap_tolerance_) continue;
      const double dt = (cand->first_seen - ended->last_seen).seconds();
      const Position predicted{
          ended->last_pos.x + std::cos(ended->last_heading) * ended->last_speed * dt,
          ended->last_pos.y + std::sin(ended->last_heading) * ended->last_speed * dt};
      const double dist = predicted.distance_to(cand->first_pos);
      if (dist < best_dist) {
        best_dist = dist;
        best = cand;
      }
    }
    if (best) {
      successor[ended->temp_id] = best->temp_id;
      consumed[best->temp_id] = true;
    }
  }

  // Build chains from roots (ids that are nobody's successor).
  std::vector<std::vector<std::uint32_t>> chains;
  for (const Track* t : by_start) {
    if (consumed[t->temp_id]) continue;
    std::vector<std::uint32_t> chain{t->temp_id};
    auto it = successor.find(t->temp_id);
    while (it != successor.end()) {
      chain.push_back(it->second);
      it = successor.find(it->second);
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

}  // namespace aseck::v2x
