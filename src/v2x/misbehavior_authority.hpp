#pragma once
// Misbehavior authority: closes the V2X trust-revocation loop. Vehicles
// that flag implausible BSMs submit signed misbehavior reports (PSID
// kMisbehaviorReport, via an RSU backhaul); the authority aggregates
// reports per accused certificate and revokes once enough *distinct*
// reporters corroborate — single reporters cannot get a victim revoked
// (defamation resistance), which is the reporting system's own security
// requirement.

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "v2x/message.hpp"

namespace aseck::v2x {

/// A misbehavior report: the accused certificate id, the observed reason,
/// and the (pseudonymous) reporter — carried as an Spdu payload.
struct MisbehaviorReport {
  CertId accused{};
  std::string reason;        // e.g. "position_jump"
  std::uint32_t reporter_temp_id = 0;

  util::Bytes serialize() const;
  static std::optional<MisbehaviorReport> parse(util::BytesView b);
};

/// Authority thresholds.
struct MisbehaviorAuthorityConfig {
  /// Distinct reporters required before revocation.
  std::size_t revocation_threshold = 3;
  /// Reports per reporter per accused actually counted (anti-spam).
  std::size_t max_reports_per_reporter = 1;
};

class MisbehaviorAuthority {
 public:
  using Config = MisbehaviorAuthorityConfig;
  MisbehaviorAuthority(Crl& crl, const TrustStore& trust, Config cfg = {});

  enum class Outcome {
    kAccepted,
    kAcceptedAndRevoked,
    kDuplicateReporter,
    kInvalidEnvelope,   // report Spdu failed verification
    kAlreadyRevoked,
  };
  /// Processes a signed report envelope received at `now`.
  Outcome submit(const Spdu& envelope, SimTime now);

  std::size_t distinct_reporters(const CertId& accused) const;
  std::size_t revocations() const { return revocations_; }

  static const char* outcome_name(Outcome o);

 private:
  Crl& crl_;
  const TrustStore& trust_;
  Config cfg_;
  struct Less {
    bool operator()(const CertId& a, const CertId& b) const { return a < b; }
  };
  std::map<CertId, std::set<std::uint32_t>, Less> reporters_;
  std::size_t revocations_ = 0;
};

}  // namespace aseck::v2x
