#include "v2x/message.hpp"

#include <cmath>
#include <cstring>

namespace aseck::v2x {

double Position::distance_to(const Position& o) const {
  const double dx = x - o.x, dy = y - o.y;
  return std::sqrt(dx * dx + dy * dy);
}

namespace {
void append_double(util::Bytes& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  util::append_be(out, bits, 8);
}
double read_double(const std::uint8_t* p) {
  const std::uint64_t bits = util::load_be64(p);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}
}  // namespace

util::Bytes Bsm::serialize() const {
  util::Bytes out;
  util::append_be(out, temp_id, 4);
  append_double(out, pos.x);
  append_double(out, pos.y);
  append_double(out, speed_mps);
  append_double(out, heading_rad);
  util::append_be(out, generated.ns, 8);
  return out;
}

std::optional<Bsm> Bsm::parse(util::BytesView b) {
  if (b.size() != 4 + 8 * 5) return std::nullopt;
  Bsm m;
  m.temp_id = util::load_be32(b.data());
  m.pos.x = read_double(b.data() + 4);
  m.pos.y = read_double(b.data() + 12);
  m.speed_mps = read_double(b.data() + 20);
  m.heading_rad = read_double(b.data() + 28);
  m.generated = SimTime::from_ns(util::load_be64(b.data() + 36));
  return m;
}

util::Bytes Spdu::signed_portion() const {
  util::Bytes out;
  util::append_be(out, static_cast<std::uint32_t>(psid), 4);
  util::append_be(out, generation_time.ns, 8);
  out.insert(out.end(), payload.begin(), payload.end());
  const CertId cid = signer.id();
  out.insert(out.end(), cid.begin(), cid.end());
  return out;
}

Spdu Spdu::sign(Psid psid, SimTime at, util::Bytes payload,
                const Certificate& signer_cert,
                const crypto::EcdsaPrivateKey& key) {
  Spdu msg;
  msg.psid = psid;
  msg.generation_time = at;
  msg.payload = std::move(payload);
  msg.signer = signer_cert;
  msg.signature = key.sign(msg.signed_portion());
  return msg;
}

const char* verify_status_name(VerifyStatus s) {
  switch (s) {
    case VerifyStatus::kOk: return "ok";
    case VerifyStatus::kStale: return "stale";
    case VerifyStatus::kCertInvalid: return "cert_invalid";
    case VerifyStatus::kBadSignature: return "bad_signature";
    case VerifyStatus::kIrrelevant: return "irrelevant";
  }
  return "?";
}

VerifyStatus verify_spdu(const Spdu& msg, const TrustStore& trust, SimTime now,
                         const VerifyPolicy& policy,
                         const Position* receiver_pos,
                         const Position* claimed_pos,
                         crypto::VerifyEngine* engine) {
  // Freshness: reject stale or future-dated messages.
  if (msg.generation_time > now + policy.max_age ||
      now > msg.generation_time + policy.max_age) {
    return VerifyStatus::kStale;
  }
  if (trust.validate(msg.signer, now, msg.psid) != TrustStore::Result::kOk) {
    return VerifyStatus::kCertInvalid;
  }
  const util::Bytes signed_bytes = msg.signed_portion();
  const bool sig_ok =
      engine ? engine->verify(msg.signer.verify_key, signed_bytes,
                              msg.signature)
             : crypto::ecdsa_verify(msg.signer.verify_key, signed_bytes,
                                    msg.signature);
  if (!sig_ok) {
    return VerifyStatus::kBadSignature;
  }
  if (receiver_pos && claimed_pos &&
      receiver_pos->distance_to(*claimed_pos) > policy.max_relevance_m) {
    return VerifyStatus::kIrrelevant;
  }
  return VerifyStatus::kOk;
}

VerifyStatus verify_spdu_presig(const Spdu& msg, const TrustStore& trust,
                                SimTime now, const VerifyPolicy& policy,
                                const Position* receiver_pos,
                                const Position* claimed_pos) {
  if (msg.generation_time > now + policy.max_age ||
      now > msg.generation_time + policy.max_age) {
    return VerifyStatus::kStale;
  }
  if (trust.validate(msg.signer, now, msg.psid) != TrustStore::Result::kOk) {
    return VerifyStatus::kCertInvalid;
  }
  if (receiver_pos && claimed_pos &&
      receiver_pos->distance_to(*claimed_pos) > policy.max_relevance_m) {
    return VerifyStatus::kIrrelevant;
  }
  return VerifyStatus::kOk;
}

}  // namespace aseck::v2x
