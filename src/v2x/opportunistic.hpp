#pragma once
// Opportunistic (deferred) SPDU verification — the Kang-et-al-style
// admission pattern for verify-saturated receivers: run the cheap
// synchronous checks (freshness, cert chain, relevance, plausibility) at
// receive time, admit the message PROVISIONALLY, and push the expensive
// ECDSA check onto the batch verify pipeline. A later flush either confirms
// the admission or revokes it.
//
// The price is a safety window: between admission and the flush verdict, a
// consumer (ADAS) may have acted on an unverified message. The verifier
// measures that window (sim-time, per message) so E22 can put a number on
// the exposure and tie it to E11's hazard/ASIL oracle; receivers get a
// revoke callback to unwind whatever the message triggered.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "crypto/verify_pool.hpp"
#include "sim/scheduler.hpp"
#include "util/stats.hpp"
#include "v2x/message.hpp"

namespace aseck::v2x {

class DeferredSpduVerifier {
 public:
  struct Config {
    crypto::VerifyPoolConfig pool{};
    /// How often pending checks are flushed; this bounds the safety window.
    SimTime flush_period = SimTime::from_ms(10);
  };

  explicit DeferredSpduVerifier(sim::Scheduler& sched, Config cfg);
  // Not a default argument: GCC rejects `Config cfg = {}` here because the
  // nested aggregate's member initializers are not complete at that point.
  explicit DeferredSpduVerifier(sim::Scheduler& sched)
      : DeferredSpduVerifier(sched, Config()) {}

  /// Registers one receiver; returns its producer id (setup phase only).
  std::size_t add_producer();

  /// `ok` is the deferred signature verdict; the window [admitted_at,
  /// resolved_at] is how long the receiver trusted the message unverified.
  using Verdict =
      std::function<void(bool ok, SimTime admitted_at, SimTime resolved_at)>;

  /// Queues the SPDU's signature check. The message is copied (signature,
  /// certificate and payload must outlive the receive callback).
  void submit(std::size_t producer, const Spdu& msg, SimTime admitted_at,
              Verdict verdict);

  /// Starts the periodic flush task.
  void start();
  void stop();
  /// Drains and verifies everything pending; dispatches verdicts in
  /// canonical (producer, FIFO) order.
  void flush();

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t confirmed() const { return confirmed_; }
  std::uint64_t revoked() const { return revoked_; }
  std::size_t pending_count() const;
  /// Admission-to-verdict exposure, microseconds of sim-time per message.
  const util::Samples& window_us() const { return window_us_; }
  crypto::VerifyPool& pool() { return pool_; }

 private:
  struct Pending {
    Spdu msg;
    crypto::Digest digest;  // SHA-256 of the signed portion
    SimTime admitted_at;
    Verdict verdict;
  };

  sim::Scheduler& sched_;
  Config cfg_;
  crypto::VerifyPool pool_;
  std::vector<std::deque<Pending>> pending_;  // one FIFO per producer
  std::unique_ptr<sim::PeriodicTask> flush_task_;
  std::uint64_t submitted_ = 0;
  std::uint64_t confirmed_ = 0;
  std::uint64_t revoked_ = 0;
  util::Samples window_us_;
};

}  // namespace aseck::v2x
