#pragma once
// V2X network entities: broadcast radio medium, vehicles with pseudonym
// rotation, roadside units, plausibility-based misbehavior detection, and a
// passive tracking adversary (the privacy threat of paper Section 4.2).

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/verify_engine.hpp"
#include "v2x/grid.hpp"
#include "v2x/opportunistic.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "v2x/message.hpp"

namespace aseck::v2x {

using sim::Scheduler;

/// Anything with an antenna.
class V2xRadio {
 public:
  explicit V2xRadio(std::string name) : name_(std::move(name)) {}
  virtual ~V2xRadio() = default;
  const std::string& name() const { return name_; }
  virtual Position position() const = 0;
  virtual void on_spdu(const Spdu& msg, SimTime at) = 0;

 private:
  std::string name_;
};

/// Range + loss broadcast medium (DSRC/C-V2X abstraction).
///
/// Neighbor discovery defaults to a linear scan over attached radios (O(N)
/// per broadcast). `enable_grid_index` switches to a uniform-grid spatial
/// index (v2x/grid.hpp): candidates come from the cells overlapping the
/// range circle and are visited in attach order, so grid-mode delivery —
/// including every per-delivery RNG draw — is bit-identical to the linear
/// scan as long as no radio outruns the configured slack between reindexes.
class V2xMedium {
 public:
  V2xMedium(Scheduler& sched, double range_m = 300.0, double loss_prob = 0.0,
            std::uint64_t seed = 1);

  void attach(V2xRadio* radio);
  void detach(V2xRadio* radio);
  /// Attaches a monitor that hears every transmission regardless of range
  /// and loss (a distributed sniffing network, e.g. the E3 adversary).
  void attach_monitor(V2xRadio* radio);

  /// Broadcasts from `from`'s current position to all radios in range.
  void broadcast(V2xRadio* from, Spdu msg);

  /// Switches neighbor discovery to the uniform-grid index. `cell_m` <= 0
  /// keys cells to the radio range (the sharded-world cell geometry).
  /// `slack_m` widens every query: radios may drift up to `slack_m` from
  /// their recorded position before a `reindex_grid()` call is needed for
  /// delivery to stay exact. Senders refresh their own record on every
  /// broadcast; everyone else refreshes on reindex_grid().
  void enable_grid_index(double cell_m = 0.0, double slack_m = 60.0);
  bool grid_enabled() const { return grid_ != nullptr; }
  /// Re-records every attached radio's current position in the grid.
  void reindex_grid();

  std::uint64_t transmitted() const { return transmitted_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t lost() const { return lost_; }
  /// Deliveries suppressed by injected radio-loss faults (subset of lost()).
  std::uint64_t lost_fault() const { return lost_fault_; }
  /// Receivers exact-distance-checked across all broadcasts: the neighbor
  /// discovery cost metric E2 compares between linear and grid modes.
  std::uint64_t receivers_checked() const { return receivers_checked_; }

  /// Attaches a fault-injection port (sim::FaultPlan): radio-loss windows
  /// (down()) black out all receivers; drop faults lose individual
  /// receptions. Monitors (sniffers) are unaffected.
  void set_fault_port(sim::FaultPort* port) { fault_port_ = port; }

 private:
  bool deliver_roll(V2xRadio* rx, const Spdu& msg, const Position& src,
                    bool radio_down);

  Scheduler& sched_;
  double range_;
  double loss_prob_;
  util::Rng rng_;
  sim::FaultPort* fault_port_ = nullptr;
  std::vector<V2xRadio*> radios_;  // ascending attach_seq_ order
  std::vector<V2xRadio*> monitors_;
  std::unique_ptr<SpatialGrid> grid_;
  double grid_slack_ = 0.0;
  std::uint64_t next_attach_seq_ = 1;
  std::unordered_map<V2xRadio*, std::uint64_t> attach_seq_;
  std::unordered_map<std::uint64_t, V2xRadio*> by_seq_;
  std::vector<std::uint64_t> query_buf_;
  std::uint64_t transmitted_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t lost_fault_ = 0;
  std::uint64_t receivers_checked_ = 0;
};

/// Plausibility thresholds for misbehavior detection.
struct MisbehaviorConfig {
  double max_speed_mps = 70.0;           // ~250 km/h
  double position_jump_margin_m = 15.0;  // tolerance over speed * dt
};

/// Plausibility-based misbehavior detection on received BSMs.
class MisbehaviorDetector {
 public:
  using Config = MisbehaviorConfig;
  explicit MisbehaviorDetector(Config cfg = {}) : cfg_(cfg) {}

  /// Returns a non-empty reason string if the BSM is implausible.
  std::string check(const Bsm& bsm, SimTime now);

  std::uint64_t flagged() const { return flagged_; }

 private:
  struct LastSeen {
    Position pos;
    SimTime at;
  };
  Config cfg_;
  std::map<std::uint32_t, LastSeen> last_;
  std::uint64_t flagged_ = 0;
};

/// Pseudonym rotation policy.
struct PseudonymPolicy {
  SimTime rotation_period = SimTime::from_s(60);
  bool enabled = true;
};

struct VehicleStats {
  std::uint64_t bsm_sent = 0;
  std::uint64_t spdu_received = 0;
  std::uint64_t verified_ok = 0;
  std::map<VerifyStatus, std::uint64_t> rejected;
  std::uint64_t misbehavior_flags = 0;
  util::Samples verify_latency_us;  // crypto cost model per verification
  // Opportunistic mode only:
  std::uint64_t admitted_provisional = 0;  // passed presig checks, deferred
  std::uint64_t revoked_late = 0;          // deferred verify failed
  util::Samples exposure_window_us;        // admit -> verdict, sim-time
};

/// A vehicle: drives a straight (configurable-velocity) trajectory,
/// broadcasts signed BSMs at 10 Hz, rotates pseudonyms, verifies and
/// plausibility-checks everything it hears.
class VehicleNode : public V2xRadio {
 public:
  VehicleNode(Scheduler& sched, V2xMedium& medium, std::string name,
              Position start, double vx_mps, double vy_mps,
              const TrustStore& trust,
              CertificateAuthority::PseudonymBatch pseudonyms,
              PseudonymPolicy policy = {});

  Position position() const override;
  void on_spdu(const Spdu& msg, SimTime at) override;

  /// Starts BSM broadcasting (10 Hz) and pseudonym rotation.
  void start();
  void stop();

  const VehicleStats& stats() const { return stats_; }
  sim::TraceScope& trace() { return trace_; }

  /// Rebinds trace events onto a shared telemetry plane. Standalone vehicles
  /// keep tracing disabled (V2X scale benches run thousands of nodes at
  /// 10 Hz); binding to a shared bus opts the node into the global timeline.
  void bind_telemetry(const sim::Telemetry& t);

  std::uint32_t current_temp_id() const { return temp_id_; }
  std::size_t pseudonym_index() const { return pseudo_idx_; }
  MisbehaviorDetector& misbehavior() { return misbehavior_; }
  const VerifyPolicy& verify_policy() const { return verify_policy_; }
  void set_verify_policy(VerifyPolicy p) { verify_policy_ = p; }
  /// Per-node verification engine (signature result cache; BSM floods from
  /// the same sender repeat identical SPDUs across receive paths).
  crypto::VerifyEngine& verify_engine() { return verify_engine_; }

  /// Hook invoked for every plausible, verified BSM (the ADAS consumer).
  /// In opportunistic mode "verified" means "provisionally admitted" — a
  /// revoke may follow.
  using BsmSink = std::function<void(const Bsm&, const Spdu&, SimTime)>;
  void set_bsm_sink(BsmSink sink) { bsm_sink_ = std::move(sink); }

  /// Opportunistic mode: admit BSMs after the cheap synchronous checks and
  /// defer the signature to `v`'s batch pipeline. The verifier must outlive
  /// this node. Call before traffic starts.
  void enable_opportunistic(DeferredSpduVerifier& v);
  bool opportunistic() const { return deferred_ != nullptr; }

  /// Hook invoked when a provisionally admitted BSM is revoked by a late
  /// verify failure (the ADAS unwind path, E11's safety-window oracle).
  using RevokeSink =
      std::function<void(std::uint32_t temp_id, SimTime admitted_at,
                         SimTime revoked_at)>;
  void set_revoke_sink(RevokeSink sink) { revoke_sink_ = std::move(sink); }

  /// Model cost of one ECDSA verification in microseconds (automotive-grade
  /// HSM with P-256 accelerator).
  static constexpr double kVerifyCostUs = 350.0;
  static constexpr double kSignCostUs = 180.0;

 private:
  void send_bsm();
  void rotate_pseudonym();

  Scheduler& sched_;
  V2xMedium& medium_;
  Position start_;
  double vx_, vy_;
  SimTime t0_ = SimTime::zero();
  const TrustStore& trust_;
  CertificateAuthority::PseudonymBatch pseudonyms_;
  PseudonymPolicy policy_;
  VerifyPolicy verify_policy_;
  std::size_t pseudo_idx_ = 0;
  std::uint32_t temp_id_ = 0;
  MisbehaviorDetector misbehavior_;
  crypto::VerifyEngine verify_engine_;
  VehicleStats stats_;
  sim::TraceScope trace_;
  sim::TraceId k_bsm_tx_ = 0, k_verify_fail_ = 0, k_misbehavior_ = 0;
  BsmSink bsm_sink_;
  RevokeSink revoke_sink_;
  DeferredSpduVerifier* deferred_ = nullptr;
  std::size_t deferred_producer_ = 0;
  sim::TraceId k_revoke_ = 0;
  std::unique_ptr<sim::PeriodicTask> bsm_task_;
  std::unique_ptr<sim::PeriodicTask> rotate_task_;
};

/// Roadside unit: static receiver/verifier, can broadcast alerts.
class RsuNode : public V2xRadio {
 public:
  RsuNode(Scheduler& sched, V2xMedium& medium, std::string name, Position pos,
          const TrustStore& trust, Certificate cert,
          crypto::EcdsaPrivateKey key);

  Position position() const override { return pos_; }
  void on_spdu(const Spdu& msg, SimTime at) override;

  void broadcast_alert(util::Bytes payload);

  std::uint64_t received() const { return received_; }
  std::uint64_t verified() const { return verified_; }
  crypto::VerifyEngine& verify_engine() { return verify_engine_; }

 private:
  Scheduler& sched_;
  V2xMedium& medium_;
  Position pos_;
  const TrustStore& trust_;
  Certificate cert_;
  crypto::EcdsaPrivateKey key_;
  crypto::VerifyEngine verify_engine_;
  std::uint64_t received_ = 0;
  std::uint64_t verified_ = 0;
};

/// Passive eavesdropper attempting to link pseudonyms into vehicle tracks by
/// kinematic continuity. Measures the privacy value of pseudonym rotation.
class TrackingAdversary : public V2xRadio {
 public:
  /// `gap_tolerance`: max time between last sighting of one temp id and
  /// first sighting of its successor to consider linking.
  /// `link_radius_m`: how close the predicted position must be.
  TrackingAdversary(std::string name, Position pos, SimTime gap_tolerance,
                    double link_radius_m);

  Position position() const override { return pos_; }
  void on_spdu(const Spdu& msg, SimTime at) override;

  /// Runs the linking heuristic; returns chains of temp ids believed to be
  /// the same vehicle.
  std::vector<std::vector<std::uint32_t>> link_chains() const;

  std::uint64_t observed() const { return observed_; }

 private:
  struct Track {
    std::uint32_t temp_id;
    Position first_pos, last_pos;
    double last_speed = 0, last_heading = 0;
    SimTime first_seen, last_seen;
  };
  Position pos_;
  SimTime gap_tolerance_;
  double link_radius_;
  std::map<std::uint32_t, Track> tracks_;
  std::uint64_t observed_ = 0;
};

}  // namespace aseck::v2x
