#include "ivn/someip.hpp"

#include "util/coverage.hpp"

namespace aseck::ivn {

namespace {
constexpr std::uint16_t kSomeIpEthertype = 0x88B5;  // local experimental
constexpr std::size_t kMacTrailerBytes = 8;

EthernetFrame make_frame(const MacAddress& src, const MacAddress& dst,
                         util::Bytes payload) {
  EthernetFrame f;
  f.src = src;
  f.dst = dst;
  f.ethertype = kSomeIpEthertype;
  f.payload = std::move(payload);
  return f;
}
}  // namespace

util::Bytes SomeIpMessage::serialize() const {
  util::Bytes out;
  util::append_be(out, service, 2);
  util::append_be(out, method, 2);
  util::append_be(out, client, 2);
  util::append_be(out, session, 2);
  out.push_back(static_cast<std::uint8_t>(type));
  util::append_be(out, payload.size(), 4);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<SomeIpMessage> SomeIpMessage::parse(util::BytesView b) {
  if (b.size() < 13) {
    ASECK_COV("someip.parse.too_short");
    return std::nullopt;
  }
  SomeIpMessage m;
  m.service = static_cast<ServiceId>(util::load_be32(b.data()) >> 16);
  m.method = static_cast<MethodId>(util::load_be32(b.data()) & 0xffff);
  m.client = static_cast<ClientId>(util::load_be32(b.data() + 4) >> 16);
  m.session = static_cast<std::uint16_t>(util::load_be32(b.data() + 4) & 0xffff);
  m.type = static_cast<Type>(b[8]);
  switch (m.type) {
    case Type::kRequest:
    case Type::kResponse:
    case Type::kError:
    case Type::kNotification:
      break;
    default:
      ASECK_COV("someip.parse.bad_type");
      return std::nullopt;
  }
  const std::uint32_t len = util::load_be32(b.data() + 9);
  // Bounds-check the declared length against the remaining bytes in 64-bit
  // arithmetic: the former `b.size() < 13 + len` compared against a uint32
  // sum, so a length near 2^32 wrapped to a small value and the assign below
  // read far out of bounds (the V11-class integer overflow).
  if (len > b.size() - 13) {
    ASECK_COV("someip.parse.len_overrun");
    return std::nullopt;
  }
  ASECK_COV("someip.parse.ok");
  m.payload.assign(b.begin() + 13, b.begin() + 13 + len);
  return m;
}

util::Bytes someip_mac_trailer(const crypto::Cmac& cmac, const SomeIpMessage& m) {
  return cmac.tag_truncated(m.serialize(), kMacTrailerBytes);
}

SomeIpServer::SomeIpServer(EthernetSwitch& sw, std::string name, MacAddress mac,
                           const ServiceAcl* acl)
    : EthernetEndpoint(std::move(name), mac),
      switch_(sw),
      acl_(acl),
      trace_(this->name()),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  port_ = sw.connect(this);
  wire_telemetry();
}

void SomeIpServer::wire_telemetry() {
  const std::string p = "someip." + name() + ".";
  const auto rewire = [this, &p](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(p + key);
    if (c && c != &nc) nc.inc(c->value());
    c = &nc;
  };
  rewire(c_served_, "served");
  rewire(c_denied_acl_, "denied_acl");
  rewire(c_denied_mac_, "denied_mac");
  k_serve_ = trace_.kind("serve");
  k_deny_acl_ = trace_.kind("deny_acl");
  k_deny_mac_ = trace_.kind("deny_mac");
}

void SomeIpServer::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

void SomeIpServer::offer(ServiceId service, MethodId method, Handler handler,
                         std::optional<util::Bytes> key) {
  Endpoint ep;
  ep.handler = std::move(handler);
  if (key) ep.cmac.emplace(*key);
  methods_[{service, method}] = std::move(ep);
}

void SomeIpServer::on_frame(const EthernetFrame& frame, sim::SimTime at) {
  if (frame.ethertype != kSomeIpEthertype) return;
  // Split message || optional trailer.
  auto m = SomeIpMessage::parse(frame.payload);
  util::BytesView trailer;
  if (!m) return;
  const std::size_t msg_len = 13 + m->payload.size();
  if (frame.payload.size() > msg_len) {
    trailer = util::BytesView(frame.payload).subspan(msg_len);
  }
  if (m->type != SomeIpMessage::Type::kRequest) return;

  SomeIpMessage reply = *m;
  reply.type = SomeIpMessage::Type::kResponse;
  SomeIpError err = SomeIpError::kOk;

  const auto it = methods_.find({m->service, m->method});
  if (it == methods_.end()) {
    const bool service_known =
        std::any_of(methods_.begin(), methods_.end(), [&](const auto& kv) {
          return kv.first.first == m->service;
        });
    err = service_known ? SomeIpError::kUnknownMethod
                        : SomeIpError::kUnknownService;
  } else if (acl_ && !acl_->permitted(m->service, m->client)) {
    err = SomeIpError::kAccessDenied;
    c_denied_acl_->inc();
    ASECK_TRACE(trace_, at, k_deny_acl_,
                "service=" + std::to_string(m->service) +
                    " client=" + std::to_string(m->client));
  } else if (it->second.cmac) {
    if (trailer.size() != kMacTrailerBytes ||
        !util::ct_equal(trailer, someip_mac_trailer(*it->second.cmac, *m))) {
      err = SomeIpError::kBadMac;
      c_denied_mac_->inc();
      ASECK_TRACE(trace_, at, k_deny_mac_,
                  "service=" + std::to_string(m->service) +
                      " client=" + std::to_string(m->client));
    }
  }

  if (err == SomeIpError::kOk) {
    reply.payload = it->second.handler(m->payload);
    c_served_->inc();
    ASECK_TRACE(trace_, at, k_serve_,
                "service=" + std::to_string(m->service) +
                    " method=" + std::to_string(m->method));
  } else {
    reply.type = SomeIpMessage::Type::kError;
    reply.payload = {static_cast<std::uint8_t>(err)};
  }

  util::Bytes wire = reply.serialize();
  if (err == SomeIpError::kOk && it->second.cmac) {
    const util::Bytes mac = someip_mac_trailer(*it->second.cmac, reply);
    wire.insert(wire.end(), mac.begin(), mac.end());
  }
  switch_.send(port_, make_frame(mac(), frame.src, std::move(wire)));
}

SomeIpClient::SomeIpClient(EthernetSwitch& sw, std::string name, MacAddress mac,
                           ClientId id)
    : EthernetEndpoint(std::move(name), mac), switch_(sw), id_(id) {
  port_ = sw.connect(this);
}

void SomeIpClient::call(const MacAddress& server_mac, ServiceId service,
                        MethodId method, util::Bytes payload,
                        ResponseFn on_response,
                        std::optional<util::Bytes> key) {
  SomeIpMessage m;
  m.service = service;
  m.method = method;
  m.client = id_;
  m.session = next_session_++;
  m.type = SomeIpMessage::Type::kRequest;
  m.payload = std::move(payload);
  util::Bytes wire = m.serialize();
  if (key) {
    const crypto::Cmac cmac(*key);
    const util::Bytes mac_t = someip_mac_trailer(cmac, m);
    wire.insert(wire.end(), mac_t.begin(), mac_t.end());
  }
  pending_[m.session] = {std::move(on_response), std::move(key)};
  switch_.send(port_, make_frame(mac(), server_mac, std::move(wire)));
}

void SomeIpClient::on_frame(const EthernetFrame& frame, sim::SimTime) {
  if (frame.ethertype != kSomeIpEthertype) return;
  const auto m = SomeIpMessage::parse(frame.payload);
  if (!m) return;
  if (m->type != SomeIpMessage::Type::kResponse &&
      m->type != SomeIpMessage::Type::kError) {
    return;
  }
  const auto it = pending_.find(m->session);
  if (it == pending_.end()) return;
  auto [fn, key] = std::move(it->second);
  pending_.erase(it);
  if (m->type == SomeIpMessage::Type::kError) {
    const SomeIpError err = m->payload.empty()
                                ? SomeIpError::kNotReachable
                                : static_cast<SomeIpError>(m->payload[0]);
    fn(err, {});
    return;
  }
  if (key) {
    // Verify the response trailer.
    const std::size_t msg_len = 13 + m->payload.size();
    const crypto::Cmac cmac(*key);
    if (frame.payload.size() != msg_len + 8 ||
        !util::ct_equal(util::BytesView(frame.payload).subspan(msg_len),
                        someip_mac_trailer(cmac, *m))) {
      fn(SomeIpError::kBadMac, {});
      return;
    }
  }
  fn(SomeIpError::kOk, m->payload);
}

}  // namespace aseck::ivn
