#pragma once
// SOME/IP-style service layer over Automotive Ethernet (paper §7: Automotive
// Ethernet as the next-generation IVN with "stricter separation"). Models:
//   * service offering / discovery (SD) with subscribe handshake,
//   * an access-control matrix (which client ECU may use which service —
//     the service-level firewall complementing VLAN isolation), and
//   * optional authenticated sessions: a CMAC over each payload under a
//     service-specific key, so a compromised node on the same VLAN still
//     cannot invoke protected methods.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "crypto/cmac.hpp"
#include "ivn/ethernet.hpp"

namespace aseck::ivn {

using ServiceId = std::uint16_t;
using MethodId = std::uint16_t;
using ClientId = std::uint16_t;

/// SOME/IP header fields we model (subset).
struct SomeIpMessage {
  ServiceId service = 0;
  MethodId method = 0;
  ClientId client = 0;
  std::uint16_t session = 0;
  enum class Type : std::uint8_t {
    kRequest = 0x00,
    kResponse = 0x80,
    kError = 0x81,
    kNotification = 0x02,
  } type = Type::kRequest;
  util::Bytes payload;

  util::Bytes serialize() const;
  static std::optional<SomeIpMessage> parse(util::BytesView b);
};

/// Return codes (subset).
enum class SomeIpError : std::uint8_t {
  kOk = 0x00,
  kUnknownService = 0x02,
  kUnknownMethod = 0x03,
  kNotReachable = 0x05,
  kAccessDenied = 0x0C,   // vendor range: authorization failure
  kBadMac = 0x0D,
};

/// Access-control matrix: (service, client) -> allowed.
class ServiceAcl {
 public:
  void allow(ServiceId service, ClientId client) {
    allowed_.insert({service, client});
  }
  bool permitted(ServiceId service, ClientId client) const {
    return allowed_.count({service, client}) > 0;
  }
  std::size_t size() const { return allowed_.size(); }

 private:
  std::set<std::pair<ServiceId, ClientId>> allowed_;
};

/// A service host: registers method handlers; optionally requires MAC'd
/// requests. Runs point-to-point over the Ethernet switch.
class SomeIpServer : public EthernetEndpoint {
 public:
  SomeIpServer(EthernetSwitch& sw, std::string name, MacAddress mac,
               const ServiceAcl* acl);

  using Handler = std::function<util::Bytes(util::BytesView payload)>;
  /// Offers a method. If `key` is provided, requests must carry a valid
  /// 8-byte CMAC trailer and responses are MAC'd too.
  void offer(ServiceId service, MethodId method, Handler handler,
             std::optional<util::Bytes> key = std::nullopt);

  void on_frame(const EthernetFrame& frame, sim::SimTime at) override;

  std::uint64_t served() const { return c_served_->value(); }
  std::uint64_t denied_acl() const { return c_denied_acl_->value(); }
  std::uint64_t denied_mac() const { return c_denied_mac_->value(); }
  std::size_t port() const { return port_; }
  sim::TraceScope& trace() { return trace_; }

  /// Rebinds trace events and counters onto a shared telemetry plane.
  void bind_telemetry(const sim::Telemetry& t);

 private:
  struct Endpoint {
    Handler handler;
    std::optional<crypto::Cmac> cmac;
  };
  void wire_telemetry();

  EthernetSwitch& switch_;
  const ServiceAcl* acl_;
  std::size_t port_;
  std::map<std::pair<ServiceId, MethodId>, Endpoint> methods_;
  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_served_ = nullptr;
  sim::Counter* c_denied_acl_ = nullptr;
  sim::Counter* c_denied_mac_ = nullptr;
  sim::TraceId k_serve_ = 0, k_deny_acl_ = 0, k_deny_mac_ = 0;
};

/// A service consumer.
class SomeIpClient : public EthernetEndpoint {
 public:
  SomeIpClient(EthernetSwitch& sw, std::string name, MacAddress mac,
               ClientId id);

  /// Issues a request to the server at `server_mac`. The response arrives
  /// via the callback (or an error message).
  using ResponseFn = std::function<void(SomeIpError, util::BytesView payload)>;
  void call(const MacAddress& server_mac, ServiceId service, MethodId method,
            util::Bytes payload, ResponseFn on_response,
            std::optional<util::Bytes> key = std::nullopt);

  void on_frame(const EthernetFrame& frame, sim::SimTime at) override;

  ClientId id() const { return id_; }
  std::size_t port() const { return port_; }

 private:
  EthernetSwitch& switch_;
  ClientId id_;
  std::size_t port_;
  std::uint16_t next_session_ = 1;
  std::map<std::uint16_t, std::pair<ResponseFn, std::optional<util::Bytes>>>
      pending_;
};

/// Appends/verifies the 8-byte CMAC trailer over the serialized header+payload.
util::Bytes someip_mac_trailer(const crypto::Cmac& cmac, const SomeIpMessage& m);

}  // namespace aseck::ivn
