#include "ivn/uds.hpp"

#include "util/coverage.hpp"

namespace aseck::ivn {

SeedKeyFn weak_xor_algorithm(std::uint32_t secret_constant) {
  return [secret_constant](util::BytesView seed) {
    util::Bytes key(seed.begin(), seed.end());
    for (std::size_t i = 0; i < key.size(); ++i) {
      key[i] ^= static_cast<std::uint8_t>(secret_constant >> (8 * (i % 4)));
    }
    return key;
  };
}

SeedKeyFn cmac_algorithm(util::Bytes key16) {
  return [key16 = std::move(key16)](util::BytesView seed) {
    return crypto::Cmac(key16).tag_truncated(seed, 4);
  };
}

UdsServer::UdsServer(Config cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)),
      rng_(seed),
      trace_("uds"),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  wire_telemetry();
}

void UdsServer::wire_telemetry() {
  const auto rewire = [this](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(std::string("uds.") + key);
    if (c && c != &nc) nc.inc(c->value());
    c = &nc;
  };
  rewire(c_unlock_ok_, "unlock_ok");
  rewire(c_invalid_key_, "invalid_key");
  rewire(c_lockouts_, "lockouts");
  k_unlock_ = trace_.kind("unlock");
  k_invalid_key_ = trace_.kind("invalid_key");
  k_lockout_ = trace_.kind("lockout");
}

void UdsServer::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

bool UdsServer::locked_out(double now_s) const {
  return now_s < lockout_until_s_;
}

UdsResponse UdsServer::session_control(UdsSession target, double now_s) {
  (void)now_s;
  // Programming session requires unlock; extended/default do not.
  if (target == UdsSession::kProgramming && !unlocked_) {
    return {false, UdsNrc::kSecurityAccessDenied, {}};
  }
  session_ = target;
  // Re-locking on session change back to default (standard behavior).
  if (target == UdsSession::kDefault) unlocked_ = false;
  return {true, UdsNrc::kNone, {static_cast<std::uint8_t>(target)}};
}

UdsResponse UdsServer::request_seed(double now_s) {
  if (session_ == UdsSession::kDefault) {
    return {false, UdsNrc::kConditionsNotCorrect, {}};
  }
  if (locked_out(now_s)) {
    return {false, UdsNrc::kRequiredTimeDelayNotExpired, {}};
  }
  if (unlocked_) {
    // Already unlocked: spec returns a zero seed.
    return {true, UdsNrc::kNone, util::Bytes(cfg_.seed_bytes, 0)};
  }
  pending_seed_ = rng_.bytes(cfg_.seed_bytes);
  return {true, UdsNrc::kNone, *pending_seed_};
}

UdsResponse UdsServer::send_key(util::BytesView key, double now_s) {
  if (locked_out(now_s)) {
    return {false, UdsNrc::kRequiredTimeDelayNotExpired, {}};
  }
  if (!pending_seed_) {
    return {false, UdsNrc::kConditionsNotCorrect, {}};
  }
  const util::Bytes expected = cfg_.seed_key(*pending_seed_);
  pending_seed_.reset();  // one attempt per seed
  if (util::ct_equal(expected, key)) {
    unlocked_ = true;
    failed_attempts_ = 0;
    c_unlock_ok_->inc();
    ASECK_TRACE(trace_, util::SimTime::from_seconds_f(now_s), k_unlock_, "");
    return {true, UdsNrc::kNone, {}};
  }
  ++failed_attempts_;
  c_invalid_key_->inc();
  ASECK_TRACE(trace_, util::SimTime::from_seconds_f(now_s), k_invalid_key_,
              "attempt=" + std::to_string(failed_attempts_));
  if (failed_attempts_ >= cfg_.max_attempts) {
    lockout_until_s_ = now_s + cfg_.lockout_s;
    failed_attempts_ = 0;
    c_lockouts_->inc();
    ASECK_TRACE(trace_, util::SimTime::from_seconds_f(now_s), k_lockout_,
                "until_s=" + std::to_string(lockout_until_s_));
    return {false, UdsNrc::kExceededAttempts, {}};
  }
  return {false, UdsNrc::kInvalidKey, {}};
}

UdsResponse UdsServer::read_data(std::uint16_t did) {
  const auto it = dids_.find(did);
  if (it == dids_.end()) return {false, UdsNrc::kRequestOutOfRange, {}};
  return {true, UdsNrc::kNone, it->second.value};
}

UdsResponse UdsServer::write_data(std::uint16_t did, util::BytesView value,
                                  double now_s) {
  (void)now_s;
  const auto it = dids_.find(did);
  if (it == dids_.end()) return {false, UdsNrc::kRequestOutOfRange, {}};
  if (it->second.write_protected && !unlocked_) {
    return {false, UdsNrc::kSecurityAccessDenied, {}};
  }
  it->second.value.assign(value.begin(), value.end());
  return {true, UdsNrc::kNone, {}};
}

UdsResponse UdsServer::request_download(double now_s) {
  (void)now_s;
  if (session_ != UdsSession::kProgramming) {
    return {false, UdsNrc::kConditionsNotCorrect, {}};
  }
  if (!unlocked_) return {false, UdsNrc::kSecurityAccessDenied, {}};
  return {true, UdsNrc::kNone, {0x20, 0x10}};  // maxNumberOfBlockLength
}

void UdsServer::define_did(std::uint16_t did, util::Bytes value,
                           bool write_protected) {
  dids_[did] = DidEntry{std::move(value), write_protected};
}

namespace {

util::Bytes positive(std::uint8_t sid, util::BytesView data = {}) {
  util::Bytes out;
  out.reserve(1 + data.size());
  out.push_back(static_cast<std::uint8_t>(sid + 0x40));
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

util::Bytes negative(std::uint8_t sid, UdsNrc nrc) {
  return {0x7F, sid, static_cast<std::uint8_t>(nrc)};
}

util::Bytes from_response(std::uint8_t sid, const UdsResponse& r) {
  return r.positive ? positive(sid, r.data) : negative(sid, r.nrc);
}

}  // namespace

util::Bytes UdsServer::handle_request(util::BytesView req, double now_s) {
  if (req.empty()) {
    ASECK_COV("uds.req.empty");
    return negative(0x00, UdsNrc::kIncorrectLength);
  }
  const std::uint8_t sid = req[0];
  const util::BytesView body = req.subspan(1);
  switch (sid) {
    case 0x10: {  // DiagnosticSessionControl
      if (body.size() != 1) {
        ASECK_COV("uds.session.bad_len");
        return negative(sid, UdsNrc::kIncorrectLength);
      }
      const std::uint8_t sub = body[0] & 0x7F;  // suppressPosRspMsg bit masked
      if (sub != 0x01 && sub != 0x02 && sub != 0x03) {
        ASECK_COV("uds.session.bad_sub");
        return negative(sid, UdsNrc::kSubFunctionNotSupported);
      }
      ASECK_COV("uds.session.ok");
      return from_response(sid,
                           session_control(static_cast<UdsSession>(sub), now_s));
    }
    case 0x27: {  // SecurityAccess
      if (body.empty()) {
        ASECK_COV("uds.sec.no_sub");
        return negative(sid, UdsNrc::kIncorrectLength);
      }
      const std::uint8_t level = body[0];
      if (level == 0x00 || level > 0x7E) {
        ASECK_COV("uds.sec.bad_level");
        return negative(sid, UdsNrc::kSubFunctionNotSupported);
      }
      if (level % 2 == 1) {  // odd = requestSeed
        if (body.size() != 1) {
          ASECK_COV("uds.sec.seed_bad_len");
          return negative(sid, UdsNrc::kIncorrectLength);
        }
        ASECK_COV("uds.sec.seed");
        UdsResponse r = request_seed(now_s);
        if (r.positive) r.data.insert(r.data.begin(), level);
        return from_response(sid, r);
      }
      // even = sendKey; the key must be present and exactly as long as the
      // seed it answers (reject-with-NRC, never clamp a short key).
      if (body.size() != 1 + cfg_.seed_bytes) {
        ASECK_COV("uds.sec.key_bad_len");
        return negative(sid, UdsNrc::kIncorrectLength);
      }
      ASECK_COV("uds.sec.key");
      UdsResponse r = send_key(body.subspan(1), now_s);
      if (r.positive) r.data.insert(r.data.begin(), level);
      return from_response(sid, r);
    }
    case 0x22: {  // ReadDataByIdentifier
      if (body.size() != 2) {
        ASECK_COV("uds.read.bad_len");
        return negative(sid, UdsNrc::kIncorrectLength);
      }
      const auto did = static_cast<std::uint16_t>((body[0] << 8) | body[1]);
      ASECK_COV("uds.read.ok");
      UdsResponse r = read_data(did);
      if (r.positive) {
        r.data.insert(r.data.begin(),
                      {body[0], body[1]});
      }
      return from_response(sid, r);
    }
    case 0x2E: {  // WriteDataByIdentifier
      if (body.size() < 3) {
        ASECK_COV("uds.write.too_short");
        return negative(sid, UdsNrc::kIncorrectLength);
      }
      if (body.size() - 2 > kMaxWriteBytes) {
        ASECK_COV("uds.write.too_long");
        return negative(sid, UdsNrc::kIncorrectLength);
      }
      const auto did = static_cast<std::uint16_t>((body[0] << 8) | body[1]);
      ASECK_COV("uds.write.ok");
      UdsResponse r = write_data(did, body.subspan(2), now_s);
      if (r.positive) r.data = {body[0], body[1]};
      return from_response(sid, r);
    }
    case 0x31: {  // RoutineControl
      if (body.size() < 3) {
        ASECK_COV("uds.routine.too_short");
        return negative(sid, UdsNrc::kIncorrectLength);
      }
      const std::uint8_t sub = body[0];
      if (sub < 0x01 || sub > 0x03) {
        ASECK_COV("uds.routine.bad_sub");
        return negative(sid, UdsNrc::kSubFunctionNotSupported);
      }
      const auto rid = static_cast<std::uint16_t>((body[1] << 8) | body[2]);
      if (rid != 0xFF00) {  // only eraseMemory is modeled
        ASECK_COV("uds.routine.unknown");
        return negative(sid, UdsNrc::kRequestOutOfRange);
      }
      if (session_ != UdsSession::kProgramming) {
        ASECK_COV("uds.routine.wrong_session");
        return negative(sid, UdsNrc::kConditionsNotCorrect);
      }
      if (!unlocked_) {
        ASECK_COV("uds.routine.locked");
        return negative(sid, UdsNrc::kSecurityAccessDenied);
      }
      ASECK_COV("uds.routine.ok");
      return positive(sid, util::Bytes{sub, body[1], body[2]});
    }
    case 0x34: {  // RequestDownload
      // [dataFormatIdentifier, addressAndLengthFormatIdentifier,
      //  memoryAddress (addr_len bytes), memorySize (size_len bytes)]
      if (body.size() < 2) {
        ASECK_COV("uds.download.too_short");
        return negative(sid, UdsNrc::kIncorrectLength);
      }
      const std::uint8_t alfid = body[1];
      const std::size_t addr_len = alfid & 0x0F;
      const std::size_t size_len = alfid >> 4;
      // Widths outside 1..4 either make no sense on a 32-bit ECU or are the
      // classic smuggling vector for 2^32-wrapping size arithmetic; reject
      // instead of clamping.
      if (addr_len < 1 || addr_len > 4 || size_len < 1 || size_len > 4) {
        ASECK_COV("uds.download.bad_alfid");
        return negative(sid, UdsNrc::kRequestOutOfRange);
      }
      if (body.size() != 2 + addr_len + size_len) {
        ASECK_COV("uds.download.bad_len");
        return negative(sid, UdsNrc::kIncorrectLength);
      }
      // 64-bit accumulation: no width of the wire fields can overflow.
      std::uint64_t addr = 0, size = 0;
      for (std::size_t i = 0; i < addr_len; ++i) addr = (addr << 8) | body[2 + i];
      for (std::size_t i = 0; i < size_len; ++i) {
        size = (size << 8) | body[2 + addr_len + i];
      }
      if (size == 0 || size > kMaxDownloadBytes ||
          addr + size > 0x1'0000'0000ULL) {
        ASECK_COV("uds.download.range");
        return negative(sid, UdsNrc::kRequestOutOfRange);
      }
      ASECK_COV("uds.download.ok");
      return from_response(sid, request_download(now_s));
    }
    default:
      ASECK_COV("uds.req.unknown_sid");
      return negative(sid, UdsNrc::kServiceNotSupported);
  }
}

UdsAttackResult brute_force_security_access(UdsServer& server,
                                            std::uint64_t max_tries,
                                            double start_time_s,
                                            util::Rng& rng) {
  UdsAttackResult out;
  double now = start_time_s;
  server.session_control(UdsSession::kExtended, now);
  for (std::uint64_t i = 0; i < max_tries; ++i) {
    const UdsResponse seed_resp = server.request_seed(now);
    if (!seed_resp.positive) {
      if (seed_resp.nrc == UdsNrc::kRequiredTimeDelayNotExpired) {
        out.locked_out = true;
        return out;
      }
      now += 0.01;
      continue;
    }
    // Guess: random constant applied to the observed seed (models an
    // attacker who knows the algorithm family but not the constant).
    const auto guess_const = static_cast<std::uint32_t>(rng.next_u64());
    const util::Bytes guess = weak_xor_algorithm(guess_const)(seed_resp.data);
    ++out.attempts;
    const UdsResponse key_resp = server.send_key(guess, now);
    if (key_resp.positive) {
      out.unlocked = true;
      return out;
    }
    if (key_resp.nrc == UdsNrc::kExceededAttempts) {
      out.locked_out = true;
      return out;
    }
    now += 0.05;  // tester cadence
  }
  return out;
}

}  // namespace aseck::ivn
