#include "ivn/uds.hpp"

namespace aseck::ivn {

SeedKeyFn weak_xor_algorithm(std::uint32_t secret_constant) {
  return [secret_constant](util::BytesView seed) {
    util::Bytes key(seed.begin(), seed.end());
    for (std::size_t i = 0; i < key.size(); ++i) {
      key[i] ^= static_cast<std::uint8_t>(secret_constant >> (8 * (i % 4)));
    }
    return key;
  };
}

SeedKeyFn cmac_algorithm(util::Bytes key16) {
  return [key16 = std::move(key16)](util::BytesView seed) {
    return crypto::Cmac(key16).tag_truncated(seed, 4);
  };
}

UdsServer::UdsServer(Config cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)),
      rng_(seed),
      trace_("uds"),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  wire_telemetry();
}

void UdsServer::wire_telemetry() {
  const auto rewire = [this](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(std::string("uds.") + key);
    if (c && c != &nc) nc.inc(c->value());
    c = &nc;
  };
  rewire(c_unlock_ok_, "unlock_ok");
  rewire(c_invalid_key_, "invalid_key");
  rewire(c_lockouts_, "lockouts");
  k_unlock_ = trace_.kind("unlock");
  k_invalid_key_ = trace_.kind("invalid_key");
  k_lockout_ = trace_.kind("lockout");
}

void UdsServer::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

bool UdsServer::locked_out(double now_s) const {
  return now_s < lockout_until_s_;
}

UdsResponse UdsServer::session_control(UdsSession target, double now_s) {
  (void)now_s;
  // Programming session requires unlock; extended/default do not.
  if (target == UdsSession::kProgramming && !unlocked_) {
    return {false, UdsNrc::kSecurityAccessDenied, {}};
  }
  session_ = target;
  // Re-locking on session change back to default (standard behavior).
  if (target == UdsSession::kDefault) unlocked_ = false;
  return {true, UdsNrc::kNone, {static_cast<std::uint8_t>(target)}};
}

UdsResponse UdsServer::request_seed(double now_s) {
  if (session_ == UdsSession::kDefault) {
    return {false, UdsNrc::kConditionsNotCorrect, {}};
  }
  if (locked_out(now_s)) {
    return {false, UdsNrc::kRequiredTimeDelayNotExpired, {}};
  }
  if (unlocked_) {
    // Already unlocked: spec returns a zero seed.
    return {true, UdsNrc::kNone, util::Bytes(cfg_.seed_bytes, 0)};
  }
  pending_seed_ = rng_.bytes(cfg_.seed_bytes);
  return {true, UdsNrc::kNone, *pending_seed_};
}

UdsResponse UdsServer::send_key(util::BytesView key, double now_s) {
  if (locked_out(now_s)) {
    return {false, UdsNrc::kRequiredTimeDelayNotExpired, {}};
  }
  if (!pending_seed_) {
    return {false, UdsNrc::kConditionsNotCorrect, {}};
  }
  const util::Bytes expected = cfg_.seed_key(*pending_seed_);
  pending_seed_.reset();  // one attempt per seed
  if (util::ct_equal(expected, key)) {
    unlocked_ = true;
    failed_attempts_ = 0;
    c_unlock_ok_->inc();
    ASECK_TRACE(trace_, util::SimTime::from_seconds_f(now_s), k_unlock_, "");
    return {true, UdsNrc::kNone, {}};
  }
  ++failed_attempts_;
  c_invalid_key_->inc();
  ASECK_TRACE(trace_, util::SimTime::from_seconds_f(now_s), k_invalid_key_,
              "attempt=" + std::to_string(failed_attempts_));
  if (failed_attempts_ >= cfg_.max_attempts) {
    lockout_until_s_ = now_s + cfg_.lockout_s;
    failed_attempts_ = 0;
    c_lockouts_->inc();
    ASECK_TRACE(trace_, util::SimTime::from_seconds_f(now_s), k_lockout_,
                "until_s=" + std::to_string(lockout_until_s_));
    return {false, UdsNrc::kExceededAttempts, {}};
  }
  return {false, UdsNrc::kInvalidKey, {}};
}

UdsResponse UdsServer::read_data(std::uint16_t did) {
  const auto it = dids_.find(did);
  if (it == dids_.end()) return {false, UdsNrc::kRequestOutOfRange, {}};
  return {true, UdsNrc::kNone, it->second.value};
}

UdsResponse UdsServer::write_data(std::uint16_t did, util::BytesView value,
                                  double now_s) {
  (void)now_s;
  const auto it = dids_.find(did);
  if (it == dids_.end()) return {false, UdsNrc::kRequestOutOfRange, {}};
  if (it->second.write_protected && !unlocked_) {
    return {false, UdsNrc::kSecurityAccessDenied, {}};
  }
  it->second.value.assign(value.begin(), value.end());
  return {true, UdsNrc::kNone, {}};
}

UdsResponse UdsServer::request_download(double now_s) {
  (void)now_s;
  if (session_ != UdsSession::kProgramming) {
    return {false, UdsNrc::kConditionsNotCorrect, {}};
  }
  if (!unlocked_) return {false, UdsNrc::kSecurityAccessDenied, {}};
  return {true, UdsNrc::kNone, {0x20, 0x10}};  // maxNumberOfBlockLength
}

void UdsServer::define_did(std::uint16_t did, util::Bytes value,
                           bool write_protected) {
  dids_[did] = DidEntry{std::move(value), write_protected};
}

UdsAttackResult brute_force_security_access(UdsServer& server,
                                            std::uint64_t max_tries,
                                            double start_time_s,
                                            util::Rng& rng) {
  UdsAttackResult out;
  double now = start_time_s;
  server.session_control(UdsSession::kExtended, now);
  for (std::uint64_t i = 0; i < max_tries; ++i) {
    const UdsResponse seed_resp = server.request_seed(now);
    if (!seed_resp.positive) {
      if (seed_resp.nrc == UdsNrc::kRequiredTimeDelayNotExpired) {
        out.locked_out = true;
        return out;
      }
      now += 0.01;
      continue;
    }
    // Guess: random constant applied to the observed seed (models an
    // attacker who knows the algorithm family but not the constant).
    const auto guess_const = static_cast<std::uint32_t>(rng.next_u64());
    const util::Bytes guess = weak_xor_algorithm(guess_const)(seed_resp.data);
    ++out.attempts;
    const UdsResponse key_resp = server.send_key(guess, now);
    if (key_resp.positive) {
      out.unlocked = true;
      return out;
    }
    if (key_resp.nrc == UdsNrc::kExceededAttempts) {
      out.locked_out = true;
      return out;
    }
    now += 0.05;  // tester cadence
  }
  return out;
}

}  // namespace aseck::ivn
