#include "ivn/secoc.hpp"

#include <cmath>
#include <stdexcept>

#include "util/coverage.hpp"

namespace aseck::ivn {

std::uint64_t FreshnessManager::next_tx(std::uint16_t data_id) {
  return ++tx_[data_id];
}

std::uint64_t FreshnessManager::last_rx(std::uint16_t data_id) const {
  const auto it = rx_.find(data_id);
  return it == rx_.end() ? 0 : it->second;
}

void FreshnessManager::accept_rx(std::uint16_t data_id, std::uint64_t value) {
  rx_[data_id] = value;
}

void FreshnessManager::set_tx(std::uint16_t data_id, std::uint64_t value) {
  tx_[data_id] = value;
}

SecOcChannel::SecOcChannel(util::BytesView key, SecOcConfig cfg)
    : cmac_(key), cfg_(cfg) {
  if (cfg_.mac_bytes == 0 || cfg_.mac_bytes > 16) {
    throw std::invalid_argument("SecOcChannel: mac_bytes must be 1..16");
  }
  if (cfg_.freshness_bytes > 8) {
    throw std::invalid_argument("SecOcChannel: freshness_bytes must be <= 8");
  }
}

util::Bytes SecOcChannel::mac_input(std::uint16_t data_id,
                                    util::BytesView payload,
                                    std::uint64_t freshness) const {
  util::Bytes in;
  in.reserve(2 + payload.size() + 8);
  util::append_be(in, data_id, 2);
  in.insert(in.end(), payload.begin(), payload.end());
  util::append_be(in, freshness, 8);
  return in;
}

util::Bytes SecOcChannel::protect(std::uint16_t data_id, util::BytesView payload,
                                  FreshnessManager& fm) const {
  const std::uint64_t fresh = fm.next_tx(data_id);
  util::Bytes pdu(payload.begin(), payload.end());
  if (cfg_.freshness_bytes > 0) {
    util::append_be(pdu, fresh, cfg_.freshness_bytes);  // truncated LSBs
  }
  const util::Bytes mac =
      cmac_.tag_truncated(mac_input(data_id, payload, fresh), cfg_.mac_bytes);
  pdu.insert(pdu.end(), mac.begin(), mac.end());
  return pdu;
}

SecOcChannel::VerifyResult SecOcChannel::verify(std::uint16_t data_id,
                                                util::BytesView secured,
                                                FreshnessManager& fm) const {
  const std::size_t overhead_len = overhead();
  if (secured.size() < overhead_len) {
    ASECK_COV("secoc.verify.too_short");
    return {SecOcStatus::kTooShort, {}};
  }
  const std::size_t payload_len = secured.size() - overhead_len;
  const util::BytesView payload = secured.subspan(0, payload_len);
  const util::BytesView fresh_trunc =
      secured.subspan(payload_len, cfg_.freshness_bytes);
  const util::BytesView mac =
      secured.subspan(payload_len + cfg_.freshness_bytes, cfg_.mac_bytes);

  const std::uint64_t last = fm.last_rx(data_id);

  // Reconstruct the full freshness from its truncated LSBs: find the
  // smallest candidate > last whose low bits match, within the window.
  std::uint64_t candidate;
  if (cfg_.freshness_bytes == 0) {
    candidate = last + 1;  // pure implicit freshness: try successors
  } else {
    const unsigned bits = static_cast<unsigned>(cfg_.freshness_bytes * 8);
    std::uint64_t trunc = 0;
    for (std::uint8_t b : fresh_trunc) trunc = (trunc << 8) | b;
    const std::uint64_t modulus =
        (bits >= 64) ? 0 : (std::uint64_t{1} << bits);
    if (modulus == 0) {
      candidate = trunc;  // full freshness transmitted
      if (candidate <= last) {
        ASECK_COV("secoc.verify.replay_full");
        return {SecOcStatus::kFreshnessReplay, {}};
      }
    } else {
      const std::uint64_t base = last & ~(modulus - 1);
      candidate = base | trunc;
      if (candidate <= last) candidate += modulus;
      if (candidate - last > cfg_.freshness_window) {
        ASECK_COV("secoc.verify.out_of_window");
        return {SecOcStatus::kFreshnessOutOfWindow, {}};
      }
    }
  }

  const util::Bytes expect_input = mac_input(data_id, payload, candidate);
  if (!cmac_.verify(expect_input, mac)) {
    // With implicit freshness, scan the window for the matching successor.
    if (cfg_.freshness_bytes == 0) {
      for (std::uint64_t f = candidate + 1; f <= last + cfg_.freshness_window;
           ++f) {
        if (cmac_.verify(mac_input(data_id, payload, f), mac)) {
          ASECK_COV("secoc.verify.ok_implicit");
          fm.accept_rx(data_id, f);
          return {SecOcStatus::kOk, util::Bytes(payload.begin(), payload.end())};
        }
      }
    }
    ASECK_COV("secoc.verify.mac_mismatch");
    return {SecOcStatus::kMacMismatch, {}};
  }
  ASECK_COV("secoc.verify.ok");
  fm.accept_rx(data_id, candidate);
  return {SecOcStatus::kOk, util::Bytes(payload.begin(), payload.end())};
}

double SecOcChannel::forgery_probability() const {
  return std::pow(2.0, -8.0 * static_cast<double>(cfg_.mac_bytes));
}

}  // namespace aseck::ivn
