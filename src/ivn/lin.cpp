#include "ivn/lin.hpp"

#include <stdexcept>

namespace aseck::ivn {

std::uint8_t lin_protected_id(std::uint8_t id6) {
  const std::uint8_t id = id6 & 0x3f;
  const std::uint8_t p0 = static_cast<std::uint8_t>(
      ((id >> 0) ^ (id >> 1) ^ (id >> 2) ^ (id >> 4)) & 1);
  const std::uint8_t p1 = static_cast<std::uint8_t>(
      (~((id >> 1) ^ (id >> 3) ^ (id >> 4) ^ (id >> 5))) & 1);
  return static_cast<std::uint8_t>(id | (p0 << 6) | (p1 << 7));
}

std::uint8_t lin_checksum(std::uint8_t pid, util::BytesView data, bool enhanced) {
  std::uint32_t sum = enhanced ? pid : 0;
  for (std::uint8_t b : data) {
    sum += b;
    if (sum >= 256) sum -= 255;  // carry wraps into bit 0
  }
  return static_cast<std::uint8_t>(~sum & 0xff);
}

LinMaster::LinMaster(Scheduler& sched, std::string name, std::uint64_t bitrate_bps)
    : sched_(sched),
      name_(std::move(name)),
      bitrate_(bitrate_bps),
      trace_(name_),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  if (bitrate_ == 0) throw std::invalid_argument("LinMaster: zero bitrate");
  wire_telemetry();
}

void LinMaster::wire_telemetry() {
  const std::string p = "lin." + name_ + ".";
  const auto rewire = [this, &p](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(p + key);
    if (c && c != &nc) nc.inc(c->value());
    c = &nc;
  };
  rewire(c_frames_ok_, "frames_ok");
  rewire(c_no_response_, "no_response");
  rewire(c_checksum_errors_, "checksum_errors");
  rewire(c_dropped_fault_, "dropped_fault");
  k_frame_ = trace_.kind("frame");
  k_no_response_ = trace_.kind("no_response");
  k_checksum_error_ = trace_.kind("checksum_error");
  k_fault_drop_ = trace_.kind("fault_drop");
}

void LinMaster::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

void LinMaster::attach(LinSlave* slave) { slaves_.push_back(slave); }

void LinMaster::set_schedule(std::vector<LinSlot> table) {
  schedule_ = std::move(table);
}

void LinMaster::start() {
  if (schedule_.empty()) throw std::logic_error("LinMaster: empty schedule");
  if (running_) return;
  running_ = true;
  sched_.schedule_in(SimTime::zero(), [this] { run_slot(0); });
}

void LinMaster::stop() { running_ = false; }

void LinMaster::run_slot(std::size_t index) {
  if (!running_) return;
  const LinSlot& slot = schedule_[index];
  const std::uint8_t pid = lin_protected_id(slot.id);

  // Header: 13-bit break + sync byte + pid byte (with start/stop bits:
  // 10 bits per byte on LIN UART framing) ~= 34 bit times.
  std::optional<util::Bytes> response;
  LinSlave* responder = nullptr;
  for (LinSlave* s : slaves_) {
    response = s->respond(slot.id);
    if (response) {
      responder = s;
      break;
    }
  }

  if (!response) {
    c_no_response_->inc();
    ASECK_TRACE(trace_, sched_.now(), k_no_response_,
                "id=" + std::to_string(slot.id));
  } else if (fault_port_ && (fault_port_->down() || fault_port_->roll_drop())) {
    // Injected fault: the response is lost on the wire.
    c_dropped_fault_->inc();
    ASECK_TRACE(trace_, sched_.now(), k_fault_drop_,
                "id=" + std::to_string(slot.id));
  } else {
    LinFrame frame{slot.id, *response, true};
    const std::uint8_t expected =
        lin_checksum(pid, frame.data, frame.enhanced_checksum);
    bool corrupted = false;
    if (corruptor_) corrupted = corruptor_(frame.data);
    if (fault_port_ && fault_port_->roll_corrupt() && !frame.data.empty()) {
      frame.data[0] = static_cast<std::uint8_t>(frame.data[0] ^ 0xff);
      corrupted = true;
    }
    const std::uint8_t actual =
        lin_checksum(pid, frame.data, frame.enhanced_checksum);
    if (corrupted && actual != expected) {
      c_checksum_errors_->inc();
      ASECK_TRACE(trace_, sched_.now(), k_checksum_error_,
                  "id=" + std::to_string(slot.id));
    } else {
      c_frames_ok_->inc();
      // Response time: (data+checksum) bytes at 10 bits each + header.
      const std::size_t bits = 34 + (frame.data.size() + 1) * 10;
      const SimTime when = sched_.now() + SimTime::from_seconds_f(
          static_cast<double>(bits) / static_cast<double>(bitrate_));
      ASECK_TRACE(trace_, when, k_frame_, "id=" + std::to_string(slot.id));
      for (LinSlave* s : slaves_) {
        if (s != responder) s->on_frame(frame, when);
      }
    }
  }

  const std::size_t next = (index + 1) % schedule_.size();
  sched_.schedule_in(slot.slot_time, [this, next] { run_slot(next); });
}

}  // namespace aseck::ivn
