#include "ivn/lin.hpp"

#include <stdexcept>

namespace aseck::ivn {

std::uint8_t lin_protected_id(std::uint8_t id6) {
  const std::uint8_t id = id6 & 0x3f;
  const std::uint8_t p0 = static_cast<std::uint8_t>(
      ((id >> 0) ^ (id >> 1) ^ (id >> 2) ^ (id >> 4)) & 1);
  const std::uint8_t p1 = static_cast<std::uint8_t>(
      (~((id >> 1) ^ (id >> 3) ^ (id >> 4) ^ (id >> 5))) & 1);
  return static_cast<std::uint8_t>(id | (p0 << 6) | (p1 << 7));
}

std::uint8_t lin_checksum(std::uint8_t pid, util::BytesView data, bool enhanced) {
  std::uint32_t sum = enhanced ? pid : 0;
  for (std::uint8_t b : data) {
    sum += b;
    if (sum >= 256) sum -= 255;  // carry wraps into bit 0
  }
  return static_cast<std::uint8_t>(~sum & 0xff);
}

LinMaster::LinMaster(Scheduler& sched, std::string name, std::uint64_t bitrate_bps)
    : sched_(sched), name_(std::move(name)), bitrate_(bitrate_bps) {
  if (bitrate_ == 0) throw std::invalid_argument("LinMaster: zero bitrate");
}

void LinMaster::attach(LinSlave* slave) { slaves_.push_back(slave); }

void LinMaster::set_schedule(std::vector<LinSlot> table) {
  schedule_ = std::move(table);
}

void LinMaster::start() {
  if (schedule_.empty()) throw std::logic_error("LinMaster: empty schedule");
  if (running_) return;
  running_ = true;
  sched_.schedule_in(SimTime::zero(), [this] { run_slot(0); });
}

void LinMaster::stop() { running_ = false; }

void LinMaster::run_slot(std::size_t index) {
  if (!running_) return;
  const LinSlot& slot = schedule_[index];
  const std::uint8_t pid = lin_protected_id(slot.id);

  // Header: 13-bit break + sync byte + pid byte (with start/stop bits:
  // 10 bits per byte on LIN UART framing) ~= 34 bit times.
  std::optional<util::Bytes> response;
  LinSlave* responder = nullptr;
  for (LinSlave* s : slaves_) {
    response = s->respond(slot.id);
    if (response) {
      responder = s;
      break;
    }
  }

  if (!response) {
    ++no_response_;
    trace_.record(sched_.now(), name_, "no_response",
                  "id=" + std::to_string(slot.id));
  } else {
    LinFrame frame{slot.id, *response, true};
    const std::uint8_t expected =
        lin_checksum(pid, frame.data, frame.enhanced_checksum);
    bool corrupted = false;
    if (corruptor_) corrupted = corruptor_(frame.data);
    const std::uint8_t actual =
        lin_checksum(pid, frame.data, frame.enhanced_checksum);
    if (corrupted && actual != expected) {
      ++checksum_errors_;
      trace_.record(sched_.now(), name_, "checksum_error",
                    "id=" + std::to_string(slot.id));
    } else {
      ++frames_ok_;
      // Response time: (data+checksum) bytes at 10 bits each + header.
      const std::size_t bits = 34 + (frame.data.size() + 1) * 10;
      const SimTime when = sched_.now() + SimTime::from_seconds_f(
          static_cast<double>(bits) / static_cast<double>(bitrate_));
      trace_.record(when, name_, "frame", "id=" + std::to_string(slot.id));
      for (LinSlave* s : slaves_) {
        if (s != responder) s->on_frame(frame, when);
      }
    }
  }

  const std::size_t next = (index + 1) % schedule_.size();
  sched_.schedule_in(slot.slot_time, [this, next] { run_slot(next); });
}

}  // namespace aseck::ivn
