#pragma once
// AUTOSAR E2E protection, Profile 1 style: CRC-8 (SAE J1850) over
// data-id + payload, plus a 4-bit alive counter. E2E targets *random*
// corruption and stale/lost frames (functional safety, ISO 26262), NOT
// adversaries — a point the paper's safety/security interplay discussion
// needs: E2E alone is routinely mistaken for security. The tests and the
// attack harness show a forger trivially recomputing the CRC, while SecOC
// (keyed MAC) holds.

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"
#include "util/crc.hpp"

namespace aseck::ivn {

struct E2eConfig {
  std::uint16_t data_id = 0;
  /// Max counter jump tolerated before declaring a communication loss.
  std::uint8_t max_delta_counter = 2;
};

enum class E2eStatus {
  kOk,
  kOkSomeLost,   // counter jumped but within max_delta
  kWrongCrc,
  kRepeated,     // same counter as last frame (stale/replayed)
  kWrongSequence,  // jump beyond max_delta
};
const char* e2e_status_name(E2eStatus s);

class E2eProtector {
 public:
  explicit E2eProtector(E2eConfig cfg) : cfg_(cfg) {}

  /// Wraps payload: [crc][counter][payload...]; counter auto-increments 0..14
  /// (15 reserved, per profile).
  util::Bytes protect(util::BytesView payload);

 private:
  E2eConfig cfg_;
  std::uint8_t counter_ = 0;
};

class E2eChecker {
 public:
  explicit E2eChecker(E2eConfig cfg) : cfg_(cfg) {}

  struct Result {
    E2eStatus status;
    util::Bytes payload;
  };
  Result check(util::BytesView protected_pdu);

  /// Per-status counters since construction. `repeated()` is the E2E-layer
  /// detector for the chaos plane's frame-*duplicate* fault: a duplicated
  /// delivery carries the same alive counter and is flagged kRepeated, so a
  /// supervision layer can distinguish replay/echo from loss.
  std::uint64_t ok() const { return count(E2eStatus::kOk); }
  std::uint64_t ok_some_lost() const { return count(E2eStatus::kOkSomeLost); }
  std::uint64_t wrong_crc() const { return count(E2eStatus::kWrongCrc); }
  std::uint64_t repeated() const { return count(E2eStatus::kRepeated); }
  std::uint64_t wrong_sequence() const {
    return count(E2eStatus::kWrongSequence);
  }
  std::uint64_t count(E2eStatus s) const {
    return counts_[static_cast<std::size_t>(s)];
  }

 private:
  E2eConfig cfg_;
  std::optional<std::uint8_t> last_counter_;
  std::uint64_t counts_[5] = {0, 0, 0, 0, 0};
};

/// The E2E CRC over data-id low/high + counter + payload (exposed so the
/// attack harness can forge valid-looking frames, demonstrating that E2E is
/// not a security mechanism).
std::uint8_t e2e_crc(const E2eConfig& cfg, std::uint8_t counter,
                     util::BytesView payload);

}  // namespace aseck::ivn
