#include "ivn/ethernet.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace aseck::ivn {

namespace {
std::uint64_t mac_key(const MacAddress& m) {
  std::uint64_t v = 0;
  for (auto b : m) v = (v << 8) | b;
  return v;
}
}  // namespace

MacAddress mac_from_u64(std::uint64_t v) {
  MacAddress m;
  for (int i = 5; i >= 0; --i) {
    m[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
  return m;
}

std::string mac_to_string(const MacAddress& m) {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1],
                m[2], m[3], m[4], m[5]);
  return buf;
}

bool PortPolicer::admit(std::size_t bytes, SimTime now) {
  if (rate_bps <= 0) return true;
  const double elapsed = (now - last).seconds();
  last = now;
  tokens = std::min(burst_bytes, tokens + elapsed * rate_bps);
  if (tokens >= static_cast<double>(bytes)) {
    tokens -= static_cast<double>(bytes);
    return true;
  }
  return false;
}

EthernetSwitch::EthernetSwitch(Scheduler& sched, std::string name,
                               std::uint64_t link_bps, SimTime processing_delay)
    : sched_(sched),
      name_(std::move(name)),
      link_bps_(link_bps),
      processing_delay_(processing_delay),
      trace_(name_),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  if (link_bps_ == 0) throw std::invalid_argument("EthernetSwitch: zero rate");
  wire_telemetry();
}

void EthernetSwitch::wire_telemetry() {
  const std::string p = "ethernet." + name_ + ".";
  const auto rewire = [this, &p](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(p + key);
    if (c && c != &nc) nc.inc(c->value());
    c = &nc;
  };
  rewire(c_forwarded_, "forwarded");
  rewire(c_dropped_policer_, "dropped_policer");
  rewire(c_dropped_vlan_, "dropped_vlan");
  rewire(c_dropped_port_down_, "dropped_port_down");
  rewire(c_flooded_, "flooded");
  rewire(c_dropped_fault_, "dropped_fault");
  rewire(c_corrupted_fault_, "corrupted_fault");
  rewire(c_duplicated_fault_, "duplicated_fault");
  k_port_up_ = trace_.kind("port_up");
  k_port_down_ = trace_.kind("port_down");
  k_drop_vlan_ = trace_.kind("drop_vlan");
  k_drop_policed_ = trace_.kind("drop_policed");
  k_fault_drop_ = trace_.kind("fault_drop");
  k_fault_corrupt_ = trace_.kind("fault_corrupt");
  k_fault_dup_ = trace_.kind("fault_dup");
}

void EthernetSwitch::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

std::size_t EthernetSwitch::connect(EthernetEndpoint* ep) {
  ports_.push_back(Port{ep, {}, {}, true});
  return ports_.size() - 1;
}

void EthernetSwitch::set_port_vlans(std::size_t port,
                                    std::vector<std::uint16_t> vlans) {
  ports_.at(port).vlans = std::move(vlans);
}

void EthernetSwitch::set_policer(std::size_t port, double rate_bytes_per_sec,
                                 double burst_bytes) {
  auto& p = ports_.at(port).policer;
  p.rate_bps = rate_bytes_per_sec;
  p.burst_bytes = burst_bytes;
  p.tokens = burst_bytes;
  p.last = sched_.now();
}

void EthernetSwitch::set_port_enabled(std::size_t port, bool enabled) {
  ports_.at(port).enabled = enabled;
  ASECK_TRACE(trace_, sched_.now(), enabled ? k_port_up_ : k_port_down_,
              "port=" + std::to_string(port));
}

bool EthernetSwitch::port_enabled(std::size_t port) const {
  return ports_.at(port).enabled;
}

bool EthernetSwitch::vlan_allowed(const Port& p, std::uint16_t vlan) const {
  if (p.vlans.empty()) return true;
  return std::find(p.vlans.begin(), p.vlans.end(), vlan) != p.vlans.end();
}

bool EthernetSwitch::send(std::size_t port, EthernetFrame frame) {
  Port& in = ports_.at(port);
  if (!in.enabled) {
    c_dropped_port_down_->inc();
    return false;
  }
  if (!vlan_allowed(in, frame.vlan)) {
    c_dropped_vlan_->inc();
    ASECK_TRACE(trace_, sched_.now(), k_drop_vlan_,
                "port=" + std::to_string(port));
    return false;
  }
  if (!in.policer.admit(frame.wire_bytes(), sched_.now())) {
    c_dropped_policer_->inc();
    ASECK_TRACE(trace_, sched_.now(), k_drop_policed_,
                "port=" + std::to_string(port));
    return false;
  }
  if (fault_port_ && (fault_port_->down() || fault_port_->roll_drop())) {
    c_dropped_fault_->inc();
    ASECK_TRACE(trace_, sched_.now(), k_fault_drop_,
                "port=" + std::to_string(port));
    return false;
  }
  if (fault_port_ && fault_port_->roll_corrupt() && !frame.payload.empty()) {
    frame.payload[0] = static_cast<std::uint8_t>(frame.payload[0] ^ 0xff);
    c_corrupted_fault_->inc();
    ASECK_TRACE(trace_, sched_.now(), k_fault_corrupt_,
                "port=" + std::to_string(port));
  }
  // Learn source MAC.
  fdb_[mac_key(frame.src)] = port;

  // Store-and-forward latency: ingress serialization + processing (+ any
  // injected queueing delay).
  SimTime latency =
      SimTime::from_seconds_f(static_cast<double>(frame.wire_bytes() * 8) /
                              static_cast<double>(link_bps_)) +
      processing_delay_;
  if (fault_port_) latency += fault_port_->roll_delay();
  const bool duplicate = fault_port_ && fault_port_->roll_duplicate();
  auto forward = [this, port, frame = std::move(frame)] {
    const auto it = fdb_.find(mac_key(frame.dst));
    if (frame.dst != kBroadcastMac && it != fdb_.end() && it->second != port) {
      deliver(it->second, frame);
    } else if (frame.dst == kBroadcastMac || it == fdb_.end()) {
      c_flooded_->inc();
      for (std::size_t p = 0; p < ports_.size(); ++p) {
        if (p != port) deliver(p, frame);
      }
    }
  };
  if (duplicate) {
    c_duplicated_fault_->inc();
    ASECK_TRACE(trace_, sched_.now(), k_fault_dup_,
                "port=" + std::to_string(port));
    sched_.schedule_in(latency, forward);
  }
  sched_.schedule_in(latency, std::move(forward));
  return true;
}

void EthernetSwitch::deliver(std::size_t port, const EthernetFrame& frame) {
  Port& out = ports_.at(port);
  if (!out.enabled || !vlan_allowed(out, frame.vlan)) {
    if (!out.enabled) {
      c_dropped_port_down_->inc();
    } else {
      c_dropped_vlan_->inc();
    }
    return;
  }
  c_forwarded_->inc();
  // Egress serialization.
  const SimTime tx = SimTime::from_seconds_f(
      static_cast<double>(frame.wire_bytes() * 8) / static_cast<double>(link_bps_));
  sched_.schedule_in(tx, [this, port, frame] {
    ports_.at(port).ep->on_frame(frame, sched_.now());
  });
}

std::optional<std::size_t> EthernetSwitch::learned_port(const MacAddress& mac) const {
  const auto it = fdb_.find(mac_key(mac));
  if (it == fdb_.end()) return std::nullopt;
  return it->second;
}

}  // namespace aseck::ivn
