#pragma once
// AUTOSAR SecOC-style onboard communication protection: a truncated
// freshness value plus a truncated AES-CMAC are appended to each protected
// PDU. The truncation lengths are the central security/bandwidth trade-off
// that experiment E1 sweeps (paper Section 6, "Optimization Needs").
//
// MAC input = DataId (16-bit BE) || payload || full freshness (64-bit BE).
// Wire format = payload || truncated freshness || truncated MAC.

#include <cstdint>
#include <map>
#include <optional>

#include "crypto/cmac.hpp"
#include "util/bytes.hpp"

namespace aseck::ivn {

struct SecOcConfig {
  std::size_t mac_bytes = 4;        // truncated MAC length (1..16)
  std::size_t freshness_bytes = 1;  // truncated freshness length (0..8)
  std::uint64_t freshness_window = 16;  // acceptance window for reconstruction
};

/// Freshness value manager: monotone 64-bit counters per data id.
class FreshnessManager {
 public:
  /// Next value for transmission (increments).
  std::uint64_t next_tx(std::uint16_t data_id);
  /// Last accepted value on the receive side.
  std::uint64_t last_rx(std::uint16_t data_id) const;
  /// Records an accepted receive value.
  void accept_rx(std::uint16_t data_id, std::uint64_t value);
  /// Forces the tx counter (used by tests / resync).
  void set_tx(std::uint16_t data_id, std::uint64_t value);

 private:
  std::map<std::uint16_t, std::uint64_t> tx_;
  std::map<std::uint16_t, std::uint64_t> rx_;
};

/// Result of verifying a secured PDU.
enum class SecOcStatus {
  kOk,
  kTooShort,
  kMacMismatch,
  kFreshnessReplay,   // freshness not newer than last accepted
  kFreshnessOutOfWindow,
};

class SecOcChannel {
 public:
  SecOcChannel(util::BytesView key, SecOcConfig cfg = {});

  /// Builds a secured PDU for `payload` under `data_id`.
  util::Bytes protect(std::uint16_t data_id, util::BytesView payload,
                      FreshnessManager& fm) const;

  /// Verifies a secured PDU; on success returns the payload and records the
  /// freshness in `fm`.
  struct VerifyResult {
    SecOcStatus status;
    util::Bytes payload;
  };
  VerifyResult verify(std::uint16_t data_id, util::BytesView secured,
                      FreshnessManager& fm) const;

  const SecOcConfig& config() const { return cfg_; }
  /// Bytes of security overhead per PDU.
  std::size_t overhead() const { return cfg_.mac_bytes + cfg_.freshness_bytes; }

  /// Probability that a random forgery passes the MAC check: 2^-8*mac_bytes.
  double forgery_probability() const;

 private:
  util::Bytes mac_input(std::uint16_t data_id, util::BytesView payload,
                        std::uint64_t freshness) const;

  crypto::Cmac cmac_;
  SecOcConfig cfg_;
};

}  // namespace aseck::ivn
