#include "ivn/can.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/bytes.hpp"
#include "util/coverage.hpp"
#include "util/crc.hpp"

namespace aseck::ivn {

std::size_t CanFrame::fd_round_up(std::size_t n) {
  static constexpr std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,  6,  7,
                                           8,  12, 16, 20, 24, 32, 48, 64};
  for (std::size_t s : kSizes) {
    if (n <= s) return s;
  }
  return 64;
}

namespace {
constexpr std::size_t kFdDlcSizes[16] = {0, 1,  2,  3,  4,  5,  6,  7,
                                         8, 12, 16, 20, 24, 32, 48, 64};
}  // namespace

util::Bytes CanFrame::encode_wire() const {
  util::Bytes out;
  out.reserve(6 + data.size());
  std::uint8_t flags = 0;
  if (extended) flags |= 0x01;
  if (remote) flags |= 0x02;
  if (format == CanFormat::kFd) flags |= 0x04;
  if (brs) flags |= 0x08;
  out.push_back(flags);
  util::append_be(out, id, 4);
  std::uint8_t dlc = 0;
  if (format == CanFormat::kClassic) {
    dlc = static_cast<std::uint8_t>(data.size());
  } else {
    for (std::uint8_t i = 0; i < 16; ++i) {
      if (kFdDlcSizes[i] == data.size()) {
        dlc = i;
        break;
      }
    }
  }
  out.push_back(dlc);
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

std::optional<CanFrame> CanFrame::decode_wire(util::BytesView b) {
  if (b.size() < 6) {
    ASECK_COV("can.decode.too_short");
    return std::nullopt;
  }
  const std::uint8_t flags = b[0];
  if ((flags & ~0x0Fu) != 0) {
    ASECK_COV("can.decode.bad_flags");
    return std::nullopt;
  }
  CanFrame f;
  f.extended = (flags & 0x01) != 0;
  f.remote = (flags & 0x02) != 0;
  f.format = (flags & 0x04) != 0 ? CanFormat::kFd : CanFormat::kClassic;
  f.brs = (flags & 0x08) != 0;
  f.id = util::load_be32(b.data() + 1);
  if (f.id > (f.extended ? 0x1fffffffu : 0x7ffu)) {
    ASECK_COV("can.decode.bad_id");
    return std::nullopt;
  }
  const std::uint8_t dlc = b[5];
  std::size_t len;
  if (f.format == CanFormat::kClassic) {
    // The V10 class: a lenient decoder treats dlc 9..15 as "read 9..15
    // bytes" from an 8-byte buffer. Strictly reject instead.
    if (dlc > 8) {
      ASECK_COV("can.decode.dlc_overflow");
      return std::nullopt;
    }
    if (f.brs) {
      ASECK_COV("can.decode.brs_classic");
      return std::nullopt;
    }
    len = dlc;
  } else {
    if (dlc > 15 || f.remote) {
      ASECK_COV("can.decode.bad_fd");
      return std::nullopt;
    }
    len = kFdDlcSizes[dlc];
  }
  if (f.remote && len != 0) {
    ASECK_COV("can.decode.remote_data");
    return std::nullopt;
  }
  // The payload must be exactly the DLC-declared length: no trailing bytes,
  // no short reads silently zero-extended.
  if (b.size() - 6 != len) {
    ASECK_COV("can.decode.len_mismatch");
    return std::nullopt;
  }
  f.data.assign(b.begin() + 6, b.end());
  ASECK_COV("can.decode.ok");
  return f;
}

bool CanFrame::valid() const {
  const std::uint32_t max_id = extended ? 0x1fffffffu : 0x7ffu;
  if (id > max_id) return false;
  if (format == CanFormat::kClassic) {
    return data.size() <= 8 && (!remote || data.empty());
  }
  // FD: no remote frames; payload must be an exact FD size.
  return !remote && data.size() <= 64 && fd_round_up(data.size()) == data.size();
}

std::vector<bool> CanFrame::stuff_region_bits() const {
  std::vector<bool> bits;
  bits.push_back(false);  // SOF (dominant)
  auto push_field = [&bits](std::uint32_t v, int width) {
    for (int i = width - 1; i >= 0; --i) bits.push_back((v >> i) & 1u);
  };
  if (!extended) {
    push_field(id, 11);
    bits.push_back(remote);  // RTR
    bits.push_back(false);   // IDE
    bits.push_back(format == CanFormat::kFd);  // r0 / FDF
  } else {
    push_field(id >> 18, 11);
    bits.push_back(true);   // SRR
    bits.push_back(true);   // IDE
    push_field(id & 0x3ffff, 18);
    bits.push_back(remote);
    bits.push_back(false);  // r1
    bits.push_back(format == CanFormat::kFd);
  }
  // DLC
  std::uint32_t dlc;
  if (format == CanFormat::kClassic) {
    dlc = static_cast<std::uint32_t>(data.size());
  } else {
    static constexpr std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,  6,  7,
                                             8,  12, 16, 20, 24, 32, 48, 64};
    dlc = 8;
    for (std::uint32_t i = 0; i < 16; ++i) {
      if (kSizes[i] == data.size()) {
        dlc = i;
        break;
      }
    }
  }
  push_field(dlc, 4);
  for (std::uint8_t b : data) push_field(b, 8);
  // CRC over the bit stream so far: pack bits into bytes (MSB first).
  util::Bytes packed((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) packed[i / 8] |= static_cast<std::uint8_t>(0x80u >> (i % 8));
  }
  if (format == CanFormat::kClassic) {
    push_field(util::crc15_can(packed), 15);
  } else if (data.size() <= 16) {
    push_field(util::crc17_canfd(packed), 17);
  } else {
    push_field(util::crc21_canfd(packed), 21);
  }
  return bits;
}

std::size_t CanFrame::wire_bits(std::size_t* arbitration_bits) const {
  const std::vector<bool> bits = stuff_region_bits();
  // Count stuff bits: after 5 consecutive equal bits, a complementary bit is
  // inserted (which itself participates in subsequent runs).
  std::size_t stuffed = bits.size();
  int run = 1;
  bool last = bits[0];
  for (std::size_t i = 1; i < bits.size(); ++i) {
    if (bits[i] == last) {
      if (++run == 5) {
        ++stuffed;   // inserted complement bit
        last = !last;  // run restarts at the stuff bit
        run = 1;
      }
    } else {
      last = bits[i];
      run = 1;
    }
  }
  // Trailer: CRC delimiter + ACK slot + ACK delimiter + EOF(7) + IFS(3).
  const std::size_t trailer = 1 + 1 + 1 + 7 + 3;
  if (arbitration_bits) {
    // For FD/BRS: everything before the DLC region is nominal-rate. We
    // approximate the nominal-rate portion as the arbitration field
    // (SOF..IDE) which is close enough for load studies: ~30 bits for
    // base, ~50 for extended, plus the trailer which is also nominal.
    *arbitration_bits = (extended ? 50 : 30) + trailer;
  }
  return stuffed + trailer;
}

CanBus::CanBus(Scheduler& sched, std::string name, std::uint64_t bitrate_bps,
               std::uint64_t data_bitrate_bps)
    : sched_(sched),
      name_(std::move(name)),
      bitrate_(bitrate_bps),
      data_bitrate_(data_bitrate_bps ? data_bitrate_bps : bitrate_bps),
      trace_(name_),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  if (bitrate_ == 0) throw std::invalid_argument("CanBus: zero bitrate");
  wire_telemetry();
}

void CanBus::wire_telemetry() {
  const std::string p = "can." + name_ + ".";
  const auto rewire = [this, &p](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(p + key);
    if (c && c != &nc) nc.inc(c->value());  // carry accumulated value across
    c = &nc;
  };
  rewire(c_frames_ok_, "frames_ok");
  rewire(c_frames_error_, "frames_error");
  rewire(c_bits_on_wire_, "bits_on_wire");
  rewire(c_busy_ns_, "busy_ns");
  rewire(c_frames_dropped_fault_, "frames_dropped_fault");
  rewire(c_frames_duplicated_, "frames_duplicated");
  rewire(c_frames_malformed_, "frames_malformed");
  k_tx_ = trace_.kind("tx");
  k_tx_start_ = trace_.kind("tx_start");
  k_tx_error_ = trace_.kind("tx_error");
  k_tx_error_start_ = trace_.kind("tx_error_start");
  k_bus_off_ = trace_.kind("bus_off");
  k_recover_ = trace_.kind("recover");
  k_fault_drop_ = trace_.kind("fault_drop");
  k_fault_dup_ = trace_.kind("fault_dup");
  k_fault_malformed_ = trace_.kind("fault_malformed");
}

void CanBus::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

CanBusStats CanBus::stats() const {
  CanBusStats s;
  s.frames_ok = c_frames_ok_->value();
  s.frames_error = c_frames_error_->value();
  s.bits_on_wire = c_bits_on_wire_->value();
  s.busy_time = SimTime::from_ns(c_busy_ns_->value());
  return s;
}

void CanBus::attach(CanNode* node) {
  if (std::find(nodes_.begin(), nodes_.end(), node) == nodes_.end()) {
    nodes_.push_back(node);
  }
}

void CanBus::detach(CanNode* node) {
  const auto it = recovery_timers_.find(node);
  if (it != recovery_timers_.end()) {
    sched_.cancel(it->second);
    recovery_timers_.erase(it);
  }
  nodes_.erase(std::remove(nodes_.begin(), nodes_.end(), node), nodes_.end());
}

SimTime CanBus::frame_time(const CanFrame& frame) const {
  std::size_t arb_bits = 0;
  const std::size_t total = frame.wire_bits(&arb_bits);
  if (frame.format == CanFormat::kFd && frame.brs && data_bitrate_ > bitrate_) {
    const std::size_t data_bits = total > arb_bits ? total - arb_bits : 0;
    const double secs = static_cast<double>(arb_bits) / static_cast<double>(bitrate_) +
                        static_cast<double>(data_bits) / static_cast<double>(data_bitrate_);
    return SimTime::from_seconds_f(secs);
  }
  return SimTime::from_seconds_f(static_cast<double>(total) /
                                 static_cast<double>(bitrate_));
}

bool CanBus::send(CanNode* node, CanFrame frame) {
  if (!frame.valid()) return false;
  if (node->state_ == CanNodeState::kBusOff) return false;
  node->tx_queue_.push_back(std::move(frame));
  if (!busy_) try_start_tx();
  return true;
}

std::size_t CanBus::pending() const {
  std::size_t n = 0;
  for (const CanNode* node : nodes_) n += node->tx_queue_.size();
  return n;
}

void CanBus::try_start_tx() {
  if (busy_) return;
  // Whole-bus fault window (harness-injected transceiver/wiring outage):
  // nothing transmits; queued frames resume on the next send after the
  // window clears.
  if (fault_port_ && fault_port_->down()) return;
  // Arbitration: among all nodes with pending frames, the lowest ID wins.
  // Extended IDs lose to base IDs with the same leading bits; comparing the
  // numeric ID with the extended flag as tie-break captures the priority
  // semantics for distinct IDs.
  CanNode* winner = nullptr;
  for (CanNode* node : nodes_) {
    if (node->tx_queue_.empty() || node->state_ == CanNodeState::kBusOff) continue;
    if (!winner) {
      winner = node;
      continue;
    }
    const CanFrame& a = node->tx_queue_.front();
    const CanFrame& b = winner->tx_queue_.front();
    if (a.id < b.id || (a.id == b.id && !a.extended && b.extended)) {
      winner = node;
    }
  }
  if (!winner) return;
  // Injected frame loss: the frame vanishes before arbitration completes
  // (models a wiring glitch eating the frame without an error flag).
  if (fault_port_ && fault_port_->roll_drop()) {
    winner->tx_queue_.pop_front();
    c_frames_dropped_fault_->inc();
    ASECK_TRACE(trace_, sched_.now(), k_fault_drop_, winner->name());
    try_start_tx();
    return;
  }
  busy_ = true;
  CanFrame frame = winner->tx_queue_.front();
  // Injected malformed frame: the payload is replaced by an attack-corpus
  // entry (clamped to a legal length for the format, so the frame still
  // serializes). Unlike corrupt, the frame is *delivered* — this is how
  // chaos campaigns feed fuzzer-found parser inputs to live receivers.
  if (fault_port_) {
    if (const util::Bytes* payload = fault_port_->roll_malformed()) {
      const std::size_t cap = frame.format == CanFormat::kFd ? 64 : 8;
      frame.remote = false;
      frame.data.assign(payload->begin(),
                        payload->begin() + static_cast<std::ptrdiff_t>(
                                               std::min(payload->size(), cap)));
      if (frame.format == CanFormat::kFd) {
        frame.data.resize(CanFrame::fd_round_up(frame.data.size()), 0);
      }
      c_frames_malformed_->inc();
      ASECK_TRACE(trace_, sched_.now(), k_fault_malformed_, winner->name());
    }
  }
  const SimTime duration = frame_time(frame);
  const bool errored = (error_injector_ && error_injector_(frame, *winner)) ||
                       (fault_port_ && fault_port_->roll_corrupt());
  ASECK_TRACE(trace_, sched_.now(), errored ? k_tx_error_start_ : k_tx_start_,
              winner->name());
  // An errored frame aborts after the error flag (~ error flag + delimiter +
  // IFS ~= 17 bits); model as a fixed fraction of the frame.
  SimTime busy_for =
      errored ? SimTime::from_seconds_f(
                    static_cast<double>(frame.wire_bits(nullptr) / 4 + 17) /
                    static_cast<double>(bitrate_))
              : duration;
  // Injected delay: the medium is disturbed (retransmission-after-noise),
  // holding the bus longer and delivering the frame late.
  if (fault_port_) busy_for += fault_port_->roll_delay();
  c_busy_ns_->inc(busy_for.ns);
  c_bits_on_wire_->inc(frame.wire_bits(nullptr));
  sched_.schedule_in(busy_for, [this, winner, frame, errored] {
    finish_tx(winner, frame, errored);
  });
}

void CanBus::finish_tx(CanNode* node, const CanFrame& frame, bool errored) {
  busy_ = false;
  if (errored) {
    c_frames_error_->inc();
    bump_tx_error(node);
    ASECK_TRACE(trace_, sched_.now(), k_tx_error_, node->name());
    // Frame stays at queue head for retransmission unless the node went
    // bus-off (then the queue is frozen).
    if (node->state_ == CanNodeState::kBusOff) {
      node->tx_queue_.clear();
    }
  } else {
    c_frames_ok_->inc();
    if (!node->tx_queue_.empty()) node->tx_queue_.pop_front();
    // Successful transmission decrements TEC.
    node->tec_ = std::max(0, node->tec_ - 1);
    if (node->state_ == CanNodeState::kErrorPassive && node->tec_ < 128) {
      node->state_ = CanNodeState::kErrorActive;
    }
    ASECK_TRACE(trace_, sched_.now(), k_tx_, node->name());
    const SimTime at = sched_.now();
    for (CanNode* rx : nodes_) {
      if (rx != node && rx->state_ != CanNodeState::kBusOff) {
        rx->on_frame(frame, at);
      }
    }
    node->on_tx_done(frame, at);
    // Injected duplicate: receivers see the frame a second time (replay /
    // echo on the wire) — the attack primitive replay detectors train on.
    if (fault_port_ && fault_port_->roll_duplicate()) {
      c_frames_duplicated_->inc();
      ASECK_TRACE(trace_, sched_.now(), k_fault_dup_, node->name());
      for (CanNode* rx : nodes_) {
        if (rx != node && rx->state_ != CanNodeState::kBusOff) {
          rx->on_frame(frame, at);
        }
      }
    }
  }
  try_start_tx();
}

void CanBus::bump_tx_error(CanNode* node) {
  node->tec_ += 8;  // bit error during transmission
  if (node->tec_ > 255) {
    node->state_ = CanNodeState::kBusOff;
    ASECK_TRACE(trace_, sched_.now(), k_bus_off_, node->name());
    node->on_bus_off(sched_.now());
    // Automatic recovery: after the configured delay (standing in for the
    // 128x11-recessive-bit sequence plus host policy) the node rejoins.
    if (auto_recovery_.ns != 0 && !recovery_timers_.count(node)) {
      recovery_timers_[node] =
          sched_.schedule_after(auto_recovery_, [this, node] {
            recovery_timers_.erase(node);
            if (node->state_ == CanNodeState::kBusOff) recover(node);
          });
    }
  } else if (node->tec_ > 127) {
    node->state_ = CanNodeState::kErrorPassive;
  }
}

void CanBus::recover(CanNode* node) {
  const auto it = recovery_timers_.find(node);
  if (it != recovery_timers_.end()) {
    sched_.cancel(it->second);
    recovery_timers_.erase(it);
  }
  node->tec_ = 0;
  node->rec_ = 0;
  node->state_ = CanNodeState::kErrorActive;
  ASECK_TRACE(trace_, sched_.now(), k_recover_, node->name());
  try_start_tx();
}

}  // namespace aseck::ivn
