#pragma once
// UDS (ISO 14229) diagnostics with SecurityAccess — the classic remote
// entry point of the Miller/Valasek-style attacks the paper cites [15]:
// diagnostics sessions gate reflashing and actuator tests behind a
// seed/key handshake whose strength decides whether "diagnostics" is an
// attack surface or a maintenance feature.
//
// Modeled services: DiagnosticSessionControl (0x10), SecurityAccess (0x27),
// ReadDataByIdentifier (0x22), WriteDataByIdentifier (0x2E),
// RoutineControl (0x31), RequestDownload (0x34) as a flashing gate.
// Two key derivations are provided: a weak XOR-with-constant algorithm
// (as commonly reverse-engineered in the field) and a SHE-backed CMAC.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "crypto/cmac.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace aseck::ivn {

enum class UdsService : std::uint8_t {
  kSessionControl = 0x10,
  kSecurityAccess = 0x27,
  kReadDataById = 0x22,
  kWriteDataById = 0x2E,
  kRoutineControl = 0x31,
  kRequestDownload = 0x34,
};

enum class UdsSession : std::uint8_t {
  kDefault = 0x01,
  kProgramming = 0x02,
  kExtended = 0x03,
};

/// Negative response codes (subset).
enum class UdsNrc : std::uint8_t {
  kNone = 0x00,
  kServiceNotSupported = 0x11,
  kSubFunctionNotSupported = 0x12,
  kIncorrectLength = 0x13,  // incorrectMessageLengthOrInvalidFormat
  kConditionsNotCorrect = 0x22,
  kRequestOutOfRange = 0x31,
  kSecurityAccessDenied = 0x33,
  kInvalidKey = 0x35,
  kExceededAttempts = 0x36,
  kRequiredTimeDelayNotExpired = 0x37,
};

/// Seed-to-key algorithm interface.
using SeedKeyFn = std::function<util::Bytes(util::BytesView seed)>;

/// The widely reverse-engineered weak scheme: key = seed XOR constant.
SeedKeyFn weak_xor_algorithm(std::uint32_t secret_constant);
/// SHE-class scheme: key = AES-CMAC(K, seed), 4-byte truncation.
SeedKeyFn cmac_algorithm(util::Bytes key16);

struct UdsResponse {
  bool positive = false;
  UdsNrc nrc = UdsNrc::kNone;
  util::Bytes data;
};

/// Diagnostic server running on an ECU.
class UdsServer {
 public:
  struct Config {
    SeedKeyFn seed_key;
    std::uint32_t max_attempts = 3;
    /// Lockout after exceeding attempts, in simulated seconds.
    double lockout_s = 600.0;
    std::size_t seed_bytes = 4;
  };
  UdsServer(Config cfg, std::uint64_t seed);

  /// Largest download accepted by RequestDownload (memorySize bound).
  static constexpr std::uint64_t kMaxDownloadBytes = 1u << 20;  // 1 MiB
  /// Largest value accepted by WriteDataByIdentifier.
  static constexpr std::size_t kMaxWriteBytes = 4095;

  /// Byte-level request decoding — what actually arrives in diagnostic
  /// frames on the wire: [SID, subfunction/params...]. Returns the raw
  /// response: positive = [SID+0x40, data...], negative = [0x7F, SID, NRC].
  /// Malformed requests (truncated subfunctions, wrong field lengths,
  /// oversized address/length descriptors) are rejected with NRC 0x13
  /// (incorrectMessageLengthOrInvalidFormat) instead of being silently
  /// clamped — the V9/V11 parser classes the E20 fuzzer exercises.
  util::Bytes handle_request(util::BytesView request, double now_s);

  // Services. `now_s` is simulated time in seconds (for lockout handling).
  UdsResponse session_control(UdsSession target, double now_s);
  UdsResponse request_seed(double now_s);
  UdsResponse send_key(util::BytesView key, double now_s);
  UdsResponse read_data(std::uint16_t did);
  UdsResponse write_data(std::uint16_t did, util::BytesView value, double now_s);
  UdsResponse request_download(double now_s);

  void define_did(std::uint16_t did, util::Bytes value, bool write_protected);

  bool unlocked() const { return unlocked_; }
  UdsSession session() const { return session_; }
  std::uint32_t failed_attempts() const { return failed_attempts_; }
  sim::TraceScope& trace() { return trace_; }

  /// Rebinds trace events and counters onto a shared telemetry plane.
  void bind_telemetry(const sim::Telemetry& t);

 private:
  bool locked_out(double now_s) const;
  void wire_telemetry();

  Config cfg_;
  util::Rng rng_;
  UdsSession session_ = UdsSession::kDefault;
  bool unlocked_ = false;
  std::optional<util::Bytes> pending_seed_;
  std::uint32_t failed_attempts_ = 0;
  double lockout_until_s_ = 0;
  struct DidEntry {
    util::Bytes value;
    bool write_protected;
  };
  std::map<std::uint16_t, DidEntry> dids_;
  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_unlock_ok_ = nullptr;
  sim::Counter* c_invalid_key_ = nullptr;
  sim::Counter* c_lockouts_ = nullptr;
  sim::TraceId k_unlock_ = 0, k_invalid_key_ = 0, k_lockout_ = 0;
};

/// Brute-force attack against the weak XOR scheme: given one observed
/// (seed, key) pair, recovers the constant immediately; without an observed
/// pair, tries constants against the live server until unlock or lockout.
struct UdsAttackResult {
  bool unlocked = false;
  std::uint64_t attempts = 0;
  bool locked_out = false;
};
UdsAttackResult brute_force_security_access(UdsServer& server,
                                            std::uint64_t max_tries,
                                            double start_time_s,
                                            util::Rng& rng);

}  // namespace aseck::ivn
