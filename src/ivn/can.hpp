#pragma once
// CAN 2.0A/B and CAN FD bus model.
//
// The model is frame-level event-driven with bit-accurate timing: frame
// transmission time is computed from the actual serialized bit stream
// including stuff bits, and arbitration follows CSMA/CR identifier priority
// exactly (lowest numeric ID wins; among equal IDs the transmitter that
// enqueued first wins, which models the dominant-bit tie never occurring on
// a real bus with unique IDs).
//
// Error handling implements the CAN fault-confinement state machine (TEC/REC
// counters, error-active -> error-passive -> bus-off), which is what the
// bus-off attack in src/attacks exploits.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"
#include "util/bytes.hpp"

namespace aseck::ivn {

using sim::Scheduler;
using sim::SimTime;

/// Wire format family of a frame.
enum class CanFormat { kClassic, kFd };

struct CanFrame {
  std::uint32_t id = 0;       // 11-bit (or 29-bit if extended)
  bool extended = false;      // IDE
  bool remote = false;        // RTR (classic only)
  CanFormat format = CanFormat::kClassic;
  bool brs = false;           // FD bit-rate switch
  util::Bytes data;           // <= 8 (classic) or <= 64 (FD)

  /// Valid DLC payload sizes for CAN FD.
  static std::size_t fd_round_up(std::size_t n);
  /// True iff id/data lengths are legal for the format.
  bool valid() const;

  /// Compact wire encoding used by the attack corpus and the fuzzer:
  /// flags(1: bit0=extended, bit1=remote, bit2=FD, bit3=BRS) || id(4 BE) ||
  /// dlc(1, raw DLC code) || data. `decode_wire` validates strictly — DLC
  /// codes above the format's limit, payload length mismatching the DLC,
  /// out-of-range ids, and illegal flag combinations are rejected (the V10
  /// "DLC overflow" class: a lenient decoder reading dlc=15 bytes from an
  /// 8-byte classic frame). A decoded frame always satisfies `valid()`.
  util::Bytes encode_wire() const;
  static std::optional<CanFrame> decode_wire(util::BytesView b);
  /// Serialized bits from SOF through CRC (stuffing region), for timing.
  std::vector<bool> stuff_region_bits() const;
  /// Total on-wire bit count including stuff bits, delimiters, ACK, EOF, IFS.
  /// For FD frames `arbitration_bits` receives the count sent at nominal
  /// rate, the rest at data rate.
  std::size_t wire_bits(std::size_t* arbitration_bits = nullptr) const;
};

/// CAN node fault-confinement state.
enum class CanNodeState { kErrorActive, kErrorPassive, kBusOff };

class CanBus;

/// A device attached to a CAN bus. ECUs, the gateway, the IDS tap, and
/// attackers all implement this.
class CanNode {
 public:
  explicit CanNode(std::string name) : name_(std::move(name)) {}
  virtual ~CanNode() = default;

  const std::string& name() const { return name_; }

  /// Called for every successfully transmitted frame from *other* nodes.
  virtual void on_frame(const CanFrame& frame, SimTime at) = 0;
  /// Called when one of this node's frames completed transmission.
  virtual void on_tx_done(const CanFrame& frame, SimTime at) {
    (void)frame;
    (void)at;
  }
  /// Called when this node enters bus-off.
  virtual void on_bus_off(SimTime at) { (void)at; }

  CanNodeState state() const { return state_; }
  int tec() const { return tec_; }
  int rec() const { return rec_; }

 private:
  friend class CanBus;
  std::string name_;
  CanNodeState state_ = CanNodeState::kErrorActive;
  int tec_ = 0;  // transmit error counter
  int rec_ = 0;  // receive error counter
  std::deque<CanFrame> tx_queue_;
};

/// Per-bus statistics snapshot (registry-backed; see CanBus::stats()).
struct CanBusStats {
  std::uint64_t frames_ok = 0;
  std::uint64_t frames_error = 0;
  std::uint64_t bits_on_wire = 0;
  SimTime busy_time = SimTime::zero();
  double bus_load(SimTime elapsed) const {
    return elapsed.ns == 0 ? 0.0
                           : static_cast<double>(busy_time.ns) /
                                 static_cast<double>(elapsed.ns);
  }
};

/// Hook invoked when a frame *starts* transmission; returning true destroys
/// the frame with a bit error (models an adversary driving dominant bits —
/// the bus-off attack primitive). Receives the transmitting node.
using ErrorInjector = std::function<bool(const CanFrame&, const CanNode&)>;

class CanBus {
 public:
  /// `data_bitrate` only matters for FD frames with BRS.
  CanBus(Scheduler& sched, std::string name, std::uint64_t bitrate_bps,
         std::uint64_t data_bitrate_bps = 0);

  const std::string& name() const { return name_; }

  void attach(CanNode* node);
  void detach(CanNode* node);

  /// Enqueues a frame for transmission by `node`. Returns false if the node
  /// is bus-off or the frame is invalid.
  bool send(CanNode* node, CanFrame frame);

  /// Frames pending across all nodes.
  std::size_t pending() const;

  /// Snapshot materialized from the metrics registry (compat accessor).
  CanBusStats stats() const;
  sim::TraceScope& trace() { return trace_; }

  /// Rebinds trace events and counters onto a shared telemetry plane
  /// (carrying over already-accumulated counter values).
  void bind_telemetry(const sim::Telemetry& t);

  void set_error_injector(ErrorInjector injector) {
    error_injector_ = std::move(injector);
  }

  /// Attaches a fault-injection port (sim::FaultPlan). Per-frame drop,
  /// corrupt, delay, duplicate, and malformed-splice faults plus whole-bus
  /// down windows are consulted on the TX path. nullptr detaches.
  void set_fault_port(sim::FaultPort* port) { fault_port_ = port; }

  /// Time to serialize `frame` on this bus.
  SimTime frame_time(const CanFrame& frame) const;

  /// Clears a node's bus-off state (models the 128x11-recessive-bit recovery
  /// plus host intervention).
  void recover(CanNode* node);

  /// Enables automatic bus-off recovery: `delay` after a node enters
  /// kBusOff, a scheduler-driven timer calls recover() for it (zero
  /// disables; manual recover() still works and cancels the timer).
  void set_auto_recovery(SimTime delay) { auto_recovery_ = delay; }
  SimTime auto_recovery() const { return auto_recovery_; }

 private:
  void try_start_tx();
  void finish_tx(CanNode* node, const CanFrame& frame, bool errored);
  void bump_tx_error(CanNode* node);
  void wire_telemetry();

  Scheduler& sched_;
  std::string name_;
  std::uint64_t bitrate_;
  std::uint64_t data_bitrate_;
  std::vector<CanNode*> nodes_;
  bool busy_ = false;
  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_frames_ok_ = nullptr;
  sim::Counter* c_frames_error_ = nullptr;
  sim::Counter* c_bits_on_wire_ = nullptr;
  sim::Counter* c_busy_ns_ = nullptr;
  sim::Counter* c_frames_dropped_fault_ = nullptr;
  sim::Counter* c_frames_duplicated_ = nullptr;
  sim::Counter* c_frames_malformed_ = nullptr;
  sim::TraceId k_tx_ = 0, k_tx_start_ = 0, k_tx_error_ = 0,
               k_tx_error_start_ = 0, k_bus_off_ = 0, k_recover_ = 0,
               k_fault_drop_ = 0, k_fault_dup_ = 0, k_fault_malformed_ = 0;
  ErrorInjector error_injector_;
  sim::FaultPort* fault_port_ = nullptr;
  SimTime auto_recovery_ = SimTime::zero();
  std::map<CanNode*, sim::EventId> recovery_timers_;
};

}  // namespace aseck::ivn
