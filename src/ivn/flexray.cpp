#include "ivn/flexray.hpp"

#include <algorithm>
#include <stdexcept>

namespace aseck::ivn {

FlexRayBus::FlexRayBus(Scheduler& sched, std::string name, FlexRayConfig cfg)
    : sched_(sched),
      name_(std::move(name)),
      cfg_(cfg),
      trace_(name_),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  if (cfg_.static_slots == 0) {
    throw std::invalid_argument("FlexRayBus: need at least one static slot");
  }
  wire_telemetry();
}

void FlexRayBus::wire_telemetry() {
  const std::string p = "flexray." + name_ + ".";
  const auto rewire = [this, &p](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(p + key);
    if (c && c != &nc) nc.inc(c->value());
    c = &nc;
  };
  rewire(c_static_frames_, "static_frames");
  rewire(c_null_frames_, "null_frames");
  rewire(c_dynamic_frames_, "dynamic_frames");
  rewire(c_dynamic_dropped_, "dynamic_dropped");
  rewire(c_dropped_fault_, "dropped_fault");
  k_static_ = trace_.kind("static");
  k_dynamic_ = trace_.kind("dynamic");
  k_fault_drop_ = trace_.kind("fault_drop");
}

void FlexRayBus::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

void FlexRayBus::assign_static_slot(std::uint16_t slot, FlexRayNode* node) {
  if (slot == 0 || slot > cfg_.static_slots) {
    throw std::invalid_argument("FlexRayBus: slot out of range");
  }
  if (static_owners_.count(slot)) {
    throw std::invalid_argument("FlexRayBus: slot already owned");
  }
  static_owners_[slot] = node;
  attach_listener(node);
}

void FlexRayBus::attach_listener(FlexRayNode* node) {
  if (std::find(listeners_.begin(), listeners_.end(), node) == listeners_.end()) {
    listeners_.push_back(node);
  }
}

void FlexRayBus::send_dynamic(FlexRayNode* from, std::uint16_t dyn_id,
                              util::Bytes payload) {
  if (dyn_id == 0 || dyn_id > cfg_.dynamic_minislots) {
    throw std::invalid_argument("FlexRayBus: dynamic id out of range");
  }
  dyn_queue_.push_back(DynEntry{dyn_id, from, std::move(payload)});
}

void FlexRayBus::start() {
  if (running_) return;
  running_ = true;
  sched_.schedule_in(SimTime::zero(), [this] { run_cycle(); });
}

void FlexRayBus::stop() { running_ = false; }

void FlexRayBus::run_cycle() {
  if (!running_) return;
  const SimTime cycle_start = sched_.now();

  // Static segment: fixed slot grid.
  for (std::uint16_t slot = 1; slot <= cfg_.static_slots; ++slot) {
    const SimTime at = cycle_start + cfg_.static_slot_len * (slot - 1);
    auto it = static_owners_.find(slot);
    if (it == static_owners_.end()) continue;
    FlexRayNode* owner = it->second;
    const std::uint8_t cyc = cycle_;
    sched_.schedule_at(at, [this, owner, slot, cyc] {
      auto payload = owner->static_payload(slot, cyc);
      FlexRayFrame frame;
      frame.slot_id = slot;
      frame.cycle = cyc;
      if (payload) {
        if (fault_port_ && (fault_port_->down() || fault_port_->roll_drop())) {
          // Injected fault: frame lost, TDMA slot still consumed.
          c_dropped_fault_->inc();
          ASECK_TRACE(trace_, sched_.now(), k_fault_drop_,
                      "slot=" + std::to_string(slot));
          return;
        }
        frame.payload = std::move(*payload);
        c_static_frames_->inc();
        ASECK_TRACE(trace_, sched_.now(), k_static_,
                    "slot=" + std::to_string(slot));
        for (FlexRayNode* l : listeners_) {
          if (l != owner) l->on_frame(frame, sched_.now());
        }
      } else {
        frame.null_frame = true;
        c_null_frames_->inc();
      }
    });
  }

  // Dynamic segment: minislot counting; lower dyn_id transmits first. A
  // frame occupies ceil(bits / minislot_bits) minislots; frames that do not
  // fit before the segment end wait for the next cycle.
  const SimTime dyn_start = cycle_start + cfg_.static_slot_len * cfg_.static_slots;
  std::sort(dyn_queue_.begin(), dyn_queue_.end(),
            [](const DynEntry& a, const DynEntry& b) { return a.dyn_id < b.dyn_id; });
  const double minislot_bits =
      cfg_.minislot_len.seconds() * static_cast<double>(cfg_.bitrate_bps);
  std::uint32_t used_minislots = 0;
  std::vector<DynEntry> carry;
  for (auto& e : dyn_queue_) {
    const double frame_bits = static_cast<double>(e.payload.size() * 8 + 80);
    const auto need = static_cast<std::uint32_t>(
        (frame_bits + minislot_bits - 1) / minislot_bits);
    if (used_minislots + need > cfg_.dynamic_minislots) {
      carry.push_back(std::move(e));
      c_dynamic_dropped_->inc();
      continue;
    }
    const SimTime at = dyn_start + cfg_.minislot_len * used_minislots;
    used_minislots += need;
    FlexRayFrame frame;
    frame.slot_id = static_cast<std::uint16_t>(cfg_.static_slots + e.dyn_id);
    frame.cycle = cycle_;
    frame.payload = std::move(e.payload);
    FlexRayNode* from = e.from;
    c_dynamic_frames_->inc();
    sched_.schedule_at(at, [this, frame = std::move(frame), from] {
      if (fault_port_ && (fault_port_->down() || fault_port_->roll_drop())) {
        c_dropped_fault_->inc();
        ASECK_TRACE(trace_, sched_.now(), k_fault_drop_,
                    "slot=" + std::to_string(frame.slot_id));
        return;
      }
      ASECK_TRACE(trace_, sched_.now(), k_dynamic_,
                  "slot=" + std::to_string(frame.slot_id));
      for (FlexRayNode* l : listeners_) {
        if (l != from) l->on_frame(frame, sched_.now());
      }
    });
  }
  dyn_queue_ = std::move(carry);

  cycle_ = static_cast<std::uint8_t>((cycle_ + 1) & 0x3f);  // 64-cycle wheel
  sched_.schedule_at(cycle_start + cfg_.cycle_length(), [this] { run_cycle(); });
}

}  // namespace aseck::ivn
