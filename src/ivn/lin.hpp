#pragma once
// LIN 2.x bus model: single master with a schedule table, slaves respond to
// headers. Models protected identifiers (parity), classic/enhanced checksum,
// and 19.2 kbit/s-class timing. LIN carries body-domain traffic (seats,
// window lifts, key fob receiver) in the vehicle models.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"
#include "util/bytes.hpp"

namespace aseck::ivn {

using sim::Scheduler;
using sim::SimTime;

/// Computes the protected identifier: 6-bit id + two parity bits (LIN 2.x).
std::uint8_t lin_protected_id(std::uint8_t id6);
/// Enhanced checksum over PID + data (LIN 2.x); classic omits the PID.
std::uint8_t lin_checksum(std::uint8_t pid, util::BytesView data, bool enhanced);

struct LinFrame {
  std::uint8_t id = 0;  // 6-bit
  util::Bytes data;     // 1..8 bytes
  bool enhanced_checksum = true;
};

/// A slave publishes responses for the ids it owns and consumes others.
class LinSlave {
 public:
  explicit LinSlave(std::string name) : name_(std::move(name)) {}
  virtual ~LinSlave() = default;
  const std::string& name() const { return name_; }

  /// Returns the response payload if this slave answers `id`.
  virtual std::optional<util::Bytes> respond(std::uint8_t id) = 0;
  /// Observes a completed frame (header + response) on the bus.
  virtual void on_frame(const LinFrame& frame, SimTime at) {
    (void)frame;
    (void)at;
  }

 private:
  std::string name_;
};

/// Schedule table entry: which id to poll and the slot duration.
struct LinSlot {
  std::uint8_t id = 0;
  SimTime slot_time = SimTime::from_ms(10);
};

class LinMaster {
 public:
  LinMaster(Scheduler& sched, std::string name, std::uint64_t bitrate_bps = 19200);

  void attach(LinSlave* slave);
  void set_schedule(std::vector<LinSlot> table);
  /// Starts cycling through the schedule table.
  void start();
  void stop();

  /// Frames completed (with a responder).
  std::uint64_t frames_ok() const { return c_frames_ok_->value(); }
  /// Headers that no slave answered.
  std::uint64_t no_response() const { return c_no_response_->value(); }
  /// Observed checksum errors (corruption injection).
  std::uint64_t checksum_errors() const { return c_checksum_errors_->value(); }

  /// Corruption hook: called with the response payload before delivery; may
  /// mutate it (returns true if mutated) to model noise/attack.
  using Corruptor = std::function<bool(util::Bytes&)>;
  void set_corruptor(Corruptor c) { corruptor_ = std::move(c); }

  /// Attaches a fault-injection port (sim::FaultPlan): drop faults and
  /// bus-down windows lose the response (counted separately from
  /// no_response), corrupt faults flip payload bits into the checksum path.
  void set_fault_port(sim::FaultPort* port) { fault_port_ = port; }
  /// Responses lost to injected faults.
  std::uint64_t dropped_fault() const { return c_dropped_fault_->value(); }

  sim::TraceScope& trace() { return trace_; }

  /// Rebinds trace events and counters onto a shared telemetry plane.
  void bind_telemetry(const sim::Telemetry& t);

 private:
  void run_slot(std::size_t index);
  void wire_telemetry();

  Scheduler& sched_;
  std::string name_;
  std::uint64_t bitrate_;
  std::vector<LinSlave*> slaves_;
  std::vector<LinSlot> schedule_;
  bool running_ = false;
  Corruptor corruptor_;
  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_frames_ok_ = nullptr;
  sim::Counter* c_no_response_ = nullptr;
  sim::Counter* c_checksum_errors_ = nullptr;
  sim::Counter* c_dropped_fault_ = nullptr;
  sim::TraceId k_frame_ = 0, k_no_response_ = 0, k_checksum_error_ = 0,
               k_fault_drop_ = 0;
  sim::FaultPort* fault_port_ = nullptr;
};

}  // namespace aseck::ivn
