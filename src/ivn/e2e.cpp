#include "ivn/e2e.hpp"

namespace aseck::ivn {

const char* e2e_status_name(E2eStatus s) {
  switch (s) {
    case E2eStatus::kOk: return "ok";
    case E2eStatus::kOkSomeLost: return "ok_some_lost";
    case E2eStatus::kWrongCrc: return "wrong_crc";
    case E2eStatus::kRepeated: return "repeated";
    case E2eStatus::kWrongSequence: return "wrong_sequence";
  }
  return "?";
}

std::uint8_t e2e_crc(const E2eConfig& cfg, std::uint8_t counter,
                     util::BytesView payload) {
  util::Bytes buf;
  buf.reserve(3 + payload.size());
  buf.push_back(static_cast<std::uint8_t>(cfg.data_id & 0xff));
  buf.push_back(static_cast<std::uint8_t>(cfg.data_id >> 8));
  buf.push_back(counter);
  buf.insert(buf.end(), payload.begin(), payload.end());
  return util::crc8_j1850(buf);
}

util::Bytes E2eProtector::protect(util::BytesView payload) {
  const std::uint8_t counter = counter_;
  counter_ = static_cast<std::uint8_t>((counter_ + 1) % 15);
  util::Bytes out;
  out.reserve(2 + payload.size());
  out.push_back(e2e_crc(cfg_, counter, payload));
  out.push_back(counter);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

E2eChecker::Result E2eChecker::check(util::BytesView pdu) {
  const auto flag = [this](E2eStatus s) {
    ++counts_[static_cast<std::size_t>(s)];
    return s;
  };
  if (pdu.size() < 2) return {flag(E2eStatus::kWrongCrc), {}};
  const std::uint8_t crc = pdu[0];
  const std::uint8_t counter = pdu[1];
  const util::BytesView payload = pdu.subspan(2);
  if (e2e_crc(cfg_, counter, payload) != crc) {
    return {flag(E2eStatus::kWrongCrc), {}};
  }
  E2eStatus status = E2eStatus::kOk;
  if (last_counter_) {
    const std::uint8_t delta =
        static_cast<std::uint8_t>((counter + 15 - *last_counter_) % 15);
    if (delta == 0) {
      return {flag(E2eStatus::kRepeated), {}};
    }
    if (delta > cfg_.max_delta_counter) {
      // Sequence break: report, then resynchronize on this counter.
      last_counter_ = counter;
      return {flag(E2eStatus::kWrongSequence), {}};
    }
    if (delta > 1) status = E2eStatus::kOkSomeLost;
  }
  last_counter_ = counter;
  return {flag(status), util::Bytes(payload.begin(), payload.end())};
}

}  // namespace aseck::ivn
