#pragma once
// Automotive Ethernet (100BASE-T1-class) switched network model: MAC
// learning, VLAN isolation, per-port ingress policing, and store-and-forward
// latency. The paper (Section 7, "Secure Networks") points to Automotive
// Ethernet as the next-generation IVN with stricter separation — the VLAN +
// policing features here are what the E7/E6 experiments exercise.

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"
#include "util/bytes.hpp"

namespace aseck::ivn {

using sim::Scheduler;
using sim::SimTime;

using MacAddress = std::array<std::uint8_t, 6>;

MacAddress mac_from_u64(std::uint64_t v);
std::string mac_to_string(const MacAddress& m);
inline constexpr MacAddress kBroadcastMac{0xff, 0xff, 0xff, 0xff, 0xff, 0xff};

struct EthernetFrame {
  MacAddress dst{};
  MacAddress src{};
  std::uint16_t vlan = 0;       // 0 = untagged
  std::uint16_t ethertype = 0x0800;
  util::Bytes payload;

  std::size_t wire_bytes() const {
    // preamble+SFD(8) + header(14) + VLAN tag(4 if tagged) + payload
    // (min 46) + FCS(4) + IFG(12).
    const std::size_t body = payload.size() < 46 ? 46 : payload.size();
    return 8 + 14 + (vlan ? 4 : 0) + body + 4 + 12;
  }
};

class EthernetEndpoint {
 public:
  explicit EthernetEndpoint(std::string name, MacAddress mac)
      : name_(std::move(name)), mac_(mac) {}
  virtual ~EthernetEndpoint() = default;

  const std::string& name() const { return name_; }
  const MacAddress& mac() const { return mac_; }

  virtual void on_frame(const EthernetFrame& frame, SimTime at) = 0;

 private:
  std::string name_;
  MacAddress mac_;
};

/// Token-bucket ingress policer (rate in bytes/sec, burst in bytes).
struct PortPolicer {
  double rate_bps = 0;   // 0 = unlimited
  double burst_bytes = 0;
  double tokens = 0;
  SimTime last = SimTime::zero();

  bool admit(std::size_t bytes, SimTime now);
};

class EthernetSwitch {
 public:
  EthernetSwitch(Scheduler& sched, std::string name,
                 std::uint64_t link_bps = 100'000'000,
                 SimTime processing_delay = SimTime::from_us(5));

  /// Connects an endpoint; returns its port number.
  std::size_t connect(EthernetEndpoint* ep);

  /// Restricts a port to a set of VLANs (empty = all allowed).
  void set_port_vlans(std::size_t port, std::vector<std::uint16_t> vlans);
  /// Ingress rate limit for a port.
  void set_policer(std::size_t port, double rate_bytes_per_sec, double burst_bytes);
  /// Administratively disables a port (quarantine).
  void set_port_enabled(std::size_t port, bool enabled);
  bool port_enabled(std::size_t port) const;

  /// Injects a frame from the endpoint on `port`.
  /// Returns false if dropped at ingress (policing/VLAN/port-down).
  bool send(std::size_t port, EthernetFrame frame);

  std::uint64_t forwarded() const { return c_forwarded_->value(); }
  std::uint64_t dropped_policer() const { return c_dropped_policer_->value(); }
  std::uint64_t dropped_vlan() const { return c_dropped_vlan_->value(); }
  std::uint64_t dropped_port_down() const { return c_dropped_port_down_->value(); }
  std::uint64_t flooded() const { return c_flooded_->value(); }
  /// Frames lost / mangled / cloned by injected faults.
  std::uint64_t dropped_fault() const { return c_dropped_fault_->value(); }
  std::uint64_t corrupted_fault() const { return c_corrupted_fault_->value(); }
  std::uint64_t duplicated_fault() const { return c_duplicated_fault_->value(); }
  sim::TraceScope& trace() { return trace_; }

  /// Attaches a fault-injection port (sim::FaultPlan). Drop faults and
  /// link-down windows discard at ingress, corrupt faults flip a payload
  /// byte, delay faults stretch store-and-forward latency, duplicate faults
  /// forward the frame twice.
  void set_fault_port(sim::FaultPort* port) { fault_port_ = port; }

  /// Rebinds trace events and counters onto a shared telemetry plane.
  void bind_telemetry(const sim::Telemetry& t);

  /// Port an endpoint MAC was learned on, if any.
  std::optional<std::size_t> learned_port(const MacAddress& mac) const;

 private:
  struct Port {
    EthernetEndpoint* ep = nullptr;
    std::vector<std::uint16_t> vlans;  // empty = all
    PortPolicer policer;
    bool enabled = true;
  };

  bool vlan_allowed(const Port& p, std::uint16_t vlan) const;
  void deliver(std::size_t port, const EthernetFrame& frame);
  void wire_telemetry();

  Scheduler& sched_;
  std::string name_;
  std::uint64_t link_bps_;
  SimTime processing_delay_;
  std::vector<Port> ports_;
  std::map<std::uint64_t, std::size_t> fdb_;  // mac (as u64) -> port
  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_forwarded_ = nullptr;
  sim::Counter* c_dropped_policer_ = nullptr;
  sim::Counter* c_dropped_vlan_ = nullptr;
  sim::Counter* c_dropped_port_down_ = nullptr;
  sim::Counter* c_flooded_ = nullptr;
  sim::Counter* c_dropped_fault_ = nullptr;
  sim::Counter* c_corrupted_fault_ = nullptr;
  sim::Counter* c_duplicated_fault_ = nullptr;
  sim::TraceId k_port_up_ = 0, k_port_down_ = 0, k_drop_vlan_ = 0,
               k_drop_policed_ = 0, k_fault_drop_ = 0, k_fault_corrupt_ = 0,
               k_fault_dup_ = 0;
  sim::FaultPort* fault_port_ = nullptr;
};

}  // namespace aseck::ivn
