#pragma once
// FlexRay bus model: TDMA communication cycle with a static segment
// (deterministic slots) and a dynamic segment (minislot priority access).
// FlexRay carries chassis/ADAS traffic (steering, braking) in the vehicle
// models, where deterministic latency is the safety argument.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"
#include "util/bytes.hpp"

namespace aseck::ivn {

using sim::Scheduler;
using sim::SimTime;

struct FlexRayFrame {
  std::uint16_t slot_id = 0;     // 1..static_slots for static frames
  std::uint8_t cycle = 0;        // cycle counter when sent
  util::Bytes payload;           // up to 254 bytes (2-byte words)
  bool null_frame = false;       // slot owner had nothing to send
};

struct FlexRayConfig {
  std::uint16_t static_slots = 20;
  std::uint16_t dynamic_minislots = 40;
  SimTime static_slot_len = SimTime::from_us(50);
  SimTime minislot_len = SimTime::from_us(5);
  SimTime nit_len = SimTime::from_us(100);  // network idle time
  std::uint64_t bitrate_bps = 10'000'000;   // 10 Mbit/s

  SimTime cycle_length() const {
    return static_slot_len * static_slots + minislot_len * dynamic_minislots +
           nit_len;
  }
};

/// A FlexRay controller owns one or more static slots and may queue dynamic
/// frames with a priority (= dynamic slot id; lower transmits earlier).
class FlexRayNode {
 public:
  explicit FlexRayNode(std::string name) : name_(std::move(name)) {}
  virtual ~FlexRayNode() = default;
  const std::string& name() const { return name_; }

  /// Asked at the start of the node's static slot; return payload or nullopt
  /// (-> null frame).
  virtual std::optional<util::Bytes> static_payload(std::uint16_t slot,
                                                    std::uint8_t cycle) = 0;
  /// Observes every non-null frame on the bus.
  virtual void on_frame(const FlexRayFrame& frame, SimTime at) {
    (void)frame;
    (void)at;
  }

 private:
  std::string name_;
};

class FlexRayBus {
 public:
  FlexRayBus(Scheduler& sched, std::string name, FlexRayConfig cfg = {});

  /// Assigns `slot` (1-based, <= static_slots) to the node. A slot has
  /// exactly one owner; reassigning throws.
  void assign_static_slot(std::uint16_t slot, FlexRayNode* node);
  void attach_listener(FlexRayNode* node);

  /// Queues a dynamic-segment frame with minislot priority `dyn_id`
  /// (1-based). Sent in the next dynamic segment if it fits.
  void send_dynamic(FlexRayNode* from, std::uint16_t dyn_id, util::Bytes payload);

  /// Starts the cyclic schedule.
  void start();
  void stop();

  std::uint8_t cycle() const { return cycle_; }
  std::uint64_t static_frames() const { return c_static_frames_->value(); }
  std::uint64_t null_frames() const { return c_null_frames_->value(); }
  std::uint64_t dynamic_frames() const { return c_dynamic_frames_->value(); }
  std::uint64_t dynamic_dropped() const { return c_dynamic_dropped_->value(); }
  /// Frames lost to injected faults (slot still consumed, as on a real bus
  /// where a corrupted frame burns its TDMA slot).
  std::uint64_t dropped_fault() const { return c_dropped_fault_->value(); }
  const FlexRayConfig& config() const { return cfg_; }
  sim::TraceScope& trace() { return trace_; }

  /// Attaches a fault-injection port (sim::FaultPlan): drop faults and
  /// bus-down windows lose static/dynamic frames in their slots.
  void set_fault_port(sim::FaultPort* port) { fault_port_ = port; }

  /// Rebinds trace events and counters onto a shared telemetry plane.
  void bind_telemetry(const sim::Telemetry& t);

 private:
  void run_cycle();
  void wire_telemetry();

  Scheduler& sched_;
  std::string name_;
  FlexRayConfig cfg_;
  std::map<std::uint16_t, FlexRayNode*> static_owners_;
  std::vector<FlexRayNode*> listeners_;
  struct DynEntry {
    std::uint16_t dyn_id;
    FlexRayNode* from;
    util::Bytes payload;
  };
  std::vector<DynEntry> dyn_queue_;
  bool running_ = false;
  std::uint8_t cycle_ = 0;
  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_static_frames_ = nullptr;
  sim::Counter* c_null_frames_ = nullptr;
  sim::Counter* c_dynamic_frames_ = nullptr;
  sim::Counter* c_dynamic_dropped_ = nullptr;
  sim::Counter* c_dropped_fault_ = nullptr;
  sim::TraceId k_static_ = 0, k_dynamic_ = 0, k_fault_drop_ = 0;
  sim::FaultPort* fault_port_ = nullptr;
};

}  // namespace aseck::ivn
