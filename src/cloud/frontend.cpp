#include "cloud/frontend.hpp"

#include "sim/trace.hpp"

namespace aseck::cloud {

SessionFrontend::SessionFrontend(ServerCredential cred,
                                 crypto::EcdsaPrivateKey identity,
                                 crypto::EcdsaPublicKey authority,
                                 crypto::Drbg& rng, FrontendConfig cfg)
    : cfg_(cfg),
      server_(std::move(cred), std::move(identity), rng),
      authority_(std::move(authority)),
      rng_(rng),
      tickets_(cfg.ticket_cache_entries),
      trace_("cloud.front"),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  wire_telemetry();
}

SessionFrontend SessionFrontend::create(const std::string& name,
                                        const crypto::EcdsaPrivateKey& authority,
                                        crypto::Drbg& rng, FrontendConfig cfg) {
  crypto::EcdsaPrivateKey identity = crypto::EcdsaPrivateKey::generate(rng);
  ServerCredential cred =
      ServerCredential::issue(name, identity.public_key(), authority);
  return SessionFrontend(std::move(cred), std::move(identity),
                         authority.public_key(), rng, cfg);
}

void SessionFrontend::wire_telemetry() {
  const auto rewire = [this](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(std::string("cloud.front.") + key);
    if (c && c != &nc) nc.inc(c->value());  // carry accumulated value across
    c = &nc;
  };
  rewire(c_handshakes_, "handshakes");
  rewire(c_resumed_, "resumed");
  rewire(c_failures_, "failures");
  k_handshake_ = trace_.kind("handshake");
  k_resume_ = trace_.kind("resume");
  k_fail_ = trace_.kind("handshake_fail");
}

void SessionFrontend::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

ConnectResult SessionFrontend::connect(const std::string& vehicle_id,
                                       util::SimTime now) {
  ConnectResult r;
  if (Ticket* t = tickets_.find(vehicle_id); t && now < t->expires) {
    r.ok = true;
    r.resumed = true;
    r.latency = cfg_.resume_latency;
    r.ticket_id = t->id;
    ASECK_TRACE(trace_, now, k_resume_, vehicle_id);
    c_resumed_->inc();
    return r;
  }
  // No (valid) ticket: run the real one-round-trip handshake. The client
  // side pins the authority key exactly as a vehicle would.
  ChannelClient client(authority_, rng_);
  const ClientHello ch = client.hello();
  const ServerHello sh = server_.respond(ch);
  if (client.finish(sh) != ChannelClient::Result::kOk) {
    c_failures_->inc();
    ASECK_TRACE(trace_, now, k_fail_, vehicle_id);
    return r;  // !ok
  }
  Ticket t;
  t.id = next_ticket_++;
  t.expires = now + cfg_.ticket_lifetime;
  r.ok = true;
  r.latency = cfg_.full_handshake_latency;
  r.ticket_id = t.id;
  tickets_.put(vehicle_id, t);
  c_handshakes_->inc();
  ASECK_TRACE(trace_, now, k_handshake_,
              vehicle_id + " ticket=" + std::to_string(t.id));
  return r;
}

}  // namespace aseck::cloud
