#pragma once
// Vehicle <-> cloud secure channel, TLS-1.3-flavored (paper §7 Secure
// Interfaces: "existing Internet security technologies such as HTTPS and
// TLS can be leveraged"). One-round-trip handshake:
//
//   client -> server : client_random || client ECDHE pub
//   server -> client : server_random || server ECDHE pub || server cert
//                      || SIG_server(transcript)
//
// Both sides derive directional AES-GCM traffic keys via HKDF over the
// ECDHE secret and the transcript hash. The client authenticates the server
// against a pinned authority key (OEM backend CA). Downgrade or key
// substitution breaks the transcript signature.

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/drbg.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/gcm.hpp"

namespace aseck::cloud {

/// Server identity: key pair + authority signature over (name || pubkey).
struct ServerCredential {
  std::string name;
  crypto::EcdsaPublicKey public_key;
  crypto::EcdsaSignature authority_sig;

  util::Bytes tbs() const;
  static ServerCredential issue(const std::string& name,
                                const crypto::EcdsaPublicKey& key,
                                const crypto::EcdsaPrivateKey& authority);
};

struct ClientHello {
  util::Bytes random;             // 32 bytes
  crypto::EcdsaPublicKey ecdhe;   // client ephemeral share (P-256 point)
};

struct ServerHello {
  util::Bytes random;
  crypto::EcdsaPublicKey ecdhe;
  ServerCredential credential;
  crypto::EcdsaSignature transcript_sig;
};

/// Established record protection for one direction.
class RecordKeys {
 public:
  RecordKeys() = default;
  RecordKeys(util::Bytes key16, util::Bytes iv12);

  /// Encrypts with the running sequence number mixed into the nonce.
  struct Sealed {
    util::Bytes ciphertext;
    std::array<std::uint8_t, 16> tag;
    std::uint64_t seq;
  };
  Sealed seal(util::BytesView plaintext, util::BytesView aad = {});
  std::optional<util::Bytes> open(const Sealed& record, util::BytesView aad = {});

 private:
  std::optional<crypto::Aes> aes_;
  util::Bytes iv_;
  std::uint64_t send_seq_ = 0;
};

/// Server side of the handshake.
class ChannelServer {
 public:
  ChannelServer(ServerCredential cred, crypto::EcdsaPrivateKey identity,
                crypto::Drbg& rng);

  /// Processes a ClientHello, producing the ServerHello and installing
  /// traffic keys.
  ServerHello respond(const ClientHello& hello);

  RecordKeys& to_client() { return to_client_; }
  RecordKeys& from_client() { return from_client_; }

 private:
  ServerCredential cred_;
  crypto::EcdsaPrivateKey identity_;
  crypto::Drbg& rng_;
  RecordKeys to_client_, from_client_;
};

/// Client side.
class ChannelClient {
 public:
  /// `authority` is the pinned OEM backend CA key.
  ChannelClient(crypto::EcdsaPublicKey authority, crypto::Drbg& rng);

  ClientHello hello();

  enum class Result { kOk, kBadCredential, kBadTranscriptSig, kEcdhFailure };
  Result finish(const ServerHello& hello);

  RecordKeys& to_server() { return to_server_; }
  RecordKeys& from_server() { return from_server_; }

  static const char* result_name(Result r);

 private:
  crypto::EcdsaPublicKey authority_;
  crypto::Drbg& rng_;
  std::optional<crypto::EcdsaPrivateKey> ephemeral_;
  util::Bytes client_random_;
  RecordKeys to_server_, from_server_;
};

/// Transcript serialization shared by both sides (what the server signs).
util::Bytes handshake_transcript(const ClientHello& ch, const util::Bytes& sr,
                                 const crypto::EcdsaPublicKey& server_ecdhe);

}  // namespace aseck::cloud
