#pragma once
// Storm-facing session layer in front of the OTA backend: terminates the
// vehicle <-> cloud secure channel (cloud::ChannelServer, real ECDSA/ECDH
// crypto) and amortizes it with an LRU session-ticket cache. A campaign wave
// of N vehicles costs N full handshakes exactly once; every re-poll, retry,
// and server-directed re-admission within the ticket lifetime resumes the
// session for a fraction of the latency — which is what keeps the connection
// layer out of the way when admission control is deliberately bouncing a
// herd of clients (E21).
//
// Deliberately knows nothing about Uptane or the serving front: benches and
// examples compose SessionFrontend + ota::RepositoryServer at the call site,
// so the cloud module's dependency surface stays crypto-only.

#include <cstdint>
#include <string>

#include "cloud/secure_channel.hpp"
#include "sim/telemetry.hpp"
#include "util/lru.hpp"

namespace aseck::cloud {

struct FrontendConfig {
  std::size_t ticket_cache_entries = 1024;
  util::SimTime ticket_lifetime = util::SimTime::from_s(3600);
  /// Modeled wall time of a full handshake vs a ticket resumption (the
  /// asymmetric crypto actually runs either way the full path is taken; the
  /// latency constants are what the sim schedules against).
  util::SimTime full_handshake_latency = util::SimTime::from_ms(12);
  util::SimTime resume_latency = util::SimTime::from_ms(1);
};

struct ConnectResult {
  bool ok = false;
  bool resumed = false;
  util::SimTime latency = util::SimTime::zero();
  std::uint64_t ticket_id = 0;
};

class SessionFrontend {
 public:
  SessionFrontend(ServerCredential cred, crypto::EcdsaPrivateKey identity,
                  crypto::EcdsaPublicKey authority, crypto::Drbg& rng,
                  FrontendConfig cfg = {});

  /// Generates a server identity, has `authority` certify it, and pins the
  /// matching authority key client-side — the one-call setup used by tests
  /// and benches.
  static SessionFrontend create(const std::string& name,
                                const crypto::EcdsaPrivateKey& authority,
                                crypto::Drbg& rng, FrontendConfig cfg = {});

  /// Establishes (or resumes) a session for `vehicle_id`. A cache hit with
  /// an unexpired ticket resumes cheaply; otherwise the real one-round-trip
  /// handshake runs and a fresh ticket is cached.
  ConnectResult connect(const std::string& vehicle_id, util::SimTime now);

  std::uint64_t handshakes() const { return c_handshakes_->value(); }
  std::uint64_t resumptions() const { return c_resumed_->value(); }
  std::uint64_t failures() const { return c_failures_->value(); }
  double resumption_rate() const {
    const std::uint64_t h = handshakes(), r = resumptions();
    return h + r == 0 ? 0.0
                      : static_cast<double>(r) / static_cast<double>(h + r);
  }

  sim::TraceScope& trace() { return trace_; }
  void bind_telemetry(const sim::Telemetry& t);

 private:
  struct Ticket {
    std::uint64_t id = 0;
    util::SimTime expires = util::SimTime::zero();
  };
  void wire_telemetry();

  FrontendConfig cfg_;
  ChannelServer server_;
  crypto::EcdsaPublicKey authority_;
  crypto::Drbg& rng_;
  util::LruCache<std::string, Ticket> tickets_;
  std::uint64_t next_ticket_ = 1;

  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_handshakes_ = nullptr;
  sim::Counter* c_resumed_ = nullptr;
  sim::Counter* c_failures_ = nullptr;
  sim::TraceId k_handshake_ = 0, k_resume_ = 0, k_fail_ = 0;
};

}  // namespace aseck::cloud
