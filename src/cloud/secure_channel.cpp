#include "cloud/secure_channel.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace aseck::cloud {

namespace {

/// Derives both directions' keys from the ECDHE secret and transcript.
struct TrafficKeys {
  util::Bytes c2s_key, c2s_iv, s2c_key, s2c_iv;
};

TrafficKeys derive_keys(util::BytesView shared, util::BytesView transcript) {
  const crypto::Digest th = crypto::sha256(transcript);
  const util::Bytes okm = crypto::hkdf(
      util::BytesView(th.data(), th.size()), shared,
      util::from_string("aseck-cloud-v1"), 2 * (16 + 12));
  TrafficKeys keys;
  keys.c2s_key.assign(okm.begin(), okm.begin() + 16);
  keys.c2s_iv.assign(okm.begin() + 16, okm.begin() + 28);
  keys.s2c_key.assign(okm.begin() + 28, okm.begin() + 44);
  keys.s2c_iv.assign(okm.begin() + 44, okm.begin() + 56);
  return keys;
}

}  // namespace

util::Bytes ServerCredential::tbs() const {
  util::Bytes out(name.begin(), name.end());
  out.push_back(0);
  const util::Bytes kb = public_key.to_bytes();
  out.insert(out.end(), kb.begin(), kb.end());
  return out;
}

ServerCredential ServerCredential::issue(const std::string& name,
                                         const crypto::EcdsaPublicKey& key,
                                         const crypto::EcdsaPrivateKey& authority) {
  ServerCredential c;
  c.name = name;
  c.public_key = key;
  c.authority_sig = authority.sign(c.tbs());
  return c;
}

util::Bytes handshake_transcript(const ClientHello& ch, const util::Bytes& sr,
                                 const crypto::EcdsaPublicKey& server_ecdhe) {
  util::Bytes t = ch.random;
  const util::Bytes ce = ch.ecdhe.to_bytes();
  t.insert(t.end(), ce.begin(), ce.end());
  t.insert(t.end(), sr.begin(), sr.end());
  const util::Bytes se = server_ecdhe.to_bytes();
  t.insert(t.end(), se.begin(), se.end());
  return t;
}

RecordKeys::RecordKeys(util::Bytes key16, util::Bytes iv12)
    : aes_(crypto::Aes(key16)), iv_(std::move(iv12)) {}

RecordKeys::Sealed RecordKeys::seal(util::BytesView plaintext,
                                    util::BytesView aad) {
  if (!aes_) {
    throw std::logic_error("RecordKeys::seal: no session established");
  }
  Sealed out;
  out.seq = send_seq_++;
  util::Bytes nonce = iv_;
  for (int i = 0; i < 8; ++i) {
    nonce[11 - static_cast<std::size_t>(i)] ^=
        static_cast<std::uint8_t>(out.seq >> (8 * i));
  }
  const crypto::GcmResult r = crypto::aes_gcm_encrypt(*aes_, nonce, aad, plaintext);
  out.ciphertext = r.ciphertext;
  out.tag = r.tag;
  return out;
}

std::optional<util::Bytes> RecordKeys::open(const Sealed& record,
                                            util::BytesView aad) {
  if (!aes_) return std::nullopt;
  util::Bytes nonce = iv_;
  for (int i = 0; i < 8; ++i) {
    nonce[11 - static_cast<std::size_t>(i)] ^=
        static_cast<std::uint8_t>(record.seq >> (8 * i));
  }
  return crypto::aes_gcm_decrypt(*aes_, nonce, aad, record.ciphertext,
                                 util::BytesView(record.tag.data(), 16));
}

ChannelServer::ChannelServer(ServerCredential cred,
                             crypto::EcdsaPrivateKey identity,
                             crypto::Drbg& rng)
    : cred_(std::move(cred)), identity_(std::move(identity)), rng_(rng) {}

ServerHello ChannelServer::respond(const ClientHello& hello) {
  const auto ephemeral = crypto::EcdsaPrivateKey::generate(rng_);
  ServerHello out;
  out.random = rng_.bytes(32);
  out.ecdhe = ephemeral.public_key();
  out.credential = cred_;
  const util::Bytes transcript =
      handshake_transcript(hello, out.random, out.ecdhe);
  out.transcript_sig = identity_.sign(transcript);

  const auto shared =
      crypto::ecdh_shared(ephemeral, hello.ecdhe,
                          util::from_string("ecdhe"), 32);
  if (shared) {
    const TrafficKeys keys = derive_keys(*shared, transcript);
    from_client_ = RecordKeys(keys.c2s_key, keys.c2s_iv);
    to_client_ = RecordKeys(keys.s2c_key, keys.s2c_iv);
  }
  return out;
}

ChannelClient::ChannelClient(crypto::EcdsaPublicKey authority, crypto::Drbg& rng)
    : authority_(std::move(authority)), rng_(rng) {}

ClientHello ChannelClient::hello() {
  ephemeral_ = crypto::EcdsaPrivateKey::generate(rng_);
  client_random_ = rng_.bytes(32);
  ClientHello out;
  out.random = client_random_;
  out.ecdhe = ephemeral_->public_key();
  return out;
}

ChannelClient::Result ChannelClient::finish(const ServerHello& hello) {
  // 1. Server credential must chain to the pinned authority.
  if (!crypto::ecdsa_verify(authority_, hello.credential.tbs(),
                            hello.credential.authority_sig)) {
    return Result::kBadCredential;
  }
  // 2. Transcript must be signed by the credential's key (anti-MITM).
  ClientHello ch;
  ch.random = client_random_;
  ch.ecdhe = ephemeral_->public_key();
  const util::Bytes transcript =
      handshake_transcript(ch, hello.random, hello.ecdhe);
  if (!crypto::ecdsa_verify(hello.credential.public_key, transcript,
                            hello.transcript_sig)) {
    return Result::kBadTranscriptSig;
  }
  // 3. Key agreement + traffic key derivation.
  const auto shared = crypto::ecdh_shared(*ephemeral_, hello.ecdhe,
                                          util::from_string("ecdhe"), 32);
  if (!shared) return Result::kEcdhFailure;
  const TrafficKeys keys = derive_keys(*shared, transcript);
  to_server_ = RecordKeys(keys.c2s_key, keys.c2s_iv);
  from_server_ = RecordKeys(keys.s2c_key, keys.s2c_iv);
  return Result::kOk;
}

const char* ChannelClient::result_name(Result r) {
  switch (r) {
    case Result::kOk: return "ok";
    case Result::kBadCredential: return "bad_credential";
    case Result::kBadTranscriptSig: return "bad_transcript_sig";
    case Result::kEcdhFailure: return "ecdh_failure";
  }
  return "?";
}

}  // namespace aseck::cloud
