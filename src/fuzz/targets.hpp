#pragma once
// Built-in fuzz targets: each wraps one wire-format parser in an invariant
// oracle (fuzz/fuzzer.hpp's ExecResult contract) plus seeds and a protocol
// dictionary. The oracle list per target:
//
//   someip — parse/serialize round-trip fixpoint; declared length always
//            bounds the payload (the V11 integer-overflow class).
//   uds    — every response is a well-formed positive [SID+0x40, ...] or
//            negative [0x7F, SID, NRC] triple; the server only unlocks when
//            the exact CMAC seed/key pair was presented (V9 bypass);
//            RequestDownload only succeeds unlocked + programming session.
//   can    — decode_wire acceptance implies valid() and an exact re-encode
//            (V10 DLC-overflow class); wire-bit accounting never traps.
//   secoc  — accepted PDUs carry a verifiable MAC over the reconstructed
//            freshness; accepted freshness is strictly monotone and within
//            the window; an accepted PDU replayed verbatim is rejected (V4).
//   ota    — every parsed metadata role re-serializes to the input bytes
//            (full-consumption fixpoint over the V12 header-overflow class).
//
// Out-of-bounds reads/writes are the implicit oracle everywhere: the
// fuzz-smoke CI job runs these targets under ASan/UBSan.

#include <vector>

#include "fuzz/fuzzer.hpp"

namespace aseck::fuzz {

FuzzTarget someip_target();
FuzzTarget uds_target();
FuzzTarget can_target();
FuzzTarget secoc_target();
FuzzTarget ota_target();

/// All of the above, in deterministic order.
std::vector<FuzzTarget> builtin_targets();

}  // namespace aseck::fuzz
