#include "fuzz/mutator.hpp"

#include <algorithm>
#include <cstdint>

namespace aseck::fuzz {

namespace {

constexpr std::uint8_t kInteresting8[] = {0x00, 0x01, 0x7f, 0x80, 0xff, 0x10,
                                          0x27, 0x40};
constexpr std::uint16_t kInteresting16[] = {0x0000, 0x0001, 0x007f, 0x0080,
                                            0x00ff, 0x0100, 0x7fff, 0x8000,
                                            0xffff};
constexpr std::uint32_t kInteresting32[] = {
    0x00000000u, 0x00000001u, 0x0000007fu, 0x000000ffu, 0x0000ffffu,
    0x7fffffffu, 0x80000000u, 0xfffffff3u,  // 13-byte-header wrap pivot (V11)
    0xfffffffeu, 0xffffffffu};

void write_window(util::Bytes& b, std::size_t pos, std::uint64_t v,
                  std::size_t width, bool big_endian) {
  for (std::size_t i = 0; i < width; ++i) {
    const unsigned shift =
        static_cast<unsigned>(8 * (big_endian ? width - 1 - i : i));
    b[pos + i] = static_cast<std::uint8_t>(v >> shift);
  }
}

std::uint64_t read_window(const util::Bytes& b, std::size_t pos,
                          std::size_t width, bool big_endian) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const unsigned shift =
        static_cast<unsigned>(8 * (big_endian ? width - 1 - i : i));
    v |= static_cast<std::uint64_t>(b[pos + i]) << shift;
  }
  return v;
}

}  // namespace

util::Bytes Mutator::mutate(util::BytesView base, util::Rng& rng) const {
  util::Bytes b(base.begin(), base.end());
  const std::size_t stack = 1 + rng.index(cfg_.max_stack);
  for (std::size_t i = 0; i < stack; ++i) apply_one(b, rng);
  if (b.size() > cfg_.max_len) b.resize(cfg_.max_len);
  return b;
}

void Mutator::apply_one(util::Bytes& b, util::Rng& rng) const {
  // An empty buffer supports only extension.
  const std::size_t op = b.empty() ? 7 : rng.index(12);
  switch (op) {
    case 0: {  // single bit flip
      const std::size_t bit = rng.index(b.size() * 8);
      b[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      break;
    }
    case 1: {  // random byte overwrite
      b[rng.index(b.size())] = static_cast<std::uint8_t>(rng.uniform(256));
      break;
    }
    case 2: {  // interesting 8-bit value
      b[rng.index(b.size())] =
          kInteresting8[rng.index(std::size(kInteresting8))];
      break;
    }
    case 3: {  // interesting 16-bit value, either endianness
      if (b.size() < 2) break;
      write_window(b, rng.index(b.size() - 1),
                   kInteresting16[rng.index(std::size(kInteresting16))], 2,
                   rng.chance(0.5));
      break;
    }
    case 4: {  // interesting 32-bit value, either endianness
      if (b.size() < 4) break;
      write_window(b, rng.index(b.size() - 3),
                   kInteresting32[rng.index(std::size(kInteresting32))], 4,
                   rng.chance(0.5));
      break;
    }
    case 5: {  // arithmetic delta on a 1/2/4-byte window
      const std::size_t width = std::size_t{1} << rng.index(3);
      if (b.size() < width) break;
      const std::size_t pos = rng.index(b.size() - width + 1);
      const bool be = rng.chance(0.5);
      const std::uint64_t delta = 1 + rng.uniform(35);
      std::uint64_t v = read_window(b, pos, width, be);
      v = rng.chance(0.5) ? v + delta : v - delta;
      write_window(b, pos, v, width, be);
      break;
    }
    case 6: {  // truncate
      b.resize(rng.index(b.size()));
      break;
    }
    case 7: {  // extend with random bytes
      const std::size_t n = 1 + rng.index(16);
      for (std::size_t i = 0; i < n; ++i) {
        b.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
      }
      break;
    }
    case 8: {  // duplicate an internal chunk (length-confusion food)
      const std::size_t len = 1 + rng.index(std::min<std::size_t>(b.size(), 16));
      const std::size_t src = rng.index(b.size() - len + 1);
      const std::size_t dst = rng.index(b.size() + 1);
      const util::Bytes chunk(b.begin() + static_cast<std::ptrdiff_t>(src),
                              b.begin() + static_cast<std::ptrdiff_t>(src + len));
      b.insert(b.begin() + static_cast<std::ptrdiff_t>(dst), chunk.begin(),
               chunk.end());
      break;
    }
    case 9: {  // dictionary token: insert
      if (dict_.empty()) break;
      const util::Bytes& tok = dict_[rng.index(dict_.size())];
      const std::size_t dst = rng.index(b.size() + 1);
      b.insert(b.begin() + static_cast<std::ptrdiff_t>(dst), tok.begin(),
               tok.end());
      break;
    }
    case 10: {  // dictionary token: overwrite
      if (dict_.empty()) break;
      const util::Bytes& tok = dict_[rng.index(dict_.size())];
      if (tok.empty() || b.size() < tok.size()) break;
      const std::size_t dst = rng.index(b.size() - tok.size() + 1);
      std::copy(tok.begin(), tok.end(),
                b.begin() + static_cast<std::ptrdiff_t>(dst));
      break;
    }
    case 11: {  // length-field skew: write a near-buffer-length value
      const std::size_t width = std::size_t{1} << rng.index(3);
      if (b.size() < width) break;
      const std::size_t pos = rng.index(b.size() - width + 1);
      std::uint64_t v = b.size();
      switch (rng.index(4)) {
        case 0: v += 1 + rng.uniform(8); break;        // declared > actual
        case 1: v -= std::min<std::uint64_t>(v, 1 + rng.uniform(8)); break;
        case 2: v = ~std::uint64_t{0} - rng.uniform(16); break;  // wrap pivot
        default: break;                                // exactly the length
      }
      write_window(b, pos, v, width, rng.chance(0.5));
      break;
    }
    default:
      break;
  }
}

}  // namespace aseck::fuzz
