#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "util/rng.hpp"

namespace aseck::fuzz {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_fold(std::uint64_t h, std::uint64_t v, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

void CoverageMap::on_site(std::uint64_t site) {
  // AFL-style edge id: the shifted previous site xor the current one keeps
  // A->B distinct from B->A while staying a pure fold.
  const std::uint64_t edge = (prev_site_ >> 1) ^ site;
  prev_site_ = site;
  ++exec_counts_[edge];
}

void CoverageMap::begin_exec() {
  prev_site_ = 0;
  exec_counts_.clear();
}

std::uint8_t CoverageMap::bucket_bit(std::uint64_t count) {
  // AFL buckets: 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+.
  if (count == 1) return 1u << 0;
  if (count == 2) return 1u << 1;
  if (count == 3) return 1u << 2;
  if (count < 8) return 1u << 3;
  if (count < 16) return 1u << 4;
  if (count < 32) return 1u << 5;
  if (count < 128) return 1u << 6;
  return 1u << 7;
}

bool CoverageMap::commit_exec() {
  bool fresh = false;
  for (const auto& [edge, count] : exec_counts_) {
    const std::uint8_t bit = bucket_bit(count);
    std::uint8_t& mask = global_[edge];
    if ((mask & bit) == 0) {
      mask = static_cast<std::uint8_t>(mask | bit);
      fresh = true;
    }
  }
  return fresh;
}

std::uint64_t CoverageMap::digest() const {
  std::uint64_t h = kFnvOffset;
  for (const auto& [edge, mask] : global_) {
    h = fnv_fold(h, edge, 8);
    h = fnv_fold(h, mask, 1);
  }
  return h;
}

std::string CampaignResult::to_json() const {
  std::string out = "{\"target\":\"" + target + "\"";
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"iterations\":" + std::to_string(iterations);
  out += ",\"execs\":" + std::to_string(execs);
  out += ",\"accepted\":" + std::to_string(accepted);
  out += ",\"corpus_size\":" + std::to_string(corpus_size);
  out += ",\"edges\":" + std::to_string(edges);
  out += ",\"coverage_digest\":\"";
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(coverage_digest));
  out += hex;
  out += "\",\"findings\":[";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) out += ",";
    first = false;
    out += "{\"iteration\":" + std::to_string(f.iteration);
    out += ",\"violation\":\"" + f.violation + "\"";
    out += ",\"input\":\"" + util::to_hex(f.input) + "\"";
    out += ",\"minimized\":\"" + util::to_hex(f.minimized) + "\"}";
  }
  out += "]}";
  return out;
}

util::Bytes Fuzzer::minimize(const FuzzTarget& target, CoverageMap& cov,
                             const util::Bytes& input,
                             const std::string& violation,
                             std::uint64_t& execs) const {
  // Deterministic ddmin-lite: the candidate still reproduces iff the target
  // reports the *same* violation key.
  const auto reproduces = [&](const util::Bytes& candidate) {
    cov.begin_exec();
    const ExecResult r = target.execute(candidate);
    cov.commit_exec();
    ++execs;
    return r.violation == violation;
  };
  util::Bytes best = input;
  // Phase 1: chunk removal with halving chunk sizes.
  for (std::size_t chunk = best.size() / 2; chunk >= 1; chunk /= 2) {
    bool removed = true;
    while (removed) {
      removed = false;
      for (std::size_t pos = 0; pos + chunk <= best.size();) {
        util::Bytes candidate = best;
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(pos),
                        candidate.begin() +
                            static_cast<std::ptrdiff_t>(pos + chunk));
        if (reproduces(candidate)) {
          best = std::move(candidate);
          removed = true;
        } else {
          pos += chunk;
        }
      }
    }
    if (chunk == 1) break;
  }
  // Phase 2: byte normalization (zero each non-zero byte that stays fatal).
  for (std::size_t i = 0; i < best.size(); ++i) {
    if (best[i] == 0) continue;
    util::Bytes candidate = best;
    candidate[i] = 0;
    if (reproduces(candidate)) best = std::move(candidate);
  }
  return best;
}

CampaignResult Fuzzer::run(const FuzzTarget& target) {
  CampaignResult result;
  result.target = target.name;
  result.seed = cfg_.seed;
  result.iterations = cfg_.iterations;

  CoverageMap cov;
  const util::cov::ScopedSink guard(&cov);

  Mutator mutator(cfg_.mutator);
  mutator.set_dictionary(target.dictionary);

  std::vector<util::Bytes> corpus = target.seeds;
  if (corpus.empty()) corpus.push_back({});

  std::set<std::string> seen_violations;
  const auto record_finding = [&](std::uint64_t iteration,
                                  const std::string& violation,
                                  const util::Bytes& input) {
    if (!seen_violations.insert(violation).second) return;
    Finding f;
    f.iteration = iteration;
    f.violation = violation;
    f.input = input;
    f.minimized = cfg_.minimize
                      ? minimize(target, cov, input, violation, result.execs)
                      : input;
    result.findings.push_back(std::move(f));
  };

  // Seed pass: establishes baseline coverage (and catches seeds that already
  // breach an oracle).
  for (const util::Bytes& s : corpus) {
    cov.begin_exec();
    const ExecResult r = target.execute(s);
    cov.commit_exec();
    ++result.execs;
    if (!r.violation.empty()) record_finding(0, r.violation, s);
  }

  const std::uint64_t stream_base =
      cfg_.seed ^ util::cov::site_id(target.name.c_str());
  for (std::uint64_t iter = 1; iter <= cfg_.iterations; ++iter) {
    util::Rng rng = util::Rng::for_stream(stream_base, iter);
    const util::Bytes& base = corpus[rng.index(corpus.size())];
    const util::Bytes input = mutator.mutate(base, rng);

    cov.begin_exec();
    const ExecResult r = target.execute(input);
    const bool fresh = cov.commit_exec();
    ++result.execs;
    if (r.accepted) ++result.accepted;
    if (!r.violation.empty()) record_finding(iter, r.violation, input);
    if (fresh) corpus.push_back(input);
  }

  result.corpus_size = corpus.size();
  result.edges = cov.edges();
  result.coverage_digest = cov.digest();
  return result;
}

}  // namespace aseck::fuzz
