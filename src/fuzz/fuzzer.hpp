#pragma once
// Deterministic coverage-guided protocol fuzzer (experiment E20).
//
// Architecture (DESIGN.md §14): target parsers carry hand-placed
// `ASECK_COV("site")` hooks (util/coverage.hpp — compile-time FNV-hashed
// site ids, no compiler plugin). During a campaign the fuzzer installs a
// `CoverageMap` as the thread-local sink; each hook firing folds the
// (previous site, current site) pair into an edge id, AFL-style bucketed hit
// counts drive corpus retention, and the whole map reduces to a single FNV
// digest for the CI determinism diff.
//
// Reproducibility contract: iteration i of a campaign over target T with
// master seed S mutates with `util::Rng::for_stream(S ^ fnv(T), i)`. Every
// mutated input — and therefore the corpus, the coverage map, and the
// finding list — is a pure function of (S, T, i). Two runs with the same
// seed produce bit-identical `CampaignResult::to_json()` output; the
// fuzz-smoke CI job and bench_e20_fuzz_corpus assert exactly this.
//
// Oracles live in the targets (fuzz/targets.hpp): an execution either is
// rejected cleanly, or is accepted and must satisfy the target's invariants
// (round-trip fixpoint, UDS session/security state machine, SecOC freshness
// monotonicity...). An oracle breach is a Finding; findings are minimized
// with a deterministic ddmin-lite and frozen into the replayable attack
// corpus (attacks/corpus.hpp).

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fuzz/mutator.hpp"
#include "util/bytes.hpp"
#include "util/coverage.hpp"

namespace aseck::fuzz {

/// Edge-coverage accumulator; installed as the util::cov sink for the
/// duration of a campaign.
class CoverageMap final : public util::cov::Sink {
 public:
  void on_site(std::uint64_t site) override;

  /// Resets per-execution state (edge chain + hit counts).
  void begin_exec();
  /// Folds the execution's bucketed hit counts into the global map.
  /// Returns true when any new (edge, bucket) bit appeared.
  bool commit_exec();

  std::size_t edges() const { return global_.size(); }
  /// FNV-1a over the sorted (edge id, bucket mask) pairs — equal digests
  /// imply identical coverage maps.
  std::uint64_t digest() const;

 private:
  static std::uint8_t bucket_bit(std::uint64_t count);

  std::uint64_t prev_site_ = 0;
  std::map<std::uint64_t, std::uint64_t> exec_counts_;  // edge -> hits
  std::map<std::uint64_t, std::uint8_t> global_;        // edge -> bucket mask
};

/// Outcome of feeding one input to a target.
struct ExecResult {
  /// True when the parser accepted the input (cleanly rejected otherwise).
  bool accepted = false;
  /// Non-empty = an invariant oracle was breached; the string is the stable
  /// violation key used for deduplication and minimization.
  std::string violation;
};

/// A fuzzable parser plus its oracle, seeds, and dictionary.
struct FuzzTarget {
  std::string name;  // "someip", "uds", "can", "secoc", "ota"
  std::function<ExecResult(util::BytesView)> execute;
  std::vector<util::Bytes> seeds;
  std::vector<util::Bytes> dictionary;
  std::size_t max_input = 512;
};

/// One deduplicated oracle breach.
struct Finding {
  std::uint64_t iteration = 0;  // 0 = seed input
  std::string violation;
  util::Bytes input;
  util::Bytes minimized;
};

struct CampaignResult {
  std::string target;
  std::uint64_t seed = 0;
  std::uint64_t iterations = 0;
  std::uint64_t execs = 0;     // includes seed runs and minimization probes
  std::uint64_t accepted = 0;  // main-loop executions the parser accepted
  std::size_t corpus_size = 0;
  std::size_t edges = 0;
  std::uint64_t coverage_digest = 0;
  std::vector<Finding> findings;

  /// Deterministic JSON (stable field order, hex inputs, no wall-clock).
  std::string to_json() const;
};

class Fuzzer {
 public:
  struct Config {
    std::uint64_t seed = 42;
    std::uint64_t iterations = 10'000;
    bool minimize = true;
    MutatorConfig mutator;
  };

  explicit Fuzzer(Config cfg) : cfg_(cfg) {}

  /// Runs one campaign. Pure function of (cfg, target): re-running yields a
  /// bit-identical result.
  CampaignResult run(const FuzzTarget& target);

 private:
  util::Bytes minimize(const FuzzTarget& target, CoverageMap& cov,
                       const util::Bytes& input, const std::string& violation,
                       std::uint64_t& execs) const;

  Config cfg_;
};

}  // namespace aseck::fuzz
