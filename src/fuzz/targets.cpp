#include "fuzz/targets.hpp"

#include <algorithm>

#include "crypto/cmac.hpp"
#include "crypto/sha256.hpp"
#include "ivn/can.hpp"
#include "ivn/secoc.hpp"
#include "ivn/someip.hpp"
#include "ivn/uds.hpp"
#include "ota/metadata.hpp"

namespace aseck::fuzz {

namespace {

// Fixed key material: targets must be pure functions of their input, so all
// crypto state is baked in.
util::Bytes fixed_key16() {
  util::Bytes k(16);
  for (std::size_t i = 0; i < k.size(); ++i) {
    k[i] = static_cast<std::uint8_t>(0xA5 ^ (i * 7));
  }
  return k;
}

util::Bytes tok(std::initializer_list<std::uint8_t> bytes) {
  return util::Bytes(bytes);
}

}  // namespace

FuzzTarget someip_target() {
  FuzzTarget t;
  t.name = "someip";
  t.max_input = 256;
  {
    ivn::SomeIpMessage m;
    m.service = 0x1234;
    m.method = 0x0001;
    m.client = 0x0042;
    m.session = 0x0007;
    m.type = ivn::SomeIpMessage::Type::kRequest;
    m.payload = {0xde, 0xad, 0xbe, 0xef};
    t.seeds.push_back(m.serialize());
    m.type = ivn::SomeIpMessage::Type::kNotification;
    m.payload.clear();
    t.seeds.push_back(m.serialize());
  }
  t.dictionary = {tok({0x00}), tok({0x80}), tok({0x81}), tok({0x02}),
                  tok({0x00, 0x00, 0x00, 0x00}),
                  tok({0xff, 0xff, 0xff, 0xf6})};
  t.execute = [](util::BytesView b) -> ExecResult {
    const auto m = ivn::SomeIpMessage::parse(b);
    if (!m) return {false, ""};
    if (b.size() < 13 || m->payload.size() > b.size() - 13) {
      return {true, "someip.oracle.len"};
    }
    const util::Bytes s = m->serialize();
    const auto m2 = ivn::SomeIpMessage::parse(s);
    if (!m2) return {true, "someip.oracle.reparse"};
    if (m2->serialize() != s) return {true, "someip.oracle.fixpoint"};
    return {true, ""};
  };
  return t;
}

FuzzTarget uds_target() {
  FuzzTarget t;
  t.name = "uds";
  t.max_input = 256;
  // Seeds: plausible multi-request scripts in the [len][request...] framing.
  t.seeds = {
      // session extended, requestSeed level 1
      tok({0x02, 0x10, 0x03, 0x02, 0x27, 0x01}),
      // read DID F190, write DID 1234
      tok({0x03, 0x22, 0xF1, 0x90, 0x05, 0x2E, 0x12, 0x34, 0xAA, 0xBB}),
      // read DID F190, then requestDownload alfid 0x44 addr=0x1000 size=0x100
      // (gated negative: not unlocked)
      tok({0x03, 0x22, 0xF1, 0x90, 0x0B, 0x34, 0x00, 0x44, 0x00, 0x00, 0x10,
           0x00, 0x00, 0x00, 0x01, 0x00}),
      // sendKey level 2 with a (wrong) 4-byte key
      tok({0x02, 0x10, 0x03, 0x02, 0x27, 0x01, 0x06, 0x27, 0x02, 0x01, 0x02,
           0x03, 0x04}),
  };
  t.dictionary = {tok({0x10}), tok({0x27}), tok({0x22}),       tok({0x2E}),
                  tok({0x31}), tok({0x34}), tok({0xF1, 0x90}), tok({0x12, 0x34}),
                  tok({0xFF, 0x00})};
  t.execute = [](util::BytesView b) -> ExecResult {
    const ivn::SeedKeyFn seed_key = ivn::cmac_algorithm(fixed_key16());
    ivn::UdsServer server({seed_key, 3, 600.0, 4}, 0x5eed);
    server.define_did(0xF190, {0x01, 0x02, 0x03}, false);
    server.define_did(0x1234, {0x00}, false);
    server.define_did(0x2F01, {0x00}, true);  // write-protected

    // Shadow security model for the V9 bypass oracle.
    std::optional<util::Bytes> shadow_seed;
    bool any_accepted = false;
    std::size_t pos = 0;
    for (int reqno = 0; reqno < 32 && pos < b.size(); ++reqno) {
      const std::size_t len =
          std::min<std::size_t>(b[pos], b.size() - pos - 1);
      const util::BytesView req = b.subspan(pos + 1, len);
      pos += 1 + len;
      const double now_s = 0.05 * reqno;
      const bool was_unlocked = server.unlocked();
      const util::Bytes resp = server.handle_request(req, now_s);

      // Response shape invariant.
      if (resp.empty()) return {any_accepted, "uds.oracle.empty_response"};
      const std::uint8_t sid = req.empty() ? 0x00 : req[0];
      const bool negative = resp[0] == 0x7F;
      if (negative) {
        if (resp.size() != 3 || resp[1] != sid || resp[2] == 0x00) {
          return {any_accepted, "uds.oracle.negative_shape"};
        }
      } else {
        if (resp[0] != static_cast<std::uint8_t>(sid + 0x40)) {
          return {any_accepted, "uds.oracle.positive_shape"};
        }
        any_accepted = true;
      }

      // Track seeds handed out by positive requestSeed responses.
      if (!negative && sid == 0x27 && req.size() >= 2 && (req[1] % 2) == 1) {
        // Positive response data = [level, seed...].
        shadow_seed.emplace(resp.begin() + 2, resp.end());
      }
      // The server may only unlock on a sendKey carrying the exact CMAC of
      // the last issued seed — anything else is a security bypass.
      if (!was_unlocked && server.unlocked()) {
        const bool is_send_key =
            sid == 0x27 && req.size() >= 2 && (req[1] % 2) == 0;
        if (!is_send_key || !shadow_seed) {
          return {any_accepted, "uds.oracle.bypass"};
        }
        const util::Bytes expected = ivn::cmac_algorithm(fixed_key16())(
            *shadow_seed);
        const util::Bytes sent(req.begin() + 2, req.end());
        if (sent != expected) return {any_accepted, "uds.oracle.bypass"};
      }
      // RequestDownload must never succeed outside unlocked + programming.
      if (!negative && sid == 0x34 &&
          (!server.unlocked() ||
           server.session() != ivn::UdsSession::kProgramming)) {
        return {any_accepted, "uds.oracle.download_gate"};
      }
    }
    return {any_accepted, ""};
  };
  return t;
}

FuzzTarget can_target() {
  FuzzTarget t;
  t.name = "can";
  t.max_input = 96;
  {
    ivn::CanFrame f;
    f.id = 0x123;
    f.data = {1, 2, 3, 4};
    t.seeds.push_back(f.encode_wire());
    f.format = ivn::CanFormat::kFd;
    f.brs = true;
    f.data.assign(12, 0xAB);
    t.seeds.push_back(f.encode_wire());
    f = {};
    f.id = 0x1ABCDE;
    f.extended = true;
    f.remote = true;
    t.seeds.push_back(f.encode_wire());
  }
  t.dictionary = {tok({0x00}), tok({0x01}), tok({0x04}), tok({0x0C}),
                  tok({0x08}), tok({0x0F}), tok({0x07, 0xFF})};
  t.execute = [](util::BytesView b) -> ExecResult {
    const auto f = ivn::CanFrame::decode_wire(b);
    if (!f) return {false, ""};
    if (!f->valid()) return {true, "can.oracle.invalid_accept"};
    const util::Bytes re = f->encode_wire();
    if (re.size() != b.size() || !std::equal(re.begin(), re.end(), b.begin())) {
      return {true, "can.oracle.roundtrip"};
    }
    // Timing accounting must hold for any accepted frame.
    std::size_t arb = 0;
    (void)f->wire_bits(&arb);
    return {true, ""};
  };
  return t;
}

FuzzTarget secoc_target() {
  FuzzTarget t;
  t.name = "secoc";
  t.max_input = 96;
  constexpr std::uint16_t kDataId = 0x0101;
  constexpr std::uint64_t kBase = 100;
  {
    // Seeds: genuinely protected PDUs at tx counters just above the base.
    const ivn::SecOcChannel ch(fixed_key16());
    ivn::FreshnessManager fm;
    fm.set_tx(kDataId, kBase);
    t.seeds.push_back(ch.protect(kDataId, tok({0x11, 0x22, 0x33}), fm));
    t.seeds.push_back(ch.protect(kDataId, tok({}), fm));
  }
  t.execute = [](util::BytesView b) -> ExecResult {
    const ivn::SecOcChannel ch(fixed_key16());
    const ivn::SecOcConfig& cfg = ch.config();
    ivn::FreshnessManager fm;
    fm.accept_rx(kDataId, kBase);

    const auto r1 = ch.verify(kDataId, b, fm);
    if (r1.status != ivn::SecOcStatus::kOk) {
      if (fm.last_rx(kDataId) != kBase) {
        return {false, "secoc.oracle.reject_mutated_state"};
      }
      return {false, ""};
    }
    // Accepted: freshness must be strictly monotone and inside the window.
    const std::uint64_t fresh = fm.last_rx(kDataId);
    if (fresh <= kBase) return {true, "secoc.oracle.monotone"};
    if (fresh - kBase > cfg.freshness_window) {
      return {true, "secoc.oracle.window"};
    }
    // The wire MAC must be the genuine CMAC over (data id, payload, the
    // reconstructed freshness) — acceptance without it is a forgery.
    if (b.size() != r1.payload.size() + ch.overhead()) {
      return {true, "secoc.oracle.shape"};
    }
    util::Bytes mac_in;
    util::append_be(mac_in, kDataId, 2);
    mac_in.insert(mac_in.end(), r1.payload.begin(), r1.payload.end());
    util::append_be(mac_in, fresh, 8);
    const crypto::Cmac cmac(fixed_key16());
    const util::BytesView wire_mac = b.subspan(b.size() - cfg.mac_bytes);
    if (!cmac.verify(mac_in, wire_mac)) {
      return {true, "secoc.oracle.forgery"};
    }
    // Verbatim replay of an accepted PDU must be rejected.
    const auto r2 = ch.verify(kDataId, b, fm);
    if (r2.status == ivn::SecOcStatus::kOk) {
      return {true, "secoc.oracle.replay"};
    }
    return {true, ""};
  };
  return t;
}

FuzzTarget ota_target() {
  FuzzTarget t;
  t.name = "ota";
  t.max_input = 512;
  {
    util::Bytes secret(32, 0x11);
    const auto k1 = crypto::EcdsaPrivateKey::from_secret(secret);
    secret.assign(32, 0x22);
    const auto k2 = crypto::EcdsaPrivateKey::from_secret(secret);

    ota::RootMeta root;
    root.version = 3;
    root.expires.ns = 1'000'000'000ULL;
    root.roles[ota::Role::kRoot] = {1, {ota::key_id(k1.public_key())}};
    root.roles[ota::Role::kTargets] = {1, {ota::key_id(k2.public_key())}};
    root.keys[ota::key_id_hex(ota::key_id(k1.public_key()))] = k1.public_key();
    root.keys[ota::key_id_hex(ota::key_id(k2.public_key()))] = k2.public_key();
    t.seeds.push_back(root.serialize());

    ota::TargetsMeta targets;
    targets.version = 7;
    targets.expires.ns = 2'000'000'000ULL;
    ota::TargetInfo info;
    info.sha256.assign(32, 0xCD);
    info.length = 0x10000;
    info.version = 2;
    info.hardware_id = "ecu-brake";
    targets.targets["brake.img"] = info;
    info.length = 0x4000;
    info.hardware_id = "ecu-door";
    targets.targets["door.img"] = info;
    t.seeds.push_back(targets.serialize());

    ota::SnapshotMeta snap;
    snap.version = 7;
    snap.expires.ns = 2'000'000'000ULL;
    snap.targets_version = 7;
    t.seeds.push_back(snap.serialize());

    ota::TimestampMeta ts;
    ts.version = 9;
    ts.expires.ns = 3'000'000'000ULL;
    ts.snapshot_version = 7;
    const crypto::Digest d = crypto::sha256(snap.serialize());
    ts.snapshot_hash.assign(d.begin(), d.end());
    t.seeds.push_back(ts.serialize());
  }
  t.dictionary = {tok({'R'}), tok({'T'}), tok({'S'}), tok({'M'}), tok({0x04}),
                  tok({0xff, 0xff})};
  t.execute = [](util::BytesView b) -> ExecResult {
    if (b.empty()) return {false, ""};
    switch (b[0]) {
      case 'R': {
        const auto m = ota::RootMeta::parse(b);
        if (!m) return {false, ""};
        if (m->serialize() != util::Bytes(b.begin(), b.end())) {
          return {true, "ota.oracle.fixpoint.root"};
        }
        return {true, ""};
      }
      case 'T': {
        const auto m = ota::TargetsMeta::parse(b);
        if (!m) return {false, ""};
        if (m->serialize() != util::Bytes(b.begin(), b.end())) {
          return {true, "ota.oracle.fixpoint.targets"};
        }
        return {true, ""};
      }
      case 'S': {
        const auto m = ota::SnapshotMeta::parse(b);
        if (!m) return {false, ""};
        if (m->serialize() != util::Bytes(b.begin(), b.end())) {
          return {true, "ota.oracle.fixpoint.snapshot"};
        }
        return {true, ""};
      }
      case 'M': {
        const auto m = ota::TimestampMeta::parse(b);
        if (!m) return {false, ""};
        if (m->serialize() != util::Bytes(b.begin(), b.end())) {
          return {true, "ota.oracle.fixpoint.timestamp"};
        }
        return {true, ""};
      }
      default:
        return {false, ""};
    }
  };
  return t;
}

std::vector<FuzzTarget> builtin_targets() {
  return {someip_target(), uds_target(), can_target(), secoc_target(),
          ota_target()};
}

}  // namespace aseck::fuzz
