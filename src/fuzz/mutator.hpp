#pragma once
// Deterministic mutation engine for the E20 protocol fuzzer.
//
// Every mutation draws exclusively from the caller-supplied `util::Rng`, so a
// mutated input is a pure function of (base input, RNG state): replaying the
// same per-iteration stream (see Fuzzer — `Rng::for_stream(seed ^ target,
// iteration)`) regenerates the identical byte string on any platform. The
// operator set is the classic protocol-fuzzing kit: bit/byte flips,
// interesting-value splices (8/16/32-bit, both endiannesses), arithmetic
// deltas, truncation/extension, chunk duplication, dictionary-token
// insertion, and length-field skew (writing values near/at the buffer length
// into a window — the mutation that finds V10/V11-class length-validation
// bugs).

#include <cstddef>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace aseck::fuzz {

struct MutatorConfig {
  /// Mutated inputs never exceed this many bytes.
  std::size_t max_len = 512;
  /// Mutations stacked per call: 1 + uniform(max_stack) operators.
  std::size_t max_stack = 4;
};

class Mutator {
 public:
  explicit Mutator(MutatorConfig cfg = {}) : cfg_(cfg) {}

  /// Protocol keywords (SIDs, magic bytes, DLC codes...) spliced verbatim.
  void set_dictionary(std::vector<util::Bytes> tokens) {
    dict_ = std::move(tokens);
  }
  const std::vector<util::Bytes>& dictionary() const { return dict_; }

  /// Produces a mutated copy of `base`. Deterministic given `rng`'s state.
  util::Bytes mutate(util::BytesView base, util::Rng& rng) const;

 private:
  void apply_one(util::Bytes& b, util::Rng& rng) const;

  MutatorConfig cfg_;
  std::vector<util::Bytes> dict_;
};

}  // namespace aseck::fuzz
