#include "sim/sharded.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aseck::sim {

Shard::Shard(ShardedWorld& world, std::uint32_t index, std::uint32_t col,
             std::uint32_t row, std::uint64_t master_seed,
             std::size_t trace_capacity)
    : world_(world),
      index_(index),
      col_(col),
      row_(row),
      rng_(util::Rng::for_stream(master_seed, index)) {
  telemetry_.bus->set_capacity(trace_capacity);
}

void Shard::post(std::uint32_t to, SimTime deliver_at, Handler fn) {
  if (to >= world_.shard_count()) {
    throw std::out_of_range("Shard::post: bad destination shard");
  }
  const std::uint32_t cols = world_.cols();
  const std::int32_t dcol = static_cast<std::int32_t>(to % cols) -
                            static_cast<std::int32_t>(col_);
  const std::int32_t drow = static_cast<std::int32_t>(to / cols) -
                            static_cast<std::int32_t>(row_);
  if (dcol >= -1 && dcol <= 1 && drow >= -1 && drow <= 1) {
    out_[static_cast<std::size_t>((drow + 1) * 3 + (dcol + 1))].push_back(
        Msg{deliver_at, std::move(fn)});
  } else {
    far_out_.push_back(FarMsg{to, deliver_at, std::move(fn)});
  }
}

ShardedWorld::ShardedWorld(ShardedWorldConfig cfg)
    : cfg_(cfg), pool_(cfg.threads) {
  if (cfg_.width_m <= 0 || cfg_.height_m <= 0 || cfg_.cell_m <= 0) {
    throw std::invalid_argument("ShardedWorld: bad dimensions");
  }
  if (cfg_.epoch.ns == 0) {
    throw std::invalid_argument("ShardedWorld: zero epoch");
  }
  cols_ = static_cast<std::uint32_t>(std::ceil(cfg_.width_m / cfg_.cell_m));
  rows_ = static_cast<std::uint32_t>(std::ceil(cfg_.height_m / cfg_.cell_m));
  if (cols_ == 0) cols_ = 1;
  if (rows_ == 0) rows_ = 1;
  shards_.reserve(static_cast<std::size_t>(cols_) * rows_);
  for (std::uint32_t r = 0; r < rows_; ++r) {
    for (std::uint32_t c = 0; c < cols_; ++c) {
      shards_.emplace_back(new Shard(*this, r * cols_ + c, c, r, cfg_.seed,
                                     cfg_.trace_capacity));
    }
  }
}

std::uint32_t ShardedWorld::shard_index_at(double x, double y) const {
  double cx = std::floor(x / cfg_.cell_m);
  double cy = std::floor(y / cfg_.cell_m);
  if (!(cx > 0)) cx = 0;  // also catches NaN
  if (!(cy > 0)) cy = 0;
  std::uint32_t c = static_cast<std::uint32_t>(cx);
  std::uint32_t r = static_cast<std::uint32_t>(cy);
  if (c >= cols_) c = cols_ - 1;
  if (r >= rows_) r = rows_ - 1;
  return r * cols_ + c;
}

std::uint64_t ShardedWorld::messages() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->delivered_;
  return n;
}

void ShardedWorld::deliver(Shard& dst, Msg&& m, SimTime end) {
  ++dst.delivered_;
  if (m.at <= end) {
    m.fn(dst);  // handled at the boundary, before next-epoch events
  } else {
    auto fn = std::make_shared<Shard::Handler>(std::move(m.fn));
    Shard* d = &dst;
    dst.sched_.schedule_at(m.at, [fn, d] { (*fn)(*d); });
  }
}

void ShardedWorld::deliver_neighbors(Shard& dst, SimTime end) {
  // Sources in ascending shard id: row-major over the 3x3 neighborhood.
  const std::int32_t r0 = static_cast<std::int32_t>(dst.row_);
  const std::int32_t c0 = static_cast<std::int32_t>(dst.col_);
  for (std::int32_t dr = -1; dr <= 1; ++dr) {
    const std::int32_t sr = r0 + dr;
    if (sr < 0 || sr >= static_cast<std::int32_t>(rows_)) continue;
    for (std::int32_t dc = -1; dc <= 1; ++dc) {
      const std::int32_t sc = c0 + dc;
      if (sc < 0 || sc >= static_cast<std::int32_t>(cols_)) continue;
      Shard& src = *shards_[static_cast<std::size_t>(sr) * cols_ +
                            static_cast<std::size_t>(sc)];
      // Slot of src that targets dst: offset of dst relative to src.
      auto& slot = src.pending_[static_cast<std::size_t>((-dr + 1) * 3 +
                                                         (-dc + 1))];
      for (Msg& m : slot) deliver(dst, std::move(m), end);
      slot.clear();  // dst is the only reader/writer of this slot here
    }
  }
}

void ShardedWorld::deliver_far(SimTime end) {
  for (auto& s : shards_) {
    for (Shard::FarMsg& m : s->far_pending_) {
      deliver(*shards_[m.to], Msg{m.at, std::move(m.fn)}, end);
    }
    s->far_pending_.clear();
  }
}

void ShardedWorld::run_until(SimTime until) {
  const std::size_t n = shards_.size();
  while (now_ < until) {
    SimTime end = now_ + cfg_.epoch;
    if (end > until) end = until;

    pool_.parallel_for(
        n, [this, end](std::size_t i) { shards_[i]->sched_.run_until(end); });

    // Freeze this epoch's outboxes; posts from delivery handlers land in
    // the fresh outboxes and ship at the next boundary.
    bool any = false, any_far = false;
    for (auto& s : shards_) {
      for (std::size_t k = 0; k < 9; ++k) {
        if (!s->out_[k].empty()) {
          std::swap(s->out_[k], s->pending_[k]);
          any = true;
        }
      }
      if (!s->far_out_.empty()) {
        std::swap(s->far_out_, s->far_pending_);
        any_far = true;
      }
    }
    if (any) {
      pool_.parallel_for(n, [this, end](std::size_t i) {
        deliver_neighbors(*shards_[i], end);
      });
    }
    if (any_far) deliver_far(end);

    now_ = end;
    ++epochs_;
  }
}

void ShardedWorld::merge_metrics(MetricsRegistry& into) const {
  for (const auto& s : shards_) into.merge_from(*s->telemetry_.metrics);
}

std::string ShardedWorld::merged_metrics_json() const {
  MetricsRegistry merged;
  merge_metrics(merged);
  return merged.to_json();
}

}  // namespace aseck::sim
