#include "sim/threadpool.hpp"

namespace aseck::sim {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    error_ = nullptr;
    job_.store(&fn, std::memory_order_relaxed);
    job_n_.store(n, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    // Release: workers that claim an index via next_ observe job_/job_n_.
    next_.store(0, std::memory_order_release);
    ++gen_;
  }
  cv_work_.notify_all();
  work();  // the coordinator claims indices too
  std::unique_lock<std::mutex> lk(m_);
  cv_done_.wait(lk, [this, n] { return completed_.load() == n; });
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::work() {
  while (true) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_acquire);
    const std::size_t n = job_n_.load(std::memory_order_relaxed);
    if (i >= n) break;
    try {
      (*job_.load(std::memory_order_relaxed))(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(m_);
      if (!error_) error_ = std::current_exception();
    }
    if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      std::lock_guard<std::mutex> lk(m_);  // pair with cv_done_ wait
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_work_.wait(lk, [&] { return stop_ || gen_ != seen; });
      if (stop_) return;
      seen = gen_;
    }
    work();
  }
}

}  // namespace aseck::sim
