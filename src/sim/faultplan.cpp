#include "sim/faultplan.hpp"

#include <algorithm>
#include <cstdio>

namespace aseck::sim {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kFrameDrop: return "frame_drop";
    case FaultKind::kFrameCorrupt: return "frame_corrupt";
    case FaultKind::kFrameDelay: return "frame_delay";
    case FaultKind::kFrameDuplicate: return "frame_duplicate";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kRadioLoss: return "radio_loss";
    case FaultKind::kOutage: return "outage";
    case FaultKind::kPowerLoss: return "power_loss";
    case FaultKind::kMalformedFrame: return "malformed_frame";
    case FaultKind::kRepoSlowdown: return "repo_slowdown";
  }
  return "?";
}

bool fault_kind_auto_recovers(FaultKind k) {
  switch (k) {
    case FaultKind::kFrameDrop:
    case FaultKind::kFrameCorrupt:
    case FaultKind::kFrameDelay:
    case FaultKind::kFrameDuplicate:
    case FaultKind::kRadioLoss:
    case FaultKind::kMalformedFrame:
    case FaultKind::kRepoSlowdown:
      return true;
    case FaultKind::kCrash:
    case FaultKind::kPartition:
    case FaultKind::kOutage:
    case FaultKind::kPowerLoss:  // the ECU stays dark until boot() recovery
      return false;
  }
  return false;
}

FaultPlan::FaultPlan(Scheduler& sched, std::uint64_t seed)
    : sched_(sched),
      seed_(seed),
      rng_(seed),
      trace_("faultplan"),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  wire_telemetry();
}

void FaultPlan::wire_telemetry() {
  const auto rewire = [this](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(std::string("faultplan.") + key);
    if (c && c != &nc) nc.inc(c->value());  // carry accumulated value across
    c = &nc;
  };
  rewire(c_injected_, "injected");
  rewire(c_cleared_, "cleared");
  rewire(c_recovered_, "recovered");
  h_recovery_ms_ = &metrics_->histogram("faultplan.recovery_ms", 0, 10'000, 64);
  k_inject_ = trace_.kind("inject");
  k_clear_ = trace_.kind("clear");
  k_recovered_ = trace_.kind("recovered");
  k_campaign_ = trace_.kind("campaign");
}

void FaultPlan::bind_telemetry(const Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

FaultPort& FaultPlan::port(const std::string& target) {
  auto it = ports_.find(target);
  if (it == ports_.end()) {
    it = ports_.emplace(target, std::unique_ptr<FaultPort>(new FaultPort(rng_)))
             .first;
  }
  return *it->second;
}

void FaultPlan::on(const std::string& target, FaultKind kind, Handler h) {
  handlers_[HandlerKey{target, kind}].push_back(std::move(h));
}

void FaultPlan::apply(const FaultSpec& spec, bool begin) {
  FaultPort& p = port(spec.target);
  const double d = begin ? spec.probability : -spec.probability;
  const auto bump = [d](double& v) {
    v += d;
    if (v < 1e-12) v = 0;
    if (v > 1.0) v = 1.0;
  };
  switch (spec.kind) {
    case FaultKind::kFrameDrop: bump(p.drop_p_); break;
    case FaultKind::kFrameCorrupt: bump(p.corrupt_p_); break;
    case FaultKind::kFrameDuplicate: bump(p.dup_p_); break;
    case FaultKind::kFrameDelay:
      bump(p.delay_p_);
      if (begin) p.delay_ = spec.delay;
      break;
    case FaultKind::kCrash:
    case FaultKind::kPartition:
    case FaultKind::kRadioLoss:
    case FaultKind::kOutage:
      p.down_ = std::max(0, p.down_ + (begin ? 1 : -1));
      break;
    case FaultKind::kPowerLoss:
      bump(p.power_loss_p_);
      if (begin) {
        p.power_cut_at_ = spec.page_index;
        p.write_ops_ = 0;
      } else {
        p.power_cut_at_ = -1;
      }
      break;
    case FaultKind::kMalformedFrame:
      bump(p.malformed_p_);
      if (begin) {
        p.malformed_ = spec.payload;
      } else if (p.malformed_p_ <= 0) {
        p.malformed_.clear();
      }
      break;
    case FaultKind::kRepoSlowdown:
      // Overlapping windows stack; the subtraction is exact because ns are
      // integers, but clamp anyway against a mismatched begin/end pair.
      if (begin) {
        p.slowdown_ += spec.delay;
      } else {
        p.slowdown_ = spec.delay.ns >= p.slowdown_.ns
                          ? util::SimTime::zero()
                          : p.slowdown_ - spec.delay;
      }
      break;
  }
  const auto hit = handlers_.find(HandlerKey{spec.target, spec.kind});
  if (hit != handlers_.end()) {
    for (const Handler& h : hit->second) h(spec, begin);
  }
}

void FaultPlan::begin_fault(std::uint64_t id) {
  FaultRecord& r = records_[id - 1];
  r.injected = true;
  r.injected_at = sched_.now();
  c_injected_->inc();
  ASECK_TRACE(trace_, sched_.now(), k_inject_,
              r.spec.target + " kind=" + fault_kind_name(r.spec.kind) +
                  " id=" + std::to_string(id));
  apply(r.spec, true);
}

void FaultPlan::end_fault(std::uint64_t id) {
  FaultRecord& r = records_[id - 1];
  apply(r.spec, false);
  r.cleared = true;
  r.cleared_at = sched_.now();
  c_cleared_->inc();
  ASECK_TRACE(trace_, sched_.now(), k_clear_,
              r.spec.target + " kind=" + fault_kind_name(r.spec.kind) +
                  " id=" + std::to_string(id));
  if (fault_kind_auto_recovers(r.spec.kind) && !r.recovered) {
    // The channel is healthy the moment the window clears.
    r.recovered = true;
    r.recovered_at = r.cleared_at;
    c_recovered_->inc();
    h_recovery_ms_->record(r.recovery_latency().ms());
    ASECK_TRACE(trace_, sched_.now(), k_recovered_,
                r.spec.target + " id=" + std::to_string(id));
  }
}

std::uint64_t FaultPlan::window(util::SimTime at, util::SimTime duration,
                                FaultSpec spec) {
  FaultRecord r;
  r.id = records_.size() + 1;
  r.spec = std::move(spec);
  records_.push_back(std::move(r));
  const std::uint64_t id = records_.back().id;
  sched_.schedule_at(at, [this, id] { begin_fault(id); });
  sched_.schedule_at(at + duration, [this, id] { end_fault(id); });
  return id;
}

std::vector<std::uint64_t> FaultPlan::random_campaign(
    util::SimTime start, util::SimTime horizon, double rate_hz,
    util::SimTime duration, const std::vector<FaultSpec>& specs) {
  std::vector<std::uint64_t> ids;
  if (specs.empty() || rate_hz <= 0) return ids;
  // All randomness is drawn *now*, in one deterministic burst, so the
  // arrival script does not interleave with per-frame port rolls.
  util::SimTime t = start;
  while (true) {
    t += util::SimTime::from_seconds_f(rng_.exponential(rate_hz));
    if (t >= horizon) break;
    ids.push_back(window(t, duration, specs[rng_.index(specs.size())]));
  }
  return ids;
}

std::size_t FaultPlan::notify_recovered(const std::string& target) {
  std::size_t n = 0;
  for (FaultRecord& r : records_) {
    if (!r.injected || r.recovered || r.spec.target != target) continue;
    r.recovered = true;
    r.recovered_at = sched_.now();
    c_recovered_->inc();
    h_recovery_ms_->record(r.recovery_latency().ms());
    ASECK_TRACE(trace_, sched_.now(), k_recovered_,
                target + " id=" + std::to_string(r.id));
    ++n;
  }
  return n;
}

std::size_t FaultPlan::injected() const {
  std::size_t n = 0;
  for (const FaultRecord& r : records_) n += r.injected ? 1 : 0;
  return n;
}

std::size_t FaultPlan::recovered() const {
  std::size_t n = 0;
  for (const FaultRecord& r : records_) n += r.recovered ? 1 : 0;
  return n;
}

std::string FaultPlan::to_json() const {
  std::string out = "{\"seed\":" + std::to_string(seed_) + ",\"faults\":[";
  bool first = true;
  for (const FaultRecord& r : records_) {
    if (!first) out += ",";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"id\":%llu,\"target\":\"%s\",\"kind\":\"%s\","
                  "\"injected_ns\":%llu,\"cleared_ns\":%llu,"
                  "\"recovered\":%s,\"recovery_ms\":%.3f}",
                  static_cast<unsigned long long>(r.id), r.spec.target.c_str(),
                  fault_kind_name(r.spec.kind),
                  static_cast<unsigned long long>(r.injected_at.ns),
                  static_cast<unsigned long long>(r.cleared_at.ns),
                  r.recovered ? "true" : "false", r.recovery_latency().ms());
    out += buf;
  }
  out += "],\"injected\":" + std::to_string(injected()) +
         ",\"recovered\":" + std::to_string(recovered()) +
         ",\"unrecovered\":" + std::to_string(unrecovered()) + "}";
  return out;
}

}  // namespace aseck::sim
