#pragma once
// Unified telemetry core: one ordered event stream (TraceBus) plus a named
// metrics plane (MetricsRegistry) shared by every substrate — CAN, LIN,
// FlexRay, Ethernet, SOME/IP, UDS, the gateway, the IDS, OTA, and V2X.
//
// Rationale (paper §7): the 4+1 assurance architecture's IDS/forensics layer
// needs to correlate security events *across* substrates — a spoofed CAN
// frame, the gateway drop, and the IDS alert are one causal chain. The
// legacy design gave each component a private `sim::TraceSink` with
// per-record std::string copies, so no cross-layer timeline existed.
//
// Design points:
//  * Component and kind names are interned to integer TraceIds once; the
//    hot `record` path stores two ints + one detail string instead of three
//    strings, and queries compare ints instead of strings.
//  * Optional bounded ring-buffer mode (`set_capacity`) keeps long campaigns
//    at fixed memory; the newest events win, `evicted()` counts the loss.
//  * Subscribers tap the stream live (the IDS/forensics hook).
//  * `TraceScope` is the per-component handle: it defaults to a private bus
//    (so standalone components behave like the old per-component sink) and
//    can be rebound to a shared bus — `core::VehiclePlatform` owns the
//    shared instance and rebinds everything it constructs.
//  * MetricsRegistry holds named counters, gauges, and fixed-bucket latency
//    histograms with stable addresses, plus JSON export for the bench suite.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace aseck::sim {

/// Interned name id. 0 = "none"/unknown.
using TraceId = std::uint32_t;

/// One event on the bus. `seq` is globally monotonic: events with smaller
/// seq happened-before events with larger seq (the sim is single-threaded,
/// so record order is causal order).
struct TraceEvent {
  util::SimTime at;
  std::uint64_t seq = 0;
  TraceId component = 0;
  TraceId kind = 0;
  std::string detail;
};

/// Platform-wide ordered event stream with interned names.
class TraceBus {
 public:
  TraceBus();
  TraceBus(const TraceBus&) = delete;
  TraceBus& operator=(const TraceBus&) = delete;

  /// Interns `s`, returning a stable id (idempotent per spelling).
  TraceId intern(std::string_view s);
  /// Resolves without interning; 0 if never seen.
  TraceId lookup(std::string_view s) const;
  /// Spelling of an interned id ("" for 0/unknown).
  const std::string& name(TraceId id) const;
  /// Number of distinct interned names.
  std::size_t interned() const { return names_.size() - 1; }

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// 0 = unbounded (default). Otherwise keep only the newest `cap` events
  /// (bounded ring buffer); older events are evicted and counted.
  void set_capacity(std::size_t cap);
  std::size_t capacity() const { return capacity_; }

  /// Appends an event. Subscribers run synchronously before storage, so a
  /// tap sees every event even in ring mode.
  void record(util::SimTime at, TraceId component, TraceId kind,
              std::string detail = {});
  /// Convenience: interns names on the fly (cold paths).
  void record(util::SimTime at, std::string_view component,
              std::string_view kind, std::string detail = {}) {
    if (!enabled_) return;
    record(at, intern(component), intern(kind), std::move(detail));
  }

  /// Retained events, oldest first (the ring window when bounded).
  std::size_t size() const { return events_.size(); }
  const TraceEvent& event(std::size_t i) const;
  /// Total record() calls accepted (including evicted events).
  std::uint64_t total_recorded() const { return total_recorded_; }
  /// Events lost to ring-buffer eviction.
  std::uint64_t evicted() const { return evicted_; }
  void clear();

  /// Number of retained events matching component and/or kind ("" = any).
  std::size_t count(std::string_view component,
                    std::string_view kind = {}) const;
  /// First (oldest) retained match, or nullptr.
  const TraceEvent* find_first(std::string_view component,
                               std::string_view kind = {}) const;

  /// Live tap; returns a token for unsubscribe.
  using Subscriber = std::function<void(const TraceEvent&)>;
  std::uint64_t subscribe(Subscriber fn);
  void unsubscribe(std::uint64_t token);

  /// Human-readable causally-ordered timeline of retained events, optionally
  /// filtered ("" = any). One line per event: `seq @ time component kind detail`.
  std::string timeline(std::string_view component = {},
                       std::string_view kind = {}) const;

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  bool enabled_ = true;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::size_t head_ = 0;      // ring start when bounded & full
  std::vector<TraceEvent> events_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t total_recorded_ = 0;
  std::uint64_t evicted_ = 0;
  std::unordered_map<std::string, TraceId, StringHash, std::equal_to<>> ids_;
  std::vector<const std::string*> names_;  // id -> spelling (map nodes are stable)
  struct Sub {
    std::uint64_t token;
    Subscriber fn;
  };
  std::vector<Sub> subscribers_;
  std::uint64_t next_token_ = 1;
};

// ---------------------------------------------------------------------------
// Metrics

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double d) { v_ += d; }
  double value() const { return v_; }

 private:
  double v_ = 0;
};

/// Fixed-bucket latency histogram over [lo, hi); out-of-range samples clamp
/// to the edge buckets. Tracks exact count/sum/min/max alongside buckets.
/// NaN samples are never binned (the cast would be UB); see nan_count().
class LatencyHistogram {
 public:
  LatencyHistogram(double lo, double hi, std::size_t buckets);

  void record(double x);
  std::size_t count() const { return count_; }
  std::size_t nan_count() const { return nan_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }
  std::size_t buckets() const { return counts_.size(); }
  std::size_t bucket_count(std::size_t i) const { return counts_.at(i); }
  double bucket_low(std::size_t i) const;
  double bucket_high(std::size_t i) const { return bucket_low(i + 1); }
  double low() const { return lo_; }
  double high() const { return hi_; }
  /// Percentile estimated by linear interpolation within buckets; p in [0,100].
  double percentile(double p) const;

  /// Folds `o` into this histogram. Both must share the exact bucket layout
  /// (lo, hi, bucket count) — per-shard registries create instruments from
  /// the same code paths, so layouts match by construction; a mismatch
  /// throws. Merging a stream split across K histograms yields the same
  /// count/sum/min/max/buckets as one histogram that saw every sample
  /// (sums are added in merge order, so merge in a canonical order when
  /// bit-stable output matters).
  void merge_from(const LatencyHistogram& o);

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t count_ = 0;
  std::size_t nan_ = 0;
  double sum_ = 0, min_ = 0, max_ = 0;
};

/// RAII wall-clock timer recording elapsed microseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram& h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram& h_;
  std::uint64_t t0_ns_;
};

/// Named metrics with stable addresses. Instruments are created on first
/// access and live for the registry's lifetime, so components may cache the
/// returned references/pointers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First call fixes the bucket layout; later calls return the instrument.
  LatencyHistogram& histogram(std::string_view name, double lo, double hi,
                              std::size_t buckets);

  /// Value of a counter, or 0 if absent (query-side convenience).
  std::uint64_t counter_value(std::string_view name) const;
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const LatencyHistogram* find_histogram(std::string_view name) const;

  std::size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Deterministic (name-sorted) JSON snapshot:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
  ///  mean,p50,p95,p99}}}
  std::string to_json() const;

  /// Merge semantics for sharded telemetry: counters add, gauges add (treat
  /// merged gauges as additive totals), histograms fold bucket-wise via
  /// LatencyHistogram::merge_from (layouts must match). Instruments missing
  /// on this side are created. Merging per-shard registries in ascending
  /// shard id order reproduces, byte-for-byte, the JSON a single registry
  /// would have exported for the same event stream (telemetry_test.cpp).
  void merge_from(const MetricsRegistry& other);

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  template <typename T>
  using Map = std::unordered_map<std::string, std::unique_ptr<T>, StringHash,
                                 std::equal_to<>>;

  Map<Counter> counters_;
  Map<Gauge> gauges_;
  Map<LatencyHistogram> histograms_;
};

// ---------------------------------------------------------------------------
// Shared context + per-component handle

/// The shared telemetry plane: one bus + one registry. `core::VehiclePlatform`
/// owns one and binds every component it constructs; tests and benches can
/// create their own and bind components explicitly.
struct Telemetry {
  std::shared_ptr<TraceBus> bus = std::make_shared<TraceBus>();
  std::shared_ptr<MetricsRegistry> metrics = std::make_shared<MetricsRegistry>();
};

/// Per-component view of a TraceBus: a pre-interned component id plus the
/// legacy TraceSink query surface (count/find_first), so existing call sites
/// keep compiling. Defaults to a private bus; `bind` switches to a shared one.
class TraceScope {
 public:
  TraceScope() : bus_(std::make_shared<TraceBus>()) {}
  explicit TraceScope(std::string component) : TraceScope() {
    set_component(std::move(component));
  }

  /// Rebinds to `bus` (re-interning the component name there). Events
  /// already recorded on the previous bus are not migrated.
  void bind(std::shared_ptr<TraceBus> bus);

  const std::shared_ptr<TraceBus>& bus() const { return bus_; }
  TraceId component_id() const { return component_; }

  void set_component(std::string component);
  const std::string& component() const { return component_name_; }

  /// Local gate AND the bus gate; `ASECK_TRACE` callers check this before
  /// building detail strings.
  bool enabled() const { return enabled_ && bus_->enabled(); }
  void set_enabled(bool on) { enabled_ = on; }

  /// Pre-interns a kind for the TraceId fast path. Re-call after bind().
  TraceId kind(std::string_view k) { return bus_->intern(k); }

  /// Hot path: two ints + detail, no name copies.
  void record(util::SimTime at, TraceId kind_id, std::string detail = {}) {
    if (!enabled()) return;
    bus_->record(at, component_, kind_id, std::move(detail));
  }
  /// Cold path: interns the kind on the fly.
  void record(util::SimTime at, std::string_view kind, std::string detail = {}) {
    if (!enabled()) return;
    bus_->record(at, component_, bus_->intern(kind), std::move(detail));
  }

  // Legacy TraceSink-compatible query surface (delegates to the bus; with a
  // private bus this is exactly the old per-component behavior).
  std::size_t count(std::string_view component, std::string_view kind = {}) const {
    return bus_->count(component, kind);
  }
  const TraceEvent* find_first(std::string_view component,
                               std::string_view kind = {}) const {
    return bus_->find_first(component, kind);
  }
  std::size_t size() const { return bus_->size(); }
  void clear() { bus_->clear(); }

 private:
  std::shared_ptr<TraceBus> bus_;
  std::string component_name_;
  TraceId component_ = 0;
  bool enabled_ = true;
};

}  // namespace aseck::sim
