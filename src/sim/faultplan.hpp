#pragma once
// Deterministic fault-injection engine — the chaos plane of the simulator.
//
// The paper's §3 (safety/security/reliability interplay) and §6
// (extensibility challenges) argue that defenses must survive degraded
// channels; this engine is how we *generate* those degraded channels on
// demand and measure recovery. One `FaultPlan` owns a single seeded RNG and
// schedules scripted or randomized fault windows against named targets:
//
//   * frame-level channel faults (drop / corrupt / delay / duplicate) —
//     consulted by the bus models through a per-target `FaultPort`;
//   * stateful outages (ECU crash, gateway link partition, V2X radio-loss
//     burst, OTA repository unavailability) — dispatched to registered
//     handlers and reflected in the port's `down()` window.
//
// Every injection, clearance, and recovery is recorded on the shared
// TraceBus, so cause -> degradation -> recovery lands on one causal
// timeline next to the substrate's own events (bus_off, mode_degraded,
// fetch_resume, ...). `to_json()` exports the fault ledger
// deterministically: same seed, same script => bit-identical output, which
// is what `bench_e15_resilience` and the chaos-smoke CI job assert.
//
// Layering: this file lives in sim/ and knows nothing about CAN, the
// gateway, or OTA. Substrates opt in by accepting a `FaultPort*`
// (ivn::CanBus::set_fault_port, ota::Repository::set_fault_port, ...) or by
// registering a handler (`plan.on("gw.link.body", FaultKind::kPartition,
// ...)`) that calls into their own degradation API.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace aseck::sim {

enum class FaultKind {
  kFrameDrop,       // frame vanishes on the wire
  kFrameCorrupt,    // frame payload/CRC destroyed
  kFrameDelay,      // frame delivered late
  kFrameDuplicate,  // frame delivered twice (replay/echo)
  kCrash,           // component dead for the window (ECU crash-and-restart)
  kPartition,       // link partition (e.g. gateway <-> domain bus)
  kRadioLoss,       // V2X radio loss burst
  kOutage,          // service unavailability (OTA repository)
  kPowerLoss,       // power cut during a flash write (install / commit marker)
  kMalformedFrame,  // frame payload replaced by an attack-corpus entry
  kRepoSlowdown,    // service-latency inflation (overloaded/brown-out backend)
};
const char* fault_kind_name(FaultKind k);

/// True for kinds whose effect ends with the window itself (the channel is
/// healthy the instant the window clears); stateful kinds need an explicit
/// `FaultPlan::notify_recovered` from the component or the harness.
bool fault_kind_auto_recovers(FaultKind k);

/// One fault to inject against a registered target name.
struct FaultSpec {
  std::string target;                    // e.g. "can.powertrain", "ota.director"
  FaultKind kind = FaultKind::kFrameDrop;
  double probability = 1.0;              // per-frame kinds: P(frame affected)
  /// kFrameDelay: added frame latency. kRepoSlowdown: extra service latency
  /// added to every request the target handles while the window is active —
  /// a brown-out is latency inflation, not a binary outage, so a serving
  /// front walks its degradation ladder instead of flipping to down().
  /// Overlapping slowdown windows stack additively.
  util::SimTime delay = util::SimTime::zero();
  /// kPowerLoss only: cut power at exactly this write-op index (page program
  /// or header write, counted from the window start). -1 = no exact index;
  /// with `probability` < 1 each write op instead rolls Bernoulli(p) — the
  /// "Poisson-per-page" mode. Exact-index cuts fire regardless of
  /// `probability` (set probability = 0 for a purely scripted cut).
  std::int64_t page_index = -1;
  /// kMalformedFrame only: the raw bytes spliced into affected frames.
  /// Chaos campaigns point this at a frozen `attacks::ScenarioCorpus` entry
  /// so fuzzer-found malformed inputs ride live traffic windows.
  util::Bytes payload{};
};

/// Live per-target fault state, consulted by a substrate on its hot path.
/// All randomness draws from the owning plan's single seeded RNG, and a roll
/// with zero probability consumes no randomness — an idle port is free and
/// leaves the RNG stream untouched.
class FaultPort {
 public:
  bool roll_drop() { return drop_p_ > 0 && rng_->chance(drop_p_); }
  bool roll_corrupt() { return corrupt_p_ > 0 && rng_->chance(corrupt_p_); }
  bool roll_duplicate() { return dup_p_ > 0 && rng_->chance(dup_p_); }
  /// Zero when no delay fault is active (or the roll misses).
  util::SimTime roll_delay() {
    return (delay_p_ > 0 && rng_->chance(delay_p_)) ? delay_
                                                    : util::SimTime::zero();
  }
  /// Non-null when a kMalformedFrame window is active and the roll hits:
  /// the substrate should replace the outgoing frame's payload with these
  /// bytes (clamped to whatever lengths its wire format allows).
  const util::Bytes* roll_malformed() {
    return (malformed_p_ > 0 && rng_->chance(malformed_p_)) ? &malformed_
                                                            : nullptr;
  }
  /// Inside a kCrash/kPartition/kRadioLoss/kOutage window.
  bool down() const { return down_ > 0; }
  /// Summed extra service latency of all active kRepoSlowdown windows
  /// (zero when none); a serving front adds this to each request it handles.
  util::SimTime service_slowdown() const { return slowdown_; }
  /// One persistent flash write op is about to happen; true = the power cut
  /// hits this write. Counts write ops so an exact `page_index` cut lands on
  /// precisely one op; otherwise rolls Bernoulli(power_loss_p_) per op
  /// (drawing no randomness when the probability is zero).
  bool consume_power_loss() {
    const std::uint64_t idx = write_ops_++;
    if (power_cut_at_ >= 0 && static_cast<std::uint64_t>(power_cut_at_) == idx) {
      return true;
    }
    return power_loss_p_ > 0 && rng_->chance(power_loss_p_);
  }
  /// Write ops observed since the last kPowerLoss window began.
  std::uint64_t write_ops() const { return write_ops_; }
  /// Any fault currently armed on this port.
  bool active() const {
    return down_ > 0 || drop_p_ > 0 || corrupt_p_ > 0 || dup_p_ > 0 ||
           delay_p_ > 0 || power_loss_p_ > 0 || power_cut_at_ >= 0 ||
           malformed_p_ > 0 || slowdown_.ns > 0;
  }

 private:
  friend class FaultPlan;
  explicit FaultPort(util::Rng& rng) : rng_(&rng) {}
  double drop_p_ = 0, corrupt_p_ = 0, dup_p_ = 0, delay_p_ = 0;
  double malformed_p_ = 0;
  util::Bytes malformed_;
  double power_loss_p_ = 0;
  std::int64_t power_cut_at_ = -1;  // exact write-op index; -1 = disabled
  std::uint64_t write_ops_ = 0;    // write ops seen in the current window
  util::SimTime delay_ = util::SimTime::zero();
  util::SimTime slowdown_ = util::SimTime::zero();  // summed active inflation
  int down_ = 0;  // nesting count of overlapping stateful windows
  util::Rng* rng_;
};

/// Ledger entry for one injected fault.
struct FaultRecord {
  std::uint64_t id = 0;
  FaultSpec spec;
  util::SimTime injected_at = util::SimTime::zero();
  util::SimTime cleared_at = util::SimTime::zero();
  util::SimTime recovered_at = util::SimTime::zero();
  bool injected = false;  // begin event fired
  bool cleared = false;
  bool recovered = false;
  /// Injection -> recovery (zero until recovered).
  util::SimTime recovery_latency() const {
    return recovered ? recovered_at - injected_at : util::SimTime::zero();
  }
};

/// Result schema shared by bus-level fault campaigns and the safety layer's
/// Monte-Carlo ASIL campaigns (`safety::run_fault_campaign`): one seeded RNG
/// feeds both, and both report failures per named function/target.
struct FaultCampaignResult {
  std::uint64_t trials = 0;
  std::map<std::string, std::uint64_t> function_failures;
  double failure_rate(const std::string& fn) const {
    const auto it = function_failures.find(fn);
    return trials == 0 || it == function_failures.end()
               ? 0.0
               : static_cast<double>(it->second) / static_cast<double>(trials);
  }
};

class FaultPlan {
 public:
  FaultPlan(Scheduler& sched, std::uint64_t seed);
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  std::uint64_t seed() const { return seed_; }
  /// Current sim time of the driving scheduler (for event annotations by
  /// consumers that do not hold the scheduler themselves).
  SimTime now() const { return sched_.now(); }
  /// The plan's single RNG stream; all injection randomness flows through it.
  util::Rng& rng() { return rng_; }
  /// Independent child stream (e.g. for a safety Monte-Carlo campaign that
  /// must not perturb the bus-level injection sequence).
  util::Rng fork_rng() { return rng_.fork(); }

  /// Per-target channel-fault state; created on first use. The returned
  /// reference is stable for the plan's lifetime, so substrates may cache it.
  FaultPort& port(const std::string& target);

  /// Handler invoked at fault begin (`active=true`) and window end
  /// (`active=false`). Multiple handlers per (target, kind) are allowed.
  using Handler = std::function<void(const FaultSpec&, bool active)>;
  void on(const std::string& target, FaultKind kind, Handler h);

  /// Schedules `spec` active over [at, at+duration). Returns the fault id.
  std::uint64_t window(util::SimTime at, util::SimTime duration, FaultSpec spec);

  /// Randomized campaign: Poisson fault arrivals at `rate_hz` over
  /// [start, horizon), each a window of `duration`, the spec drawn uniformly
  /// from `specs`. Deterministic given the plan's seed. Returns fault ids.
  std::vector<std::uint64_t> random_campaign(util::SimTime start,
                                             util::SimTime horizon,
                                             double rate_hz,
                                             util::SimTime duration,
                                             const std::vector<FaultSpec>& specs);

  /// Marks every not-yet-recovered fault on `target` as recovered now.
  /// Substrate adapters or the harness call this when the component is
  /// observed healthy again (OTA fetch succeeded, gateway back to normal
  /// mode, ECU rebooted, ...). Returns the number of faults marked.
  std::size_t notify_recovered(const std::string& target);

  const std::vector<FaultRecord>& records() const { return records_; }
  /// Faults whose begin event has fired (scheduled-only windows excluded).
  std::size_t injected() const;
  std::size_t recovered() const;
  /// Injected faults never marked recovered — the chaos-smoke CI gate.
  std::size_t unrecovered() const { return injected() - recovered(); }

  /// Deterministic export of the fault ledger: same seed + same script =>
  /// byte-identical output (no wall-clock anywhere).
  std::string to_json() const;

  sim::TraceScope& trace() { return trace_; }
  /// Rebinds trace events and counters onto a shared telemetry plane, so
  /// inject/clear/recover events interleave with substrate events on one
  /// causal timeline.
  void bind_telemetry(const Telemetry& t);

 private:
  void apply(const FaultSpec& spec, bool begin);
  void begin_fault(std::uint64_t id);
  void end_fault(std::uint64_t id);
  void wire_telemetry();

  Scheduler& sched_;
  std::uint64_t seed_;
  util::Rng rng_;
  std::map<std::string, std::unique_ptr<FaultPort>> ports_;
  struct HandlerKey {
    std::string target;
    FaultKind kind;
    bool operator<(const HandlerKey& o) const {
      if (target != o.target) return target < o.target;
      return kind < o.kind;
    }
  };
  std::map<HandlerKey, std::vector<Handler>> handlers_;
  std::vector<FaultRecord> records_;  // id == index + 1
  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_injected_ = nullptr;
  sim::Counter* c_cleared_ = nullptr;
  sim::Counter* c_recovered_ = nullptr;
  sim::LatencyHistogram* h_recovery_ms_ = nullptr;
  sim::TraceId k_inject_ = 0, k_clear_ = 0, k_recovered_ = 0, k_campaign_ = 0;
};

}  // namespace aseck::sim
