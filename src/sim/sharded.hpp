#pragma once
// Sharded, thread-parallel, bit-deterministic world simulation.
//
// The single-threaded `sim::Scheduler` caps every experiment at a few
// hundred interacting entities (E2/E17 saturate near 500 V2X neighbors).
// `ShardedWorld` partitions the world into a uniform grid of spatial cells
// (*shards*); each shard owns a private event loop — its own `Scheduler`,
// `Telemetry` plane (TraceBus + MetricsRegistry), and RNG stream — and the
// set of shards is advanced in fixed *epochs* on a fork-join thread pool.
//
// Determinism contract (the reason an N-thread run is bit-identical to a
// 1-thread run of the same seed):
//
//  1. Within an epoch a shard's events touch only that shard's state.
//     Cross-shard effects go through `Shard::post`, which appends to the
//     *sending* shard's outbox — never to shared state.
//  2. A barrier ends the epoch. Outboxes are then frozen (double-buffered:
//     handlers that post during delivery write to the next epoch's outbox)
//     and merged in a seed- and thread-count-independent canonical order:
//     for each destination shard, messages from its <=9 neighboring source
//     shards (including itself) in ascending source shard id, each source's
//     messages in post order; then messages from non-neighbor sources in
//     the same (source id, post order) key. Neighbor delivery itself runs
//     in parallel (each destination is drained by exactly one thread);
//     non-neighbor ("far") traffic — cloud/OTA-style messages — is rare
//     and merged serially.
//  3. A message posted in epoch [t, t+E) is handled no earlier than the
//     epoch boundary t+E (conservative synchronization with lookahead E):
//     handlers with deliver_at <= t+E run at the boundary, before any
//     scheduler event of the next epoch; later deliver_at values are
//     scheduled into the destination's queue (FIFO-stable, see
//     scheduler.hpp).
//  4. Per-shard RNG streams are derived from the master seed by shard id
//     (`util::Rng::for_stream`), so shard-local randomness never depends
//     on the interleaving of other shards.
//
// Telemetry stays exactly reproducible across thread counts because each
// shard records into its own registry/bus and `merge_metrics` folds them in
// ascending shard id order (using `MetricsRegistry::merge_from`).

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "sim/threadpool.hpp"
#include "util/rng.hpp"
#include "util/smallfn.hpp"

namespace aseck::sim {

struct ShardedWorldConfig {
  double width_m = 1000.0;
  double height_m = 1000.0;
  /// Shard cell edge. For interaction models (V2X radio) choose
  /// cell_m >= interaction range so any interaction crosses at most one
  /// cell boundary and the 8-neighbor epoch batches suffice.
  double cell_m = 500.0;
  /// Epoch length = cross-shard synchronization lookahead.
  SimTime epoch = SimTime::from_ms(100);
  /// Worker threads including the caller; 1 = strictly single-threaded.
  unsigned threads = 1;
  std::uint64_t seed = 1;
  /// Per-shard TraceBus ring capacity (0 = unbounded).
  std::size_t trace_capacity = 256;
};

class ShardedWorld;

/// One spatial cell: a private event loop plus the cross-shard mailbox.
/// Not constructible by users; obtained from `ShardedWorld::shard`.
class Shard {
 public:
  /// Cross-shard message handler. 160 bytes of inline capture fits an entity
  /// migration (the largest payload in the city model — a CityVehicle now
  /// carries its rotation-beacon ECDSA signature for the real-crypto receive
  /// path) without heap allocation on the per-message hot path.
  using Handler = util::SmallFn<void(Shard&), 160>;

  Scheduler& sched() { return sched_; }
  const Scheduler& sched() const { return sched_; }
  Telemetry& telemetry() { return telemetry_; }
  MetricsRegistry& metrics() { return *telemetry_.metrics; }
  TraceBus& trace_bus() { return *telemetry_.bus; }
  util::Rng& rng() { return rng_; }

  std::uint32_t index() const { return index_; }
  std::uint32_t col() const { return col_; }
  std::uint32_t row() const { return row_; }
  ShardedWorld& world() { return world_; }

  /// Posts `fn` to shard `to`; it runs there at the next epoch boundary
  /// (or at `deliver_at` if that is later). May be called from shard
  /// events and from message handlers; a handler's posts are delivered at
  /// the *following* boundary. Only the owning shard's thread may call
  /// this (i.e. call it from events/handlers running on this shard).
  void post(std::uint32_t to, SimTime deliver_at, Handler fn);

  /// Messages handled by this shard so far.
  std::uint64_t messages_in() const { return delivered_; }

 private:
  friend class ShardedWorld;
  Shard(ShardedWorld& world, std::uint32_t index, std::uint32_t col,
        std::uint32_t row, std::uint64_t master_seed,
        std::size_t trace_capacity);

  struct Msg {
    SimTime at;
    Handler fn;
  };
  struct FarMsg {
    std::uint32_t to;
    SimTime at;
    Handler fn;
  };

  ShardedWorld& world_;
  std::uint32_t index_, col_, row_;
  Scheduler sched_;
  Telemetry telemetry_;
  util::Rng rng_;
  // Outbox slot k = (drow+1)*3 + (dcol+1) holds messages for the neighbor
  // at that offset (slot 4 = self). Double-buffered across the barrier.
  std::array<std::vector<Msg>, 9> out_, pending_;
  std::vector<FarMsg> far_out_, far_pending_;
  std::uint64_t delivered_ = 0;
};

class ShardedWorld {
 public:
  explicit ShardedWorld(ShardedWorldConfig cfg);

  const ShardedWorldConfig& config() const { return cfg_; }
  std::uint32_t cols() const { return cols_; }
  std::uint32_t rows() const { return rows_; }
  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  Shard& shard(std::uint32_t i) { return *shards_[i]; }
  const Shard& shard(std::uint32_t i) const { return *shards_[i]; }

  /// Shard owning position (x, y); coordinates clamp to the world box.
  std::uint32_t shard_index_at(double x, double y) const;

  /// World time: the last completed epoch boundary.
  SimTime now() const { return now_; }
  std::uint64_t epochs() const { return epochs_; }
  /// Total cross-shard messages handled (sum over shards, deterministic).
  std::uint64_t messages() const;

  /// Advances every shard to `until` in epoch steps with barrier merges.
  void run_until(SimTime until);

  /// Folds every shard's metrics into `into` in ascending shard id order.
  void merge_metrics(MetricsRegistry& into) const;
  /// Deterministic JSON of the merged registries (same bytes for any
  /// thread count).
  std::string merged_metrics_json() const;

 private:
  using Msg = Shard::Msg;
  void deliver_neighbors(Shard& dst, SimTime end);
  void deliver_far(SimTime end);
  static void deliver(Shard& dst, Msg&& m, SimTime end);

  ShardedWorldConfig cfg_;
  std::uint32_t cols_, rows_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ThreadPool pool_;
  SimTime now_ = SimTime::zero();
  std::uint64_t epochs_ = 0;
};

}  // namespace aseck::sim
