#include "sim/scheduler.hpp"

#include <stdexcept>

namespace aseck::sim {

EventId Scheduler::schedule_at(SimTime at, EventFn fn) {
  if (at < now_) throw std::invalid_argument("Scheduler: cannot schedule in the past");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Item{at, seq, std::move(fn)});
  live_.insert(seq);
  return EventId{seq};
}

EventId Scheduler::schedule_after(SimTime delay, EventFn fn) {
  SimTime at = now_;
  at.ns = delay.ns > UINT64_MAX - now_.ns ? UINT64_MAX : now_.ns + delay.ns;
  return schedule_at(at, std::move(fn));
}

void Scheduler::cancel(EventId id) {
  if (!id.valid()) return;
  live_.erase(id.seq);  // no-op if already fired or cancelled
}

bool Scheduler::pop_next(Item& out) {
  while (!queue_.empty()) {
    // priority_queue::top is const; move via const_cast is the standard idiom
    // here and safe because we pop immediately.
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    if (live_.erase(item.seq) == 0) continue;  // cancelled
    out = std::move(item);
    return true;
  }
  return false;
}

bool Scheduler::step() {
  Item item;
  if (!pop_next(item)) return false;
  now_ = item.at;
  ++executed_;
  item.fn();
  return true;
}

std::size_t Scheduler::run(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

std::size_t Scheduler::run_until(SimTime until) {
  std::size_t n = 0;
  Item item;
  while (!queue_.empty()) {
    if (queue_.top().at > until) break;
    if (!pop_next(item)) break;
    if (item.at > until) {
      // Rare: popped a live item past the horizon (head was cancelled).
      // pop_next removed it from live_; restore before re-queueing.
      live_.insert(item.seq);
      queue_.push(std::move(item));
      break;
    }
    now_ = item.at;
    ++executed_;
    item.fn();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

PeriodicTask::PeriodicTask(Scheduler& sched, SimTime period, EventFn fn,
                           SimTime first_delay)
    : sched_(sched),
      period_(period),
      fn_(std::move(fn)),
      alive_(std::make_shared<bool>(true)) {
  if (period.ns == 0) throw std::invalid_argument("PeriodicTask: zero period");
  arm(first_delay);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() { *alive_ = false; }

void PeriodicTask::arm(SimTime delay) {
  auto alive = alive_;
  sched_.schedule_in(delay, [this, alive] {
    if (!*alive) return;
    fn_();
    if (*alive) arm(period_);
  });
}

}  // namespace aseck::sim
