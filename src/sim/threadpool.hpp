#pragma once
// Fixed-size worker pool with a fork-join `parallel_for`.
//
// Built for the sharded world's epoch loop: the coordinator thread calls
// `parallel_for(shards, fn)` once per epoch phase and participates in the
// work itself. Indices are claimed from an atomic counter, so which thread
// runs which shard is nondeterministic — the sharded world is designed so
// that this assignment can never affect results (shards touch only their
// own state between barriers).
//
// With `threads <= 1` no worker threads are created and `parallel_for`
// degenerates to an inline loop on the caller: the 1-thread configuration
// of any sharded run is genuinely single-threaded.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aseck::sim {

class ThreadPool {
 public:
  /// `threads` counts the caller: a pool of 4 spawns 3 workers.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs fn(0..n-1), each index exactly once, on the caller plus the
  /// workers; returns when all n calls have finished. The first exception
  /// thrown by any fn invocation is rethrown on the caller after the join.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void work();
  void worker_loop();

  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  // job_/job_n_ are written before the release store of next_ and read after
  // an acquire RMW on next_, so claimants always observe the current job; a
  // stray late reader from the previous job sees consistent stale values.
  std::atomic<const std::function<void(std::size_t)>*> job_{nullptr};
  std::atomic<std::size_t> job_n_{0};
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> completed_{0};
  std::uint64_t gen_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  std::vector<std::thread> workers_;
};

}  // namespace aseck::sim
