#pragma once
// Structured event tracing for simulations. Components append records; tests
// and reports query them. Cheap when disabled.

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace aseck::sim {

struct TraceRecord {
  util::SimTime at;
  std::string component;  // e.g. "gateway", "can0", "ecu.brake"
  std::string kind;       // e.g. "tx", "rx", "drop", "alert", "attack"
  std::string detail;
};

class TraceSink {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(util::SimTime at, std::string component, std::string kind,
              std::string detail = {});

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Number of records matching component and/or kind (empty = wildcard).
  std::size_t count(std::string_view component, std::string_view kind = {}) const;
  /// First matching record, or nullptr.
  const TraceRecord* find_first(std::string_view component,
                                std::string_view kind = {}) const;

 private:
  bool enabled_ = true;
  std::vector<TraceRecord> records_;
};

}  // namespace aseck::sim
