#pragma once
// Structured event tracing for simulations. Components append records; tests
// and reports query them. Cheap when disabled.
//
// NOTE: `TraceSink` is the legacy per-component sink kept for API
// compatibility and as the micro-benchmark baseline; new code (and every
// substrate in this library) records through the shared
// `sim::TraceBus`/`sim::TraceScope` in sim/telemetry.hpp instead.

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace aseck::sim {

struct TraceRecord {
  util::SimTime at;
  std::string component;  // e.g. "gateway", "can0", "ecu.brake"
  std::string kind;       // e.g. "tx", "rx", "drop", "alert", "attack"
  std::string detail;
};

class TraceSink {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(util::SimTime at, std::string component, std::string kind,
              std::string detail = {});

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Number of records matching component and/or kind (empty = wildcard).
  std::size_t count(std::string_view component, std::string_view kind = {}) const;
  /// First matching record, or nullptr.
  const TraceRecord* find_first(std::string_view component,
                                std::string_view kind = {}) const;

 private:
  bool enabled_ = true;
  std::vector<TraceRecord> records_;
};

}  // namespace aseck::sim

/// Records on any sink-like object (TraceSink, TraceScope, TraceBus) without
/// evaluating the record arguments — in particular detail-string
/// concatenations — when the sink is disabled. Use at hot call sites.
#define ASECK_TRACE(sink, ...)                      \
  do {                                              \
    if ((sink).enabled()) (sink).record(__VA_ARGS__); \
  } while (0)
