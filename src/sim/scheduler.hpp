#pragma once
// Discrete-event simulation kernel.
//
// Every network, ECU, and attacker model in the library is driven by a
// `Scheduler` — historically one global instance, now also one per shard in
// the sharded world (sim/sharded.hpp).
//
// DETERMINISM CONTRACT: events are totally ordered by the key
// (time, seq), where `seq` is the value of a monotonically increasing
// counter assigned at schedule_at/schedule_in/schedule_after time (one
// counter per Scheduler; cancelled events still consume their seq). Events
// at equal timestamps therefore execute in exact scheduling order (stable
// FIFO tie-break), and the firing order is a pure function of the sequence
// of schedule/cancel calls — independent of wall clock, thread count, or
// address-space layout. cancel() never perturbs the order of surviving
// events: it only removes the id from the live set, so any interleaving of
// cancel + re-schedule produces the order given by the surviving (time,
// seq) keys (regression-tested in sim_test.cpp). Everything that claims
// bit-reproducibility — the chaos plane, the epoch merges of the sharded
// world, every CI determinism diff — leans on this contract; do not weaken
// it.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace aseck::sim {

using util::SimTime;

using EventFn = std::function<void()>;

/// Handle used to cancel a scheduled event.
struct EventId {
  std::uint64_t seq = 0;
  bool valid() const { return seq != 0; }
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, EventFn fn);
  /// Schedules `fn` to run `delay` after now().
  EventId schedule_in(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }
  /// `now()`-safe variant for retry/backoff timers: evaluates now() at call
  /// time, saturates instead of wrapping on `now + delay` overflow (an
  /// exponential backoff can overflow the ns clock), and is safe to call
  /// from inside a running event with zero delay — the new event lands
  /// *after* already-queued events at the same timestamp (stable FIFO), so a
  /// zero-delay self-rescheduling chain interleaves instead of starving the
  /// queue.
  EventId schedule_after(SimTime delay, EventFn fn);
  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Runs events until the queue is empty or `limit` events executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);
  /// Runs events with timestamp <= `until` (clock advances to `until`).
  std::size_t run_until(SimTime until);
  /// Executes exactly one event if available. Returns false if queue empty.
  bool step();

  bool empty() const { return live_.empty(); }
  std::size_t pending() const { return live_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Item {
    SimTime at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.at.ns != b.at.ns) return a.at.ns > b.at.ns;
      return a.seq > b.seq;
    }
  };

  bool pop_next(Item& out);

  SimTime now_ = SimTime::zero();
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  // Seqs scheduled but not yet fired or cancelled. Cancel erases; pop erases
  // on dequeue — so cancelling a fired/cancelled id is a true O(1) no-op and
  // pending()/empty() never drift.
  std::unordered_set<std::uint64_t> live_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
};

/// Periodic task helper: reschedules itself every `period` until cancelled
/// via the returned shared flag.
class PeriodicTask {
 public:
  PeriodicTask(Scheduler& sched, SimTime period, EventFn fn, SimTime first_delay);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const { return *alive_; }

 private:
  void arm(SimTime delay);
  Scheduler& sched_;
  SimTime period_;
  EventFn fn_;
  std::shared_ptr<bool> alive_;
};

}  // namespace aseck::sim
