#include "sim/trace.hpp"

namespace aseck::sim {

void TraceSink::record(util::SimTime at, std::string component, std::string kind,
                       std::string detail) {
  if (!enabled_) return;
  records_.push_back(TraceRecord{at, std::move(component), std::move(kind),
                                 std::move(detail)});
}

std::size_t TraceSink::count(std::string_view component, std::string_view kind) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (!component.empty() && r.component != component) continue;
    if (!kind.empty() && r.kind != kind) continue;
    ++n;
  }
  return n;
}

const TraceRecord* TraceSink::find_first(std::string_view component,
                                         std::string_view kind) const {
  for (const auto& r : records_) {
    if (!component.empty() && r.component != component) continue;
    if (!kind.empty() && r.kind != kind) continue;
    return &r;
  }
  return nullptr;
}

}  // namespace aseck::sim
