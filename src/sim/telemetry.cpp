#include "sim/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>

namespace aseck::sim {

// ---------------------------------------------------------------------------
// TraceBus

TraceBus::TraceBus() {
  // Id 0 is the empty/unknown name.
  auto [it, _] = ids_.emplace(std::string{}, 0);
  names_.push_back(&it->first);
}

TraceId TraceBus::intern(std::string_view s) {
  if (s.empty()) return 0;
  const auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  const TraceId id = static_cast<TraceId>(names_.size());
  const auto [ins, _] = ids_.emplace(std::string(s), id);
  names_.push_back(&ins->first);
  return id;
}

TraceId TraceBus::lookup(std::string_view s) const {
  const auto it = ids_.find(s);
  return it == ids_.end() ? 0 : it->second;
}

const std::string& TraceBus::name(TraceId id) const {
  static const std::string kEmpty;
  if (id >= names_.size()) return kEmpty;
  return *names_[id];
}

void TraceBus::set_capacity(std::size_t cap) {
  if (cap == capacity_) return;
  // Linearize the current window oldest-first, then keep the newest `cap`.
  std::vector<TraceEvent> linear;
  linear.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    linear.push_back(std::move(const_cast<TraceEvent&>(event(i))));
  }
  if (cap != 0 && linear.size() > cap) {
    evicted_ += linear.size() - cap;
    linear.erase(linear.begin(),
                 linear.begin() + static_cast<std::ptrdiff_t>(linear.size() - cap));
  }
  events_ = std::move(linear);
  head_ = 0;
  capacity_ = cap;
}

void TraceBus::record(util::SimTime at, TraceId component, TraceId kind,
                      std::string detail) {
  if (!enabled_) return;
  TraceEvent ev{at, next_seq_++, component, kind, std::move(detail)};
  ++total_recorded_;
  for (const Sub& s : subscribers_) s.fn(ev);
  if (capacity_ == 0 || events_.size() < capacity_) {
    events_.push_back(std::move(ev));
  } else {
    events_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
    ++evicted_;
  }
}

const TraceEvent& TraceBus::event(std::size_t i) const {
  if (capacity_ != 0 && events_.size() == capacity_) {
    return events_[(head_ + i) % capacity_];
  }
  return events_[i];
}

void TraceBus::clear() {
  events_.clear();
  head_ = 0;
  evicted_ = 0;
  total_recorded_ = 0;
}

std::size_t TraceBus::count(std::string_view component,
                            std::string_view kind) const {
  TraceId cid = 0, kid = 0;
  if (!component.empty() && (cid = lookup(component)) == 0) return 0;
  if (!kind.empty() && (kid = lookup(kind)) == 0) return 0;
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (cid != 0 && e.component != cid) continue;
    if (kid != 0 && e.kind != kid) continue;
    ++n;
  }
  return n;
}

const TraceEvent* TraceBus::find_first(std::string_view component,
                                       std::string_view kind) const {
  TraceId cid = 0, kid = 0;
  if (!component.empty() && (cid = lookup(component)) == 0) return nullptr;
  if (!kind.empty() && (kid = lookup(kind)) == 0) return nullptr;
  for (std::size_t i = 0; i < size(); ++i) {
    const TraceEvent& e = event(i);
    if (cid != 0 && e.component != cid) continue;
    if (kid != 0 && e.kind != kid) continue;
    return &e;
  }
  return nullptr;
}

std::uint64_t TraceBus::subscribe(Subscriber fn) {
  const std::uint64_t token = next_token_++;
  subscribers_.push_back(Sub{token, std::move(fn)});
  return token;
}

void TraceBus::unsubscribe(std::uint64_t token) {
  subscribers_.erase(
      std::remove_if(subscribers_.begin(), subscribers_.end(),
                     [token](const Sub& s) { return s.token == token; }),
      subscribers_.end());
}

std::string TraceBus::timeline(std::string_view component,
                               std::string_view kind) const {
  TraceId cid = 0, kid = 0;
  if (!component.empty() && (cid = lookup(component)) == 0) return {};
  if (!kind.empty() && (kid = lookup(kind)) == 0) return {};
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < size(); ++i) {
    const TraceEvent& e = event(i);
    if (cid != 0 && e.component != cid) continue;
    if (kid != 0 && e.kind != kid) continue;
    std::snprintf(buf, sizeof buf, "#%llu @%.3fus ",
                  static_cast<unsigned long long>(e.seq), e.at.us());
    out += buf;
    out += name(e.component);
    out += ' ';
    out += name(e.kind);
    if (!e.detail.empty()) {
      out += ' ';
      out += e.detail;
    }
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// LatencyHistogram / ScopedTimer

LatencyHistogram::LatencyHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument("LatencyHistogram: bad bucket layout");
  }
}

void LatencyHistogram::record(double x) {
  if (std::isnan(x)) {
    // NaN fails both range guards and casting it to an integer bucket index
    // is UB; count it separately instead of binning.
    ++nan_;
    return;
  }
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  double idx = (x - lo_) / w;
  if (idx < 0) idx = 0;
  std::size_t b = static_cast<std::size_t>(idx);
  if (b >= counts_.size()) b = counts_.size() - 1;
  ++counts_[b];
}

double LatencyHistogram::bucket_low(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i);
}

void LatencyHistogram::merge_from(const LatencyHistogram& o) {
  if (o.lo_ != lo_ || o.hi_ != hi_ || o.counts_.size() != counts_.size()) {
    throw std::invalid_argument("LatencyHistogram::merge_from: layout mismatch");
  }
  if (o.count_ != 0) {
    if (count_ == 0) {
      min_ = o.min_;
      max_ = o.max_;
    } else {
      min_ = std::min(min_, o.min_);
      max_ = std::max(max_, o.max_);
    }
  }
  count_ += o.count_;
  nan_ += o.nan_;
  sum_ += o.sum_;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  const double target = p / 100.0 * static_cast<double>(count_);
  double cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0 ? 0 : (target - cum) / static_cast<double>(counts_[i]);
      return bucket_low(i) + frac * (bucket_high(i) - bucket_low(i));
    }
    cum = next;
  }
  return max_;
}

namespace {
std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ScopedTimer::ScopedTimer(LatencyHistogram& h) : h_(h), t0_ns_(wall_ns()) {}

ScopedTimer::~ScopedTimer() {
  h_.record(static_cast<double>(wall_ns() - t0_ns_) / 1e3);  // microseconds
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                             double hi, std::size_t buckets) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<LatencyHistogram>(lo, hi, buckets))
              .first->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const Counter* c = find_counter(name);
  return c ? c->value() : 0;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const LatencyHistogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).inc(c->value());
  for (const auto& [name, g] : other.gauges_) gauge(name).add(g->value());
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h->low(), h->high(), h->buckets()).merge_from(*h);
  }
}

namespace {
void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}
std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}
}  // namespace

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  {
    std::map<std::string_view, const Counter*> sorted;
    for (const auto& [k, v] : counters_) sorted[k] = v.get();
    bool first = true;
    for (const auto& [k, v] : sorted) {
      if (!first) out += ',';
      first = false;
      out += '"';
      append_json_escaped(out, std::string(k));
      out += "\":" + std::to_string(v->value());
    }
  }
  out += "},\"gauges\":{";
  {
    std::map<std::string_view, const Gauge*> sorted;
    for (const auto& [k, v] : gauges_) sorted[k] = v.get();
    bool first = true;
    for (const auto& [k, v] : sorted) {
      if (!first) out += ',';
      first = false;
      out += '"';
      append_json_escaped(out, std::string(k));
      out += "\":" + fmt_double(v->value());
    }
  }
  out += "},\"histograms\":{";
  {
    std::map<std::string_view, const LatencyHistogram*> sorted;
    for (const auto& [k, v] : histograms_) sorted[k] = v.get();
    bool first = true;
    for (const auto& [k, v] : sorted) {
      if (!first) out += ',';
      first = false;
      out += '"';
      append_json_escaped(out, std::string(k));
      out += "\":{\"count\":" + std::to_string(v->count());
      out += ",\"sum\":" + fmt_double(v->sum());
      out += ",\"min\":" + fmt_double(v->min());
      out += ",\"max\":" + fmt_double(v->max());
      out += ",\"mean\":" + fmt_double(v->mean());
      out += ",\"p50\":" + fmt_double(v->percentile(50));
      out += ",\"p95\":" + fmt_double(v->percentile(95));
      out += ",\"p99\":" + fmt_double(v->percentile(99));
      out += '}';
    }
  }
  out += "}}";
  return out;
}

// ---------------------------------------------------------------------------
// TraceScope

void TraceScope::bind(std::shared_ptr<TraceBus> bus) {
  bus_ = std::move(bus);
  component_ = component_name_.empty() ? 0 : bus_->intern(component_name_);
}

void TraceScope::set_component(std::string component) {
  component_name_ = std::move(component);
  component_ = component_name_.empty() ? 0 : bus_->intern(component_name_);
}

}  // namespace aseck::sim
