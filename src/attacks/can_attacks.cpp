#include "attacks/can_attacks.hpp"

namespace aseck::attacks {

InjectionAttacker::InjectionAttacker(Scheduler& sched, CanBus& bus,
                                     std::string name, std::uint32_t spoofed_id,
                                     SimTime period, PayloadFn payload)
    : CanNode(std::move(name)),
      sched_(sched),
      bus_(bus),
      id_(spoofed_id),
      period_(period),
      payload_(std::move(payload)) {
  bus_.attach(this);
}

void InjectionAttacker::start() {
  task_ = std::make_unique<sim::PeriodicTask>(
      sched_, period_,
      [this] {
        CanFrame f;
        f.id = id_;
        f.data = payload_ ? payload_(injected_) : util::Bytes(8, 0);
        if (bus_.send(this, std::move(f))) ++injected_;
      },
      SimTime::zero());
}

void InjectionAttacker::stop() { task_.reset(); }

FloodAttacker::FloodAttacker(Scheduler& sched, CanBus& bus, std::string name,
                             std::uint32_t flood_id, std::size_t queue_depth)
    : CanNode(std::move(name)),
      sched_(sched),
      bus_(bus),
      flood_id_(flood_id),
      queue_depth_(queue_depth) {
  bus_.attach(this);
}

void FloodAttacker::start() {
  running_ = true;
  refill();
}

void FloodAttacker::stop() { running_ = false; }

void FloodAttacker::refill() {
  if (!running_) return;
  // Keep the queue primed so the attacker contends in every arbitration.
  for (std::size_t i = 0; i < queue_depth_; ++i) {
    CanFrame f;
    f.id = flood_id_;
    f.data = util::Bytes(8, 0xFF);
    if (bus_.send(this, std::move(f))) ++sent_;
  }
}

void FloodAttacker::on_tx_done(const CanFrame&, SimTime) {
  if (running_) {
    CanFrame f;
    f.id = flood_id_;
    f.data = util::Bytes(8, 0xFF);
    if (bus_.send(this, std::move(f))) ++sent_;
  }
}

ReplayAttacker::ReplayAttacker(Scheduler& sched, CanBus& bus, std::string name,
                               SimTime record_window, SimTime replay_period)
    : CanNode(std::move(name)),
      sched_(sched),
      bus_(bus),
      record_window_(record_window),
      replay_period_(replay_period) {
  bus_.attach(this);
}

void ReplayAttacker::start() {
  recording_ = true;
  started_at_ = sched_.now();
  sched_.schedule_in(record_window_, [this] {
    recording_ = false;
    replaying_ = true;
    task_ = std::make_unique<sim::PeriodicTask>(
        sched_, replay_period_, [this] { replay_next(); }, SimTime::zero());
  });
}

void ReplayAttacker::stop() {
  recording_ = false;
  replaying_ = false;
  task_.reset();
}

void ReplayAttacker::on_frame(const CanFrame& frame, SimTime) {
  if (recording_) recorded_.push_back(frame);
}

void ReplayAttacker::replay_next() {
  if (!replaying_ || recorded_.empty()) return;
  CanFrame f = recorded_[replay_idx_ % recorded_.size()];
  ++replay_idx_;
  if (bus_.send(this, std::move(f))) ++replayed_;
}

FuzzAttacker::FuzzAttacker(Scheduler& sched, CanBus& bus, std::string name,
                           SimTime period, std::uint64_t seed)
    : CanNode(std::move(name)), sched_(sched), bus_(bus), period_(period),
      rng_(seed) {
  bus_.attach(this);
}

void FuzzAttacker::start() {
  task_ = std::make_unique<sim::PeriodicTask>(
      sched_, period_,
      [this] {
        CanFrame f;
        f.id = static_cast<std::uint32_t>(rng_.uniform(0x800));
        f.data = rng_.bytes(rng_.uniform(9));
        if (bus_.send(this, std::move(f))) ++sent_;
      },
      SimTime::zero());
}

void FuzzAttacker::stop() { task_.reset(); }

BusOffAttacker::BusOffAttacker(CanBus& bus, std::string victim_name,
                               std::uint32_t victim_id)
    : bus_(bus), victim_name_(std::move(victim_name)), victim_id_(victim_id) {}

BusOffAttacker::~BusOffAttacker() { disarm(); }

void BusOffAttacker::arm() {
  armed_ = true;
  bus_.set_error_injector([this](const CanFrame& f, const CanNode& tx) {
    if (armed_ && tx.name() == victim_name_ && f.id == victim_id_) {
      ++corruptions_;
      return true;
    }
    return false;
  });
}

void BusOffAttacker::disarm() {
  armed_ = false;
  bus_.set_error_injector(nullptr);
}

}  // namespace aseck::attacks
