#pragma once
// Scripted CAN attackers implementing the paper's Section 4 attack modes:
// message injection/spoofing, DoS flooding, replay, fuzzing, and the
// bus-off attack (driving a victim's error counters past 255).

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "ivn/can.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace aseck::attacks {

using ivn::CanBus;
using ivn::CanFrame;
using ivn::CanNode;
using sim::Scheduler;
using sim::SimTime;

/// Periodically injects frames with a fixed (spoofed) id and payload
/// generator. Models a compromised ECU impersonating another.
class InjectionAttacker : public CanNode {
 public:
  using PayloadFn = std::function<util::Bytes(std::uint64_t seq)>;
  InjectionAttacker(Scheduler& sched, CanBus& bus, std::string name,
                    std::uint32_t spoofed_id, SimTime period, PayloadFn payload);

  void start();
  void stop();
  std::uint64_t injected() const { return injected_; }
  void on_frame(const CanFrame&, SimTime) override {}

 private:
  Scheduler& sched_;
  CanBus& bus_;
  std::uint32_t id_;
  SimTime period_;
  PayloadFn payload_;
  std::uint64_t injected_ = 0;
  std::unique_ptr<sim::PeriodicTask> task_;
};

/// Saturates the bus with highest-priority frames (id 0): a DoS that wins
/// every arbitration round, starving legitimate traffic.
class FloodAttacker : public CanNode {
 public:
  FloodAttacker(Scheduler& sched, CanBus& bus, std::string name,
                std::uint32_t flood_id = 0x000, std::size_t queue_depth = 4);

  void start();
  void stop();
  std::uint64_t sent() const { return sent_; }
  void on_frame(const CanFrame&, SimTime) override {}
  void on_tx_done(const CanFrame&, SimTime) override;

 private:
  void refill();
  Scheduler& sched_;
  CanBus& bus_;
  std::uint32_t flood_id_;
  std::size_t queue_depth_;
  bool running_ = false;
  std::uint64_t sent_ = 0;
};

/// Records frames for `record_window`, then replays them verbatim. Defeated
/// by SecOC freshness, devastating without it.
class ReplayAttacker : public CanNode {
 public:
  ReplayAttacker(Scheduler& sched, CanBus& bus, std::string name,
                 SimTime record_window, SimTime replay_period);

  void start();
  void stop();
  std::size_t recorded() const { return recorded_.size(); }
  std::uint64_t replayed() const { return replayed_; }
  void on_frame(const CanFrame& frame, SimTime at) override;

 private:
  void replay_next();
  Scheduler& sched_;
  CanBus& bus_;
  SimTime record_window_;
  SimTime replay_period_;
  SimTime started_at_;
  bool recording_ = false;
  bool replaying_ = false;
  std::deque<CanFrame> recorded_;
  std::size_t replay_idx_ = 0;
  std::uint64_t replayed_ = 0;
  std::unique_ptr<sim::PeriodicTask> task_;
};

/// Random id/payload fuzzer.
class FuzzAttacker : public CanNode {
 public:
  FuzzAttacker(Scheduler& sched, CanBus& bus, std::string name, SimTime period,
               std::uint64_t seed);

  void start();
  void stop();
  std::uint64_t sent() const { return sent_; }
  void on_frame(const CanFrame&, SimTime) override {}

 private:
  Scheduler& sched_;
  CanBus& bus_;
  SimTime period_;
  util::Rng rng_;
  std::uint64_t sent_ = 0;
  std::unique_ptr<sim::PeriodicTask> task_;
};

/// Arms the bus error injector to corrupt every transmission of `victim_id`
/// frames by `victim_name` — the bus-off attack: the victim's TEC rises by 8
/// per attempt and the node eventually disconnects itself.
class BusOffAttacker {
 public:
  BusOffAttacker(CanBus& bus, std::string victim_name, std::uint32_t victim_id);
  ~BusOffAttacker();

  void arm();
  void disarm();
  std::uint64_t corruptions() const { return corruptions_; }

 private:
  CanBus& bus_;
  std::string victim_name_;
  std::uint32_t victim_id_;
  bool armed_ = false;
  std::uint64_t corruptions_ = 0;
};

}  // namespace aseck::attacks
