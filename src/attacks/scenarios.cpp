#include "attacks/scenarios.hpp"

#include <cmath>

#include "crypto/cmac.hpp"

namespace aseck::attacks {

GpsSpoofScenario::GpsSpoofScenario(Config cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {}

std::vector<GpsSpoofScenario::Step> GpsSpoofScenario::run(double seconds,
                                                          double spoof_start_s) {
  std::vector<Step> out;
  double spoof_offset = 0.0;
  // Dead-reckoned position from wheel odometry + heading (IMU): the car
  // knows it is driving straight along +x at ~true_speed.
  double dr_x = 0.0;
  for (double t = 0.0; t < seconds; t += 1.0) {
    const bool spoofing = t >= spoof_start_s;
    if (spoofing) spoof_offset += cfg_.drag_rate_mps;

    const double true_x = cfg_.true_speed_mps * t;
    const double gps_x = true_x + rng_.gaussian(0.0, cfg_.gps_noise_m);
    const double gps_y = spoof_offset + rng_.gaussian(0.0, cfg_.gps_noise_m);

    if (t > 0.0) {
      dr_x += cfg_.true_speed_mps *
              (1.0 + rng_.gaussian(0.0, cfg_.odom_noise_frac));
    }

    Step s;
    s.t_s = t;
    s.spoof_active = spoofing;
    const double ex = gps_x - true_x;
    s.gps_error_m = std::sqrt(ex * ex + gps_y * gps_y);
    // Defense: GPS fix vs dead-reckoned position disagreement.
    const double dx = gps_x - dr_x, dy = gps_y - 0.0;
    s.detected = std::sqrt(dx * dx + dy * dy) > cfg_.detect_threshold_m;
    out.push_back(s);
  }
  return out;
}

double GpsSpoofScenario::detection_latency_s(const std::vector<Step>& steps,
                                             double spoof_start_s) {
  for (const Step& s : steps) {
    if (s.t_s >= spoof_start_s && s.detected) return s.t_s - spoof_start_s;
  }
  return -1.0;
}

FleetCompromiseResult run_fleet_compromise(const FleetConfig& cfg,
                                           std::uint64_t seed) {
  FleetCompromiseResult result;
  result.fleet_size = cfg.fleet_size;
  util::Rng rng(seed);
  crypto::Drbg key_rng(seed ^ 0xF1EE7ULL);

  // Provision fleet OTA-auth keys (AES-CMAC authorization tokens).
  std::vector<crypto::Block> vehicle_keys(cfg.fleet_size);
  crypto::Block shared;
  key_rng.generate(shared.data(), shared.size());
  for (std::size_t i = 0; i < cfg.fleet_size; ++i) {
    if (cfg.shared_symmetric_keys) {
      vehicle_keys[i] = shared;
    } else {
      key_rng.generate(vehicle_keys[i].data(), vehicle_keys[i].size());
    }
  }

  // Phase 1: CPA against vehicle 0's key.
  sidechannel::LeakageConfig leak;
  leak.noise_sigma = 1.0;
  leak.countermeasure = cfg.masking_countermeasure
                            ? sidechannel::Countermeasure::kMasking
                            : sidechannel::Countermeasure::kNone;
  sidechannel::LeakyAesDevice device(vehicle_keys[0], leak, seed ^ 0xDEAD);
  std::vector<sidechannel::Trace> traces;
  crypto::Block extracted{};
  while (traces.size() < cfg.max_traces) {
    for (int i = 0; i < 200 && traces.size() < cfg.max_traces; ++i) {
      traces.push_back(device.capture(rng));
    }
    const auto cpa = sidechannel::cpa_attack(traces);
    if (cpa.correct_bytes(vehicle_keys[0]) == 16) {
      result.key_extracted = true;
      result.traces_used = traces.size();
      extracted = cpa.recovered_key;
      break;
    }
  }
  if (!result.key_extracted) return result;

  // Phase 2: forge an update authorization against every vehicle.
  const util::Bytes malicious = util::from_string("malicious-fw-v99");
  const crypto::Cmac attacker_mac(util::BytesView(extracted.data(), 16));
  const crypto::Block forged_tag = attacker_mac.tag(malicious);
  for (std::size_t i = 0; i < cfg.fleet_size; ++i) {
    const crypto::Cmac vehicle_mac(util::BytesView(vehicle_keys[i].data(), 16));
    if (vehicle_mac.verify(malicious,
                           util::BytesView(forged_tag.data(), 16))) {
      ++result.vehicles_compromised;
    }
  }
  return result;
}

}  // namespace aseck::attacks
