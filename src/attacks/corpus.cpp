#include "attacks/corpus.hpp"

#include <algorithm>

#include "ivn/secoc.hpp"

namespace aseck::attacks {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

/// Strict uint64 parse (digits only, non-empty, no overflow past the field's
/// use sites — corpus numbers are small).
std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty() || s.size() > 19) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = line.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(line.substr(pos));
      return out;
    }
    out.push_back(line.substr(pos, next - pos));
    pos = next + 1;
  }
}

util::Bytes secoc_replay_pdu() {
  util::Bytes key(16);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(0xA5 ^ (i * 7));
  }
  const ivn::SecOcChannel ch(key);
  ivn::FreshnessManager fm;
  fm.set_tx(0x0101, 100);
  return ch.protect(0x0101, util::Bytes{0x11, 0x22, 0x33}, fm);
}

}  // namespace

const char* attack_class_name(AttackClass c) {
  switch (c) {
    case AttackClass::kUdsSecurityBypass: return "uds_security_bypass";
    case AttackClass::kUdsIntegerOverflow: return "integer_overflow";
    case AttackClass::kCanDlcOverflow: return "dlc_overflow";
    case AttackClass::kFirmwareHeaderOverflow: return "firmware_header_overflow";
    case AttackClass::kMalformedFrame: return "malformed_frame";
    case AttackClass::kReplay: return "replay";
    case AttackClass::kFlood: return "flood";
    case AttackClass::kSpoof: return "spoof";
  }
  return "?";
}

std::optional<AttackClass> attack_class_from_name(const std::string& name) {
  for (const AttackClass c :
       {AttackClass::kUdsSecurityBypass, AttackClass::kUdsIntegerOverflow,
        AttackClass::kCanDlcOverflow, AttackClass::kFirmwareHeaderOverflow,
        AttackClass::kMalformedFrame, AttackClass::kReplay, AttackClass::kFlood,
        AttackClass::kSpoof}) {
    if (name == attack_class_name(c)) return c;
  }
  return std::nullopt;
}

const char* attack_protocol_name(AttackProtocol p) {
  switch (p) {
    case AttackProtocol::kCan: return "can";
    case AttackProtocol::kUds: return "uds";
    case AttackProtocol::kSomeIp: return "someip";
    case AttackProtocol::kSecOc: return "secoc";
    case AttackProtocol::kOta: return "ota";
  }
  return "?";
}

std::optional<AttackProtocol> attack_protocol_from_name(const std::string& n) {
  for (const AttackProtocol p :
       {AttackProtocol::kCan, AttackProtocol::kUds, AttackProtocol::kSomeIp,
        AttackProtocol::kSecOc, AttackProtocol::kOta}) {
    if (n == attack_protocol_name(p)) return p;
  }
  return std::nullopt;
}

std::vector<const ScenarioEntry*> ScenarioCorpus::by_class(AttackClass c) const {
  std::vector<const ScenarioEntry*> out;
  for (const ScenarioEntry& e : entries_) {
    if (e.cls == c) out.push_back(&e);
  }
  return out;
}

std::vector<AttackClass> ScenarioCorpus::classes() const {
  std::vector<AttackClass> out;
  for (const AttackClass c :
       {AttackClass::kUdsSecurityBypass, AttackClass::kUdsIntegerOverflow,
        AttackClass::kCanDlcOverflow, AttackClass::kFirmwareHeaderOverflow,
        AttackClass::kMalformedFrame, AttackClass::kReplay, AttackClass::kFlood,
        AttackClass::kSpoof}) {
    if (!by_class(c).empty()) out.push_back(c);
  }
  return out;
}

std::string ScenarioCorpus::serialize() const {
  std::string out = "aseck-corpus v1\n";
  for (const ScenarioEntry& e : entries_) {
    out += e.id;
    out += '|';
    out += attack_class_name(e.cls);
    out += '|';
    out += attack_protocol_name(e.protocol);
    out += '|';
    out += std::to_string(e.can_id);
    out += '|';
    out += std::to_string(e.period.ns);
    out += '|';
    out += std::to_string(e.repeat);
    out += '|';
    out += util::to_hex(e.payload);
    out += '|';
    out += e.origin;
    out += '|';
    out += e.note;
    out += '\n';
  }
  return out;
}

std::optional<ScenarioCorpus> ScenarioCorpus::parse(const std::string& text) {
  const std::vector<std::string> lines = split(text, '\n');
  if (lines.empty() || lines[0] != "aseck-corpus v1") return std::nullopt;
  ScenarioCorpus corpus;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;  // trailing newline / blank lines
    const std::vector<std::string> f = split(line, '|');
    if (f.size() != 9) return std::nullopt;
    ScenarioEntry e;
    e.id = f[0];
    if (e.id.empty()) return std::nullopt;
    const auto cls = attack_class_from_name(f[1]);
    const auto proto = attack_protocol_from_name(f[2]);
    const auto can_id = parse_u64(f[3]);
    const auto period = parse_u64(f[4]);
    const auto repeat = parse_u64(f[5]);
    if (!cls || !proto || !can_id || !period || !repeat ||
        *can_id > 0x1FFFFFFF || *repeat == 0) {
      return std::nullopt;
    }
    e.cls = *cls;
    e.protocol = *proto;
    e.can_id = static_cast<std::uint32_t>(*can_id);
    e.period = util::SimTime::from_ns(*period);
    e.repeat = static_cast<std::uint32_t>(*repeat);
    try {
      e.payload = util::from_hex(f[6]);
    } catch (const std::invalid_argument&) {
      return std::nullopt;
    }
    e.origin = f[7];
    e.note = f[8];
    corpus.add(std::move(e));
  }
  return corpus;
}

ScenarioCorpus ScenarioCorpus::builtin() {
  ScenarioCorpus c;

  // --- Frozen V-matrix payloads --------------------------------------------
  c.add({"v9-uds-key-without-seed",
         AttackClass::kUdsSecurityBypass,
         AttackProtocol::kUds,
         0x7E0,
         util::SimTime::from_us(500),
         3,
         {0x27, 0x02, 0x00, 0x00, 0x00, 0x00},
         "frozen:v9",
         "sendKey with an all-zero key and no prior seed"});
  c.add({"v11-uds-download-size-wrap",
         AttackClass::kUdsIntegerOverflow,
         AttackProtocol::kUds,
         0x7E0,
         util::SimTime::from_us(500),
         1,
         {0x34, 0x00, 0x44, 0x00, 0x00, 0x10, 0x00, 0xFF, 0xFF, 0xFF, 0xFF},
         "frozen:v11",
         "RequestDownload memorySize 0xFFFFFFFF (2^32 wrap bait)"});
  {
    // V10: classic frame declaring DLC 15 over an 8-byte body — a lenient
    // decoder reads 15 bytes from an 8-byte buffer.
    ScenarioEntry e;
    e.id = "v10-can-dlc-overflow";
    e.cls = AttackClass::kCanDlcOverflow;
    e.protocol = AttackProtocol::kCan;
    e.can_id = 0x123;
    e.payload = {0x00, 0x00, 0x00, 0x01, 0x23, 0x0F,
                 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
    e.origin = "frozen:v10";
    e.note = "classic CAN wire frame with dlc=15";
    c.add(std::move(e));
  }
  {
    // V12: targets metadata whose entry declares a huge image length and
    // truncates mid-header.
    ScenarioEntry e;
    e.id = "v12-ota-header-overflow";
    e.cls = AttackClass::kFirmwareHeaderOverflow;
    e.protocol = AttackProtocol::kOta;
    e.can_id = 0x7E2;
    util::Bytes b;
    b.push_back('T');
    util::append_be(b, 7, 4);                      // version
    util::append_be(b, 2'000'000'000ULL, 8);       // expires
    const char* name = "brake.img";
    b.insert(b.end(), name, name + 9);
    b.push_back(0);
    b.insert(b.end(), 32, 0xCD);                   // sha256
    util::append_be(b, ~std::uint64_t{0}, 8);      // length = 2^64-1
    // truncated: version / hardware id missing
    e.payload = std::move(b);
    e.origin = "frozen:v12";
    e.note = "targets entry with 2^64-1 image length, truncated header";
    c.add(std::move(e));
  }
  c.add({"v4-secoc-replay",
         AttackClass::kReplay,
         AttackProtocol::kSecOc,
         0x101,
         util::SimTime::from_us(500),
         2,
         secoc_replay_pdu(),
         "frozen:v4",
         "genuine protected PDU transmitted twice"});
  c.add({"v1-can-flood",
         AttackClass::kFlood,
         AttackProtocol::kCan,
         0x000,
         util::SimTime::from_us(100),
         200,
         {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
         "frozen:v1",
         "highest-priority id flooded at 10 kHz"});
  c.add({"v3-can-spoof",
         AttackClass::kSpoof,
         AttackProtocol::kCan,
         0x100,
         util::SimTime::from_ms(1),
         20,
         {0x00, 0x40, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00},
         "frozen:v3",
         "legitimate periodic id with attacker-chosen payload"});

  // --- Minimized fuzzer reproducers (each pinned by a regression test) -----
  c.add({"fz-someip-len-wrap",
         AttackClass::kUdsIntegerOverflow,
         AttackProtocol::kSomeIp,
         0x7E1,
         util::SimTime::from_us(500),
         1,
         {0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xFF, 0xFF,
          0xFF, 0xF6},
         "fuzzer:someip",
         "header length 0xFFFFFFF6 wraps 13+len in 32-bit arithmetic"});
  c.add({"fz-uds-alfid-smuggle",
         AttackClass::kUdsIntegerOverflow,
         AttackProtocol::kUds,
         0x7E0,
         util::SimTime::from_us(500),
         1,
         {0x34, 0x00, 0x88},
         "fuzzer:uds",
         "RequestDownload alfid 0x88: 8-byte fields on a 32-bit ECU"});
  c.add({"fz-uds-truncated-key",
         AttackClass::kMalformedFrame,
         AttackProtocol::kUds,
         0x7E0,
         util::SimTime::from_us(500),
         1,
         {0x27, 0x02, 0x01},
         "fuzzer:uds",
         "sendKey one byte long: must reject with NRC 0x13, not clamp"});
  c.add({"fz-can-brs-on-classic",
         AttackClass::kMalformedFrame,
         AttackProtocol::kCan,
         0x123,
         util::SimTime::from_us(500),
         1,
         {0x08, 0x00, 0x00, 0x01, 0x23, 0x00},
         "fuzzer:can",
         "BRS flag without FD on the wire encoding"});
  c.add({"fz-ota-root-truncated",
         AttackClass::kMalformedFrame,
         AttackProtocol::kOta,
         0x7E2,
         util::SimTime::from_us(500),
         1,
         {'R'},
         "fuzzer:ota",
         "root metadata cut after the magic byte"});
  return c;
}

CorpusReplayer::CorpusReplayer(sim::Scheduler& sched, ivn::CanBus& bus,
                               std::string name)
    : ivn::CanNode(std::move(name)), sched_(sched), bus_(bus),
      trace_(this->name()) {
  bus_.attach(this);
  k_schedule_ = trace_.kind("corpus_schedule");
  k_tx_ = trace_.kind("corpus_tx");
  k_reject_ = trace_.kind("corpus_reject");
}

void CorpusReplayer::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  k_schedule_ = trace_.kind("corpus_schedule");
  k_tx_ = trace_.kind("corpus_tx");
  k_reject_ = trace_.kind("corpus_reject");
}

void CorpusReplayer::on_frame(const ivn::CanFrame& frame, sim::SimTime at) {
  (void)frame;
  (void)at;  // the replayer only transmits
}

util::SimTime CorpusReplayer::schedule(const ScenarioEntry& entry,
                                       util::SimTime start) {
  trace_.record(start, k_schedule_,
                entry.id + " class=" + attack_class_name(entry.cls));
  // Chunk the payload ISO-TP-style into classic 8-byte frames.
  std::vector<util::Bytes> chunks;
  if (entry.payload.empty()) {
    chunks.push_back({});
  } else {
    for (std::size_t pos = 0; pos < entry.payload.size(); pos += 8) {
      const std::size_t n = std::min<std::size_t>(8, entry.payload.size() - pos);
      chunks.emplace_back(entry.payload.begin() + static_cast<std::ptrdiff_t>(pos),
                          entry.payload.begin() +
                              static_cast<std::ptrdiff_t>(pos + n));
    }
  }
  util::SimTime at = start;
  for (std::uint32_t r = 0; r < entry.repeat; ++r) {
    for (const util::Bytes& chunk : chunks) {
      ivn::CanFrame f;
      f.id = entry.can_id;
      f.extended = entry.can_id > 0x7FF;
      f.data = chunk;
      const std::string id = entry.id;
      sched_.schedule_at(at, [this, f = std::move(f), id] {
        if (bus_.send(this, f)) {
          ++frames_sent_;
          trace_.record(sched_.now(), k_tx_, id);
        } else {
          ++frames_rejected_;
          trace_.record(sched_.now(), k_reject_, id);
        }
      });
      at += entry.period;
    }
  }
  return at;
}

util::SimTime CorpusReplayer::schedule_all(const ScenarioCorpus& corpus,
                                           util::SimTime start,
                                           util::SimTime gap) {
  util::SimTime at = start;
  for (const ScenarioEntry& e : corpus.entries()) {
    at = schedule(e, at) + gap;
  }
  return at;
}

std::uint64_t timeline_digest(const sim::TraceBus& bus) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    const sim::TraceEvent& e = bus.event(i);
    h = fnv_u64(h, e.at.ns);
    h = fnv_u64(h, e.seq);
    const std::string& comp = bus.name(e.component);
    const std::string& kind = bus.name(e.kind);
    h = fnv_bytes(h, comp.data(), comp.size());
    h = fnv_bytes(h, kind.data(), kind.size());
    h = fnv_bytes(h, e.detail.data(), e.detail.size());
  }
  return h;
}

}  // namespace aseck::attacks
