#pragma once
// Replayable attack corpus (E20): fuzzer-found parser breakers and the
// frozen V1-V12 testbed-matrix payloads, serialized in a stable text format
// and replayed onto a live CAN bus through the TraceBus/FaultPlan machinery.
//
// The corpus is the bridge between the offline fuzzer (fuzz/) and the online
// defenses: bench_e20_fuzz_corpus replays every entry against a trained IDS
// ensemble and a SecurityGateway, scoring per-attack-class detection rates.
// Entries are deterministic data — replaying a corpus under the same seed
// produces a bit-identical TraceBus timeline (corpus_test.cpp pins the
// digest equality), which is what lets CI diff two runs.
//
// Text format (one entry per line, '|'-separated, hex payload):
//   aseck-corpus v1
//   <id>|<class>|<protocol>|<can_id>|<period_ns>|<repeat>|<hex>|<origin>|<note>
// Fields must not contain '|' or newlines; parse is strict (unknown class or
// protocol names, bad hex, short lines, and a missing header all reject).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ivn/can.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "util/bytes.hpp"

namespace aseck::attacks {

/// Attack taxonomy aligned with the V1-V12 testbed matrix the related
/// fuzzing work scores against (V3 spoof, V4 replay, V9 UDS bypass, V10 DLC
/// overflow, V11 integer overflow, V12 firmware-header overflow).
enum class AttackClass {
  kUdsSecurityBypass,      // V9
  kUdsIntegerOverflow,     // V11
  kCanDlcOverflow,         // V10
  kFirmwareHeaderOverflow, // V12
  kMalformedFrame,         // fuzzer-found parser breakers
  kReplay,                 // V4
  kFlood,                  // V1/V2 bus flooding
  kSpoof,                  // V3 id spoofing
};
const char* attack_class_name(AttackClass c);
std::optional<AttackClass> attack_class_from_name(const std::string& name);

/// Which parser/stack the payload exercises.
enum class AttackProtocol { kCan, kUds, kSomeIp, kSecOc, kOta };
const char* attack_protocol_name(AttackProtocol p);
std::optional<AttackProtocol> attack_protocol_from_name(const std::string& n);

/// One frozen attack: a payload plus how to inject it onto a bus.
struct ScenarioEntry {
  std::string id;           // stable slug, e.g. "v10-dlc-overflow"
  AttackClass cls = AttackClass::kMalformedFrame;
  AttackProtocol protocol = AttackProtocol::kCan;
  std::uint32_t can_id = 0x7E0;          // carrier id during replay
  util::SimTime period = util::SimTime::from_us(500);  // inter-frame gap
  std::uint32_t repeat = 1;              // payload repetitions
  util::Bytes payload;
  std::string origin;  // "fuzzer:<target>:iter=<n>" or "frozen:<vuln>"
  std::string note;

  friend bool operator==(const ScenarioEntry&, const ScenarioEntry&) = default;
};

class ScenarioCorpus {
 public:
  void add(ScenarioEntry e) { entries_.push_back(std::move(e)); }
  const std::vector<ScenarioEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  std::vector<const ScenarioEntry*> by_class(AttackClass c) const;
  /// Distinct classes present, in enum order.
  std::vector<AttackClass> classes() const;

  /// Stable text serialization (see file header). Round-trips exactly:
  /// parse(serialize()) reproduces equal entries.
  std::string serialize() const;
  static std::optional<ScenarioCorpus> parse(const std::string& text);

  /// The frozen built-in corpus: V-matrix payloads plus minimized
  /// fuzzer-found reproducers for every parser fix this repo ships
  /// (each is pinned by a regression test before it is frozen here).
  static ScenarioCorpus builtin();

 private:
  std::vector<ScenarioEntry> entries_;
};

/// Injects corpus entries onto a CAN bus as scheduled traffic. Payloads are
/// chunked ISO-TP-style into classic 8-byte frames under the entry's carrier
/// id, so the IDS and gateway observe them exactly like real diagnostic or
/// attack traffic. Every scheduled entry and transmitted frame lands on the
/// TraceBus ("corpus" component), making replay timelines diffable.
class CorpusReplayer : public ivn::CanNode {
 public:
  CorpusReplayer(sim::Scheduler& sched, ivn::CanBus& bus, std::string name);

  /// Schedules all frames of `entry` starting at `start`; returns the time
  /// just after the last scheduled frame.
  util::SimTime schedule(const ScenarioEntry& entry, util::SimTime start);
  /// Schedules every corpus entry back to back, `gap` apart.
  util::SimTime schedule_all(const ScenarioCorpus& corpus, util::SimTime start,
                             util::SimTime gap);

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_rejected() const { return frames_rejected_; }

  void on_frame(const ivn::CanFrame& frame, sim::SimTime at) override;

  sim::TraceScope& trace() { return trace_; }
  void bind_telemetry(const sim::Telemetry& t);

 private:
  sim::Scheduler& sched_;
  ivn::CanBus& bus_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_rejected_ = 0;
  sim::TraceScope trace_;
  sim::TraceId k_schedule_ = 0, k_tx_ = 0, k_reject_ = 0;
};

/// Order-sensitive FNV-1a digest over a TraceBus's retained timeline
/// (time, component name, kind name, detail). Two replays of the same corpus
/// under the same seed must produce equal digests — the determinism oracle
/// corpus_test.cpp and the chaos-smoke CI job assert.
std::uint64_t timeline_digest(const sim::TraceBus& bus);

}  // namespace aseck::attacks
