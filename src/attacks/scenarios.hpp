#pragma once
// Composite attack scenarios from the paper:
//  * GPS spoofing (Section 4.1 availability attacks, refs [9,18]) with an
//    odometry cross-check defense.
//  * The Section 4.2 chain: side-channel key extraction from one vehicle ->
//    malicious OTA update attempt against the fleet, showing how shared
//    (non-diversified) keys turn one physical compromise into a fleet-wide
//    one, and how per-vehicle keys plus Uptane full verification contain it.

#include <cstdint>
#include <vector>

#include "ota/client.hpp"
#include "sidechannel/power_model.hpp"
#include "util/rng.hpp"

namespace aseck::attacks {

// --- GPS spoofing -----------------------------------------------------------

/// GPS receiver model with an optional spoofer that slowly drags the
/// position fix away from the true trajectory (a "carry-off" attack).
class GpsSpoofScenario {
 public:
  struct Config {
    double true_speed_mps = 25.0;   // along +x
    double drag_rate_mps = 3.0;     // spoofer-induced drift, along +y
    double gps_noise_m = 2.0;
    double odom_noise_frac = 0.01;  // wheel odometry relative error
    double detect_threshold_m = 25.0;
  };
  GpsSpoofScenario(Config cfg, std::uint64_t seed);

  struct Step {
    double t_s;
    double gps_error_m;      // distance between GPS fix and truth
    bool spoof_active;
    bool detected;           // odometry cross-check flags inconsistency
  };
  /// Runs `seconds` of 1 Hz fixes; spoofing starts at `spoof_start_s`.
  std::vector<Step> run(double seconds, double spoof_start_s);

  /// Time from spoof start to first detection, or -1 if never detected.
  static double detection_latency_s(const std::vector<Step>& steps,
                                    double spoof_start_s);

 private:
  Config cfg_;
  util::Rng rng_;
};

// --- Side-channel -> fleet OTA compromise ------------------------------------

/// Outcome of the chained scenario for one fleet configuration.
struct FleetCompromiseResult {
  bool key_extracted = false;         // CPA succeeded on the physical vehicle
  std::size_t traces_used = 0;
  std::size_t vehicles_compromised = 0;  // accepted the malicious update
  std::size_t fleet_size = 0;
};

struct FleetConfig {
  std::size_t fleet_size = 20;
  bool shared_symmetric_keys = true;   // same OTA auth key in every vehicle
  bool masking_countermeasure = false; // side-channel protection on the ECU
  std::size_t max_traces = 3000;
};

/// Simulates: attacker with physical access captures power traces from one
/// vehicle's update-auth AES key; if recovered, forges update authorizations
/// against every vehicle in the fleet. With `shared_symmetric_keys` the
/// whole class falls; with per-vehicle keys only the probed vehicle does.
FleetCompromiseResult run_fleet_compromise(const FleetConfig& cfg,
                                           std::uint64_t seed);

}  // namespace aseck::attacks
