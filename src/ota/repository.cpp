#include "ota/repository.hpp"

#include <algorithm>

namespace aseck::ota {

Repository::Repository(crypto::Drbg& rng, std::string name, SimTime expiry)
    : name_(std::move(name)), expiry_(expiry), hsm_(name_ + "-hsm") {
  part_ = hsm_.register_partition("uptane");
  // Same DRBG draw order as the pre-service code (kRoot..kTimestamp), so
  // seeded repositories keep their exact key material across the migration.
  crypto::KeyPolicy policy;
  policy.usage = crypto::kUsageSign | crypto::kUsageExport;
  for (Role r : {Role::kRoot, Role::kTargets, Role::kSnapshot, Role::kTimestamp}) {
    keys_[r] = hsm_.generate_ecdsa(part_, rng, policy);
  }
  bundle_.targets.body.version = 0;
  bundle_.snapshot.body.version = 0;
  bundle_.timestamp.body.version = 0;
  rebuild_root(SimTime::zero(), nullptr);
  publish(SimTime::zero());
}

crypto::EcdsaPublicKey Repository::public_key(Role r) const {
  crypto::EcdsaPublicKey pub;
  hsm_.export_public(keys_.at(r), &pub);
  return pub;
}

Signature Repository::sign_with(crypto::KeyHandle h,
                                util::BytesView payload) const {
  Signature s;
  crypto::EcdsaPublicKey pub;
  hsm_.export_public(h, &pub);
  s.keyid = key_id(pub);
  hsm_.sign(part_, h, payload, &s.sig);
  return s;
}

Signature Repository::sign_role_payload(Role r, util::BytesView payload) const {
  return sign_with(keys_.at(r), payload);
}

void Repository::rebuild_root(SimTime now, const crypto::KeyHandle* old_root_key) {
  RootMeta& root = bundle_.root.body;
  root.version += (root.roles.empty() ? 0 : 1);
  if (root.roles.empty()) root.version = 1;
  // Root is long-lived (rotated rarely); online roles expire fast so a
  // freeze attack has bounded staleness.
  root.expires = now + expiry_ * 100;
  root.roles.clear();
  root.keys.clear();
  for (const auto& [role, handle] : keys_) {
    const crypto::EcdsaPublicKey pub = public_key(role);
    RootMeta::RoleKeys rk;
    rk.threshold = 1;
    rk.key_ids.push_back(key_id(pub));
    root.roles[role] = rk;
    root.keys[key_id_hex(rk.key_ids[0])] = pub;
  }
  bundle_.root.signatures.clear();
  const util::Bytes payload = root.serialize();
  // Cross-sign with the previous root key so clients can chain trust.
  if (old_root_key) {
    bundle_.root.signatures.push_back(sign_with(*old_root_key, payload));
  }
  bundle_.root.signatures.push_back(
      sign_with(keys_.at(Role::kRoot), payload));
}

void Repository::add_target(const std::string& image_name,
                            const util::Bytes& image, std::uint32_t version,
                            const std::string& hardware_id) {
  TargetInfo info;
  info.sha256 = crypto::sha256_bytes(image);
  info.length = image.size();
  info.version = version;
  info.hardware_id = hardware_id;
  bundle_.targets.body.targets[image_name] = std::move(info);
  images_[image_name] = image;
}

void Repository::remove_target(const std::string& image_name) {
  bundle_.targets.body.targets.erase(image_name);
  images_.erase(image_name);
}

std::shared_ptr<const MetadataBundle> Repository::snapshot() const {
  if (!snapshot_) snapshot_ = std::make_shared<const MetadataBundle>(bundle_);
  return snapshot_;
}

void Repository::publish(SimTime now) {
  invalidate_snapshot();
  TargetsMeta& targets = bundle_.targets.body;
  targets.version += 1;
  targets.expires = now + expiry_;
  sign_role(bundle_.targets, Role::kTargets);

  SnapshotMeta& snap = bundle_.snapshot.body;
  snap.version += 1;
  snap.expires = now + expiry_;
  snap.targets_version = targets.version;
  sign_role(bundle_.snapshot, Role::kSnapshot);

  TimestampMeta& ts = bundle_.timestamp.body;
  ts.version += 1;
  ts.expires = now + expiry_;
  ts.snapshot_version = snap.version;
  ts.snapshot_hash = crypto::sha256_bytes(snap.serialize());
  sign_role(bundle_.timestamp, Role::kTimestamp);
}

const util::Bytes* Repository::download(const std::string& image_name) const {
  if (!available()) return nullptr;
  const auto it = images_.find(image_name);
  return it == images_.end() ? nullptr : &it->second;
}

std::optional<util::Bytes> Repository::download_range(
    const std::string& image_name, std::size_t offset,
    std::size_t max_len) const {
  if (!available()) return std::nullopt;
  const auto it = images_.find(image_name);
  if (it == images_.end() || offset > it->second.size()) return std::nullopt;
  const std::size_t n = std::min(max_len, it->second.size() - offset);
  const auto first = it->second.begin() + static_cast<std::ptrdiff_t>(offset);
  return util::Bytes(first, first + static_cast<std::ptrdiff_t>(n));
}

const crypto::EcdsaPrivateKey& Repository::role_key(Role r) const {
  const auto it = exported_.find(r);
  if (it != exported_.end()) return it->second;
  // The compromise primitive: role keys carry kUsageExport, so an attacker
  // with repository access walks off with the scalar. Deterministic ECDSA
  // makes the reconstructed key sign bit-identically to the service's copy.
  util::Bytes secret;
  hsm_.export_secret(part_, keys_.at(r), &secret);
  return exported_.emplace(r, crypto::EcdsaPrivateKey::from_secret(secret))
      .first->second;
}

void Repository::rotate_key(crypto::Drbg& rng, Role r, SimTime now) {
  invalidate_snapshot();
  exported_.erase(r);  // any stolen copy is now stale
  // Keep the old handle around: a rotated *root* still cross-signs the new
  // root metadata so clients can chain trust; then the key is destroyed.
  const crypto::KeyHandle old = keys_.at(r);
  crypto::KeyPolicy policy;
  policy.usage = crypto::kUsageSign | crypto::kUsageExport;
  keys_[r] = hsm_.generate_ecdsa(part_, rng, policy);
  rebuild_root(now, r == Role::kRoot ? &old : nullptr);
  hsm_.destroy(part_, old);
  publish(now);
}

}  // namespace aseck::ota
