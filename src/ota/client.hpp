#pragma once
// Uptane clients. The full-verification client (primary ECU) performs the
// complete metadata check chain against BOTH repositories; the partial-
// verification client (resource-constrained secondary ECU) checks only the
// director targets signature. Experiment E5's compromise matrix shows what
// each level withstands.

#include <functional>
#include <optional>
#include <string>

#include "ecu/flash.hpp"
#include "ota/repository.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"

namespace aseck::ota {

enum class OtaError {
  kOk,
  kRootSignature,
  kRootExpired,
  kTimestampSignature,
  kTimestampExpired,
  kTimestampRollback,
  kSnapshotSignature,
  kSnapshotExpired,
  kSnapshotHashMismatch,
  kSnapshotRollback,
  kTargetsSignature,
  kTargetsExpired,
  kTargetsVersionMismatch,
  kTargetUnknown,
  kReposDisagree,
  kImageHashMismatch,
  kImageLengthMismatch,
  kHardwareMismatch,
  kImageRollback,
  kDownloadFailed,
};
const char* ota_error_name(OtaError e);

/// Full-verification (primary ECU) client.
class FullVerificationClient {
 public:
  /// Pins the initial trusted roots of both repositories (factory install).
  FullVerificationClient(std::string name, Signed<RootMeta> director_root,
                         Signed<RootMeta> image_root);

  /// Verifies metadata from both repositories and checks that they agree on
  /// `image_name` for `hardware_id`; verifies the downloaded image; returns
  /// the validated TargetInfo or the first error.
  struct Outcome {
    OtaError error = OtaError::kOk;
    TargetInfo target;
    util::Bytes image;
  };
  Outcome fetch_and_verify(const MetadataBundle& director,
                           const MetadataBundle& image_repo,
                           const Repository& director_repo,
                           const Repository& image_repo_store,
                           const std::string& image_name,
                           const std::string& hardware_id,
                           std::uint32_t installed_version, SimTime now);

  /// Verifies one repository's metadata chain (no cross-check, no image).
  OtaError verify_chain(const MetadataBundle& bundle, bool is_director,
                        SimTime now);

  std::uint64_t verify_ok() const { return c_verify_ok_->value(); }
  std::uint64_t verify_fail() const { return c_verify_fail_->value(); }
  sim::TraceScope& trace() { return trace_; }

  /// Rebinds trace events and counters onto a shared telemetry plane.
  void bind_telemetry(const sim::Telemetry& t);

 private:
  struct RepoState {
    Signed<RootMeta> trusted_root;
    std::uint32_t last_timestamp = 0;
    std::uint32_t last_snapshot = 0;
    std::uint32_t last_targets = 0;
  };
  OtaError verify_repo(const MetadataBundle& bundle, RepoState& st, SimTime now,
                       const TargetsMeta** out_targets);
  Outcome fetch_and_verify_inner(const MetadataBundle& director,
                                 const MetadataBundle& image_repo,
                                 const Repository& director_repo,
                                 const Repository& image_repo_store,
                                 const std::string& image_name,
                                 const std::string& hardware_id,
                                 std::uint32_t installed_version, SimTime now);
  void wire_telemetry();

  std::string name_;
  RepoState director_;
  RepoState image_;
  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_verify_ok_ = nullptr;
  sim::Counter* c_verify_fail_ = nullptr;
  sim::TraceId k_verify_ok_ = 0, k_verify_fail_ = 0;
};

/// Partial-verification (secondary ECU) client: pinned director-targets key,
/// expiry and version checks only.
class PartialVerificationClient {
 public:
  PartialVerificationClient(std::string name, crypto::EcdsaPublicKey targets_key)
      : name_(std::move(name)), targets_key_(std::move(targets_key)) {}

  struct Outcome {
    OtaError error = OtaError::kOk;
    TargetInfo target;
  };
  Outcome verify(const Signed<TargetsMeta>& director_targets,
                 const std::string& image_name, const std::string& hardware_id,
                 std::uint32_t installed_version, SimTime now);

 private:
  std::string name_;
  crypto::EcdsaPublicKey targets_key_;
  std::uint32_t last_targets_ = 0;
};

/// Installs a verified image into an ECU's flash (stage + activate + commit
/// after the self-test callback returns true; reverts otherwise).
enum class InstallResult { kCommitted, kRevertedSelfTest, kStageRejected };
InstallResult install_image(ecu::Flash& flash, const std::string& image_name,
                            std::uint32_t version, const util::Bytes& image,
                            const std::function<bool()>& self_test);

}  // namespace aseck::ota
