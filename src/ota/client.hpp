#pragma once
// Uptane clients. The full-verification client (primary ECU) performs the
// complete metadata check chain against BOTH repositories; the partial-
// verification client (resource-constrained secondary ECU) checks only the
// director targets signature. Experiment E5's compromise matrix shows what
// each level withstands.

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "ecu/flash.hpp"
#include "ota/repository.hpp"
#include "ota/server.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace aseck::ota {

enum class OtaError {
  kOk,
  kRootSignature,
  kRootExpired,
  kTimestampSignature,
  kTimestampExpired,
  kTimestampRollback,
  kSnapshotSignature,
  kSnapshotExpired,
  kSnapshotHashMismatch,
  kSnapshotRollback,
  kTargetsSignature,
  kTargetsExpired,
  kTargetsVersionMismatch,
  kTargetUnknown,
  kReposDisagree,
  kImageHashMismatch,
  kImageLengthMismatch,
  kHardwareMismatch,
  kImageRollback,
  kDownloadFailed,
  kRetriesExhausted,  // transport kept failing past RetryPolicy::max_attempts
  kPowerLoss,         // power cut mid-install; journal watermark survives
};
const char* ota_error_name(OtaError e);

/// Full-verification (primary ECU) client.
class FullVerificationClient {
 public:
  /// Pins the initial trusted roots of both repositories (factory install).
  FullVerificationClient(std::string name, Signed<RootMeta> director_root,
                         Signed<RootMeta> image_root);

  /// Verifies metadata from both repositories and checks that they agree on
  /// `image_name` for `hardware_id`; verifies the downloaded image; returns
  /// the validated TargetInfo or the first error.
  struct Outcome {
    OtaError error = OtaError::kOk;
    TargetInfo target;
    util::Bytes image;
  };
  Outcome fetch_and_verify(const MetadataBundle& director,
                           const MetadataBundle& image_repo,
                           const Repository& director_repo,
                           const Repository& image_repo_store,
                           const std::string& image_name,
                           const std::string& hardware_id,
                           std::uint32_t installed_version, SimTime now);

  /// Verifies one repository's metadata chain (no cross-check, no image).
  OtaError verify_chain(const MetadataBundle& bundle, bool is_director,
                        SimTime now);

  /// Exponential-backoff retry + resumable chunked download policy for
  /// fetch_and_verify_with_retry.
  struct RetryPolicy {
    int max_attempts = 5;
    SimTime initial_backoff = SimTime::from_ms(100);
    double multiplier = 2.0;
    SimTime max_backoff = SimTime::from_s(60);
    std::size_t chunk_bytes = 16 * 1024;
    std::uint64_t link_bytes_per_sec = 1'000'000;  // download link rate
    /// Jittered backoff: each backoff is scaled by a factor drawn uniformly
    /// from [1 - jitter, 1 + jitter] out of `jitter_rng` (e.g. the owning
    /// FaultPlan's RNG or a fork of it), decorrelating fleet-wide retry
    /// storms while staying bit-deterministic per seed. jitter == 0 or a
    /// null rng keeps the pure exponential schedule (and draws nothing, so
    /// an unjittered client never perturbs a shared RNG stream).
    double jitter = 0.0;
    util::Rng* jitter_rng = nullptr;
    /// When non-null, every metadata and chunk fetch goes through this
    /// serving front instead of the raw repositories. kRetryAfter responses
    /// defer the fetch to the server-suggested time — honoring the server's
    /// slot (instead of blind local exponential backoff) is what keeps a
    /// shed herd de-synchronized. Deferrals do NOT count against
    /// max_attempts (the server asked us to wait; nothing failed);
    /// kUnavailable falls back to the transport-error backoff path.
    RepositoryServer* server = nullptr;
    ServeClass server_class = ServeClass::kCampaign;
    /// Safety valve: total kRetryAfter deferrals a single fetch will honor
    /// before giving up with kRetriesExhausted.
    int max_server_deferrals = 256;
  };
  struct RetryOutcome {
    Outcome outcome;
    int attempts = 0;
    std::size_t resumed_from = 0;  // offset the final attempt resumed at
    /// Bytes NOT refetched because a pre-reboot staging journal survived
    /// (fetch_and_stage_with_retry only; the journal watermark at start).
    std::size_t resume_bytes_saved = 0;
    /// Bytes that actually crossed the link (delta-compressed when served
    /// through a RepositoryServer with a registered delta base).
    std::size_t wire_bytes = 0;
    int server_deferrals = 0;  // kRetryAfter responses honored
    SimTime finished_at = SimTime::zero();
  };
  using RetryCallback = std::function<void(const RetryOutcome&)>;

  /// Scheduler-driven fetch_and_verify that survives repository outages:
  /// each attempt re-verifies metadata, then downloads the image in chunks
  /// at the link rate, resuming from the last good offset after an outage.
  /// Transport faults back off exponentially; metadata verification failures
  /// are final (a retry cannot fix a bad signature). Ends with kOk, the
  /// first non-transport error, or kRetriesExhausted via `done`.
  void fetch_and_verify_with_retry(sim::Scheduler& sched,
                                   const Repository& director_repo,
                                   const Repository& image_repo,
                                   const std::string& image_name,
                                   const std::string& hardware_id,
                                   std::uint32_t installed_version,
                                   RetryPolicy policy, RetryCallback done);

  /// fetch_and_verify_with_retry, but verified chunks stream straight into
  /// `flash`'s staging journal instead of a RAM buffer. If a journal for the
  /// same content digest already exists (e.g. a power cut interrupted a
  /// previous session and boot() recovered the watermark), the download
  /// resumes from the watermark and `RetryOutcome::resume_bytes_saved`
  /// records the bytes not refetched. The image digest is checked by
  /// `Flash::stage_finish`; on success the outcome carries the target but an
  /// empty image (the bytes live in flash). An injected power cut ends the
  /// fetch with OtaError::kPowerLoss — re-run after `flash.boot()` to resume.
  void fetch_and_stage_with_retry(sim::Scheduler& sched,
                                  const Repository& director_repo,
                                  const Repository& image_repo,
                                  const std::string& image_name,
                                  const std::string& hardware_id,
                                  std::uint32_t installed_version,
                                  RetryPolicy policy, ecu::Flash& flash,
                                  RetryCallback done);

  std::uint64_t verify_ok() const { return c_verify_ok_->value(); }
  std::uint64_t verify_fail() const { return c_verify_fail_->value(); }
  sim::TraceScope& trace() { return trace_; }
  /// Engine behind all metadata signature checks: poll cycles re-verify
  /// identical role metadata, so steady-state verification is a cache hit.
  crypto::VerifyEngine& verify_engine() { return verify_engine_; }

  /// Rebinds trace events and counters onto a shared telemetry plane.
  void bind_telemetry(const sim::Telemetry& t);

 private:
  struct RepoState {
    Signed<RootMeta> trusted_root;
    std::uint32_t last_timestamp = 0;
    std::uint32_t last_snapshot = 0;
    std::uint32_t last_targets = 0;
  };
  struct RetryState;

  OtaError verify_repo(const MetadataBundle& bundle, RepoState& st, SimTime now,
                       const TargetsMeta** out_targets);
  /// Metadata verification + cross-repo target agreement, no image download.
  OtaError resolve_target(const MetadataBundle& director,
                          const MetadataBundle& image_repo,
                          const std::string& image_name,
                          const std::string& hardware_id,
                          std::uint32_t installed_version, SimTime now,
                          TargetInfo* out_info);
  Outcome fetch_and_verify_inner(const MetadataBundle& director,
                                 const MetadataBundle& image_repo,
                                 const Repository& director_repo,
                                 const Repository& image_repo_store,
                                 const std::string& image_name,
                                 const std::string& hardware_id,
                                 std::uint32_t installed_version, SimTime now);
  void retry_attempt(const std::shared_ptr<RetryState>& st);
  void retry_fetch_chunk(const std::shared_ptr<RetryState>& st);
  void retry_fail_transport(const std::shared_ptr<RetryState>& st);
  void retry_finish(const std::shared_ptr<RetryState>& st, Outcome out);
  void wire_telemetry();

  std::string name_;
  RepoState director_;
  RepoState image_;
  crypto::VerifyEngine verify_engine_;
  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_verify_ok_ = nullptr;
  sim::Counter* c_verify_fail_ = nullptr;
  sim::Counter* c_fetch_attempts_ = nullptr;
  sim::Counter* c_fetch_retries_ = nullptr;
  sim::Counter* c_bytes_fetched_ = nullptr;
  sim::Counter* c_backoffs_ = nullptr;
  sim::Counter* c_backoff_ns_ = nullptr;
  sim::Counter* c_resume_bytes_saved_ = nullptr;
  sim::Counter* c_server_deferrals_ = nullptr;
  sim::Counter* c_wire_bytes_ = nullptr;
  sim::LatencyHistogram* h_backoff_ms_ = nullptr;
  sim::TraceId k_verify_ok_ = 0, k_verify_fail_ = 0, k_fetch_attempt_ = 0,
               k_fetch_resume_ = 0, k_fetch_interrupted_ = 0, k_backoff_ = 0,
               k_retries_exhausted_ = 0, k_stage_resume_ = 0, k_power_loss_ = 0,
               k_retry_after_ = 0;
};

/// Partial-verification (secondary ECU) client: pinned director-targets key,
/// expiry and version checks only.
class PartialVerificationClient {
 public:
  PartialVerificationClient(std::string name, crypto::EcdsaPublicKey targets_key)
      : name_(std::move(name)), targets_key_(std::move(targets_key)) {}

  struct Outcome {
    OtaError error = OtaError::kOk;
    TargetInfo target;
  };
  Outcome verify(const Signed<TargetsMeta>& director_targets,
                 const std::string& image_name, const std::string& hardware_id,
                 std::uint32_t installed_version, SimTime now);

 private:
  std::string name_;
  crypto::EcdsaPublicKey targets_key_;
  std::uint32_t last_targets_ = 0;
};

/// Installs a verified image into an ECU's flash (stage + activate + commit
/// after the self-test callback returns true; reverts otherwise).
enum class InstallResult {
  kCommitted,
  kRevertedSelfTest,
  kStageRejected,
  kPowerLoss,  // cut during activation/commit marker; boot() decides fate
};
const char* install_result_name(InstallResult r);
InstallResult install_image(ecu::Flash& flash, const std::string& image_name,
                            std::uint32_t version, const util::Bytes& image,
                            const std::function<bool()>& self_test);

/// Activates an already-STAGED image (e.g. streamed in by
/// fetch_and_stage_with_retry) with a confirm-or-revert deadline: if the
/// vehicle reboots after `now + confirm_timeout` without the commit marker,
/// `Flash::boot()` auto-reverts to the previous bank. Runs the self-test and
/// commits (raising the rollback floor) or reverts, exactly like
/// install_image, but power-cut aware.
InstallResult install_staged(ecu::Flash& flash, util::SimTime now,
                             util::SimTime confirm_timeout,
                             const std::function<bool()>& self_test);

}  // namespace aseck::ota
