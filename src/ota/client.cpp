#include "ota/client.hpp"

#include <algorithm>
#include <cmath>

namespace aseck::ota {

const char* ota_error_name(OtaError e) {
  switch (e) {
    case OtaError::kOk: return "ok";
    case OtaError::kRootSignature: return "root_signature";
    case OtaError::kRootExpired: return "root_expired";
    case OtaError::kTimestampSignature: return "timestamp_signature";
    case OtaError::kTimestampExpired: return "timestamp_expired";
    case OtaError::kTimestampRollback: return "timestamp_rollback";
    case OtaError::kSnapshotSignature: return "snapshot_signature";
    case OtaError::kSnapshotExpired: return "snapshot_expired";
    case OtaError::kSnapshotHashMismatch: return "snapshot_hash_mismatch";
    case OtaError::kSnapshotRollback: return "snapshot_rollback";
    case OtaError::kTargetsSignature: return "targets_signature";
    case OtaError::kTargetsExpired: return "targets_expired";
    case OtaError::kTargetsVersionMismatch: return "targets_version_mismatch";
    case OtaError::kTargetUnknown: return "target_unknown";
    case OtaError::kReposDisagree: return "repos_disagree";
    case OtaError::kImageHashMismatch: return "image_hash_mismatch";
    case OtaError::kImageLengthMismatch: return "image_length_mismatch";
    case OtaError::kHardwareMismatch: return "hardware_mismatch";
    case OtaError::kImageRollback: return "image_rollback";
    case OtaError::kDownloadFailed: return "download_failed";
    case OtaError::kRetriesExhausted: return "retries_exhausted";
    case OtaError::kPowerLoss: return "power_loss";
  }
  return "?";
}

FullVerificationClient::FullVerificationClient(std::string name,
                                               Signed<RootMeta> director_root,
                                               Signed<RootMeta> image_root)
    : name_(std::move(name)),
      trace_("ota." + name_),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  director_.trusted_root = std::move(director_root);
  image_.trusted_root = std::move(image_root);
  wire_telemetry();
}

void FullVerificationClient::wire_telemetry() {
  const std::string p = "ota." + name_ + ".";
  const auto rewire = [this, &p](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(p + key);
    if (c && c != &nc) nc.inc(c->value());
    c = &nc;
  };
  rewire(c_verify_ok_, "verify_ok");
  rewire(c_verify_fail_, "verify_fail");
  rewire(c_fetch_attempts_, "fetch_attempts");
  rewire(c_fetch_retries_, "fetch_retries");
  rewire(c_bytes_fetched_, "bytes_fetched");
  rewire(c_backoffs_, "backoffs");
  rewire(c_backoff_ns_, "backoff_ns_total");
  rewire(c_resume_bytes_saved_, "resume_bytes_saved");
  rewire(c_server_deferrals_, "server_deferrals");
  rewire(c_wire_bytes_, "wire_bytes");
  h_backoff_ms_ = &metrics_->histogram(p + "backoff_ms", 0.0, 60'000.0, 60);
  k_verify_ok_ = trace_.kind("verify_ok");
  k_verify_fail_ = trace_.kind("verify_fail");
  k_fetch_attempt_ = trace_.kind("fetch_attempt");
  k_fetch_resume_ = trace_.kind("fetch_resume");
  k_fetch_interrupted_ = trace_.kind("fetch_interrupted");
  k_backoff_ = trace_.kind("backoff");
  k_retries_exhausted_ = trace_.kind("retries_exhausted");
  k_stage_resume_ = trace_.kind("stage_resume");
  k_power_loss_ = trace_.kind("power_loss");
  k_retry_after_ = trace_.kind("retry_after");
}

void FullVerificationClient::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
  verify_engine_.bind_metrics(*metrics_);
}

OtaError FullVerificationClient::verify_repo(const MetadataBundle& bundle,
                                             RepoState& st, SimTime now,
                                             const TargetsMeta** out_targets) {
  // 1. Root: if newer than the pinned root, it must verify against the
  //    *pinned* root's key set (chained trust), then against its own.
  const RootMeta& trusted = st.trusted_root.body;
  const RootMeta& offered = bundle.root.body;
  const util::Bytes root_payload = offered.serialize();
  if (offered.version > trusted.version) {
    if (!verify_threshold(root_payload, bundle.root.signatures,
                          trusted.roles.at(Role::kRoot), trusted.keys,
                          &verify_engine_) ||
        !verify_threshold(root_payload, bundle.root.signatures,
                          offered.roles.at(Role::kRoot), offered.keys,
                          &verify_engine_)) {
      return OtaError::kRootSignature;
    }
    st.trusted_root = bundle.root;  // accept rotation
  } else if (offered.version == trusted.version) {
    if (!verify_threshold(root_payload, bundle.root.signatures,
                          trusted.roles.at(Role::kRoot), trusted.keys,
                          &verify_engine_)) {
      return OtaError::kRootSignature;
    }
  } else {
    return OtaError::kRootSignature;  // root rollback
  }
  const RootMeta& root = st.trusted_root.body;
  if (now > root.expires) return OtaError::kRootExpired;

  // 2. Timestamp.
  const auto& ts = bundle.timestamp;
  if (!verify_threshold(ts.body.serialize(), ts.signatures,
                        root.roles.at(Role::kTimestamp), root.keys,
                        &verify_engine_)) {
    return OtaError::kTimestampSignature;
  }
  if (now > ts.body.expires) return OtaError::kTimestampExpired;
  if (ts.body.version < st.last_timestamp) return OtaError::kTimestampRollback;

  // 3. Snapshot: hash pinned by timestamp.
  const auto& snap = bundle.snapshot;
  const util::Bytes snap_payload = snap.body.serialize();
  if (crypto::sha256_bytes(snap_payload) != ts.body.snapshot_hash ||
      snap.body.version != ts.body.snapshot_version) {
    return OtaError::kSnapshotHashMismatch;
  }
  if (!verify_threshold(snap_payload, snap.signatures,
                        root.roles.at(Role::kSnapshot), root.keys,
                        &verify_engine_)) {
    return OtaError::kSnapshotSignature;
  }
  if (now > snap.body.expires) return OtaError::kSnapshotExpired;
  if (snap.body.version < st.last_snapshot) return OtaError::kSnapshotRollback;

  // 4. Targets: version pinned by snapshot.
  const auto& tgt = bundle.targets;
  if (tgt.body.version != snap.body.targets_version) {
    return OtaError::kTargetsVersionMismatch;
  }
  if (!verify_threshold(tgt.body.serialize(), tgt.signatures,
                        root.roles.at(Role::kTargets), root.keys,
                        &verify_engine_)) {
    return OtaError::kTargetsSignature;
  }
  if (now > tgt.body.expires) return OtaError::kTargetsExpired;

  st.last_timestamp = ts.body.version;
  st.last_snapshot = snap.body.version;
  st.last_targets = tgt.body.version;
  if (out_targets) *out_targets = &tgt.body;
  return OtaError::kOk;
}

OtaError FullVerificationClient::verify_chain(const MetadataBundle& bundle,
                                              bool is_director, SimTime now) {
  return verify_repo(bundle, is_director ? director_ : image_, now, nullptr);
}

FullVerificationClient::Outcome FullVerificationClient::fetch_and_verify(
    const MetadataBundle& director, const MetadataBundle& image_repo,
    const Repository& director_repo, const Repository& image_repo_store,
    const std::string& image_name, const std::string& hardware_id,
    std::uint32_t installed_version, SimTime now) {
  Outcome out =
      fetch_and_verify_inner(director, image_repo, director_repo,
                             image_repo_store, image_name, hardware_id,
                             installed_version, now);
  if (out.error == OtaError::kOk) {
    c_verify_ok_->inc();
    ASECK_TRACE(trace_, now, k_verify_ok_, "image=" + image_name);
  } else {
    c_verify_fail_->inc();
    ASECK_TRACE(trace_, now, k_verify_fail_,
                std::string(ota_error_name(out.error)) + " image=" + image_name);
  }
  return out;
}

OtaError FullVerificationClient::resolve_target(
    const MetadataBundle& director, const MetadataBundle& image_repo,
    const std::string& image_name, const std::string& hardware_id,
    std::uint32_t installed_version, SimTime now, TargetInfo* out_info) {
  const TargetsMeta* dir_targets = nullptr;
  const TargetsMeta* img_targets = nullptr;
  OtaError err = verify_repo(director, director_, now, &dir_targets);
  if (err != OtaError::kOk) return err;
  err = verify_repo(image_repo, image_, now, &img_targets);
  if (err != OtaError::kOk) return err;

  const auto dit = dir_targets->targets.find(image_name);
  const auto iit = img_targets->targets.find(image_name);
  if (dit == dir_targets->targets.end() || iit == img_targets->targets.end()) {
    return OtaError::kTargetUnknown;
  }
  // Director and image repo must agree exactly (anti mix-and-match).
  if (!(dit->second == iit->second)) return OtaError::kReposDisagree;
  const TargetInfo& info = dit->second;
  if (info.hardware_id != hardware_id) return OtaError::kHardwareMismatch;
  if (info.version < installed_version) return OtaError::kImageRollback;
  if (out_info) *out_info = info;
  return OtaError::kOk;
}

FullVerificationClient::Outcome FullVerificationClient::fetch_and_verify_inner(
    const MetadataBundle& director, const MetadataBundle& image_repo,
    const Repository& director_repo, const Repository& image_repo_store,
    const std::string& image_name, const std::string& hardware_id,
    std::uint32_t installed_version, SimTime now) {
  Outcome out;
  TargetInfo info;
  out.error = resolve_target(director, image_repo, image_name, hardware_id,
                             installed_version, now, &info);
  if (out.error != OtaError::kOk) return out;
  // Download preferentially from the image repo; director may also serve.
  const util::Bytes* image = image_repo_store.download(image_name);
  if (!image) image = director_repo.download(image_name);
  if (!image) {
    out.error = OtaError::kDownloadFailed;
    return out;
  }
  if (image->size() != info.length) {
    out.error = OtaError::kImageLengthMismatch;
    return out;
  }
  if (crypto::sha256_bytes(*image) != info.sha256) {
    out.error = OtaError::kImageHashMismatch;
    return out;
  }
  out.target = info;
  out.image = *image;
  out.error = OtaError::kOk;
  return out;
}

// --- retrying resumable fetch ------------------------------------------------

struct FullVerificationClient::RetryState {
  sim::Scheduler* sched = nullptr;
  const Repository* director = nullptr;
  const Repository* image_repo = nullptr;
  std::string image_name;
  std::string hardware_id;
  std::uint32_t installed_version = 0;
  RetryPolicy policy;
  RetryCallback done;
  int attempt = 0;
  TargetInfo info;          // resolved target of the current attempt
  util::Bytes buffer;       // bytes fetched so far (RAM mode only)
  std::size_t offset = 0;   // bytes delivered; survives failed attempts
  std::size_t resumed_from = 0;
  ecu::Flash* flash = nullptr;     // non-null: stream into the staging journal
  std::size_t resume_saved = 0;    // journal bytes inherited from a past boot
  int deferrals = 0;               // kRetryAfter responses honored so far
  std::size_t wire_bytes = 0;      // bytes that crossed the link
};

void FullVerificationClient::fetch_and_verify_with_retry(
    sim::Scheduler& sched, const Repository& director_repo,
    const Repository& image_repo, const std::string& image_name,
    const std::string& hardware_id, std::uint32_t installed_version,
    RetryPolicy policy, RetryCallback done) {
  auto st = std::make_shared<RetryState>();
  st->sched = &sched;
  st->director = &director_repo;
  st->image_repo = &image_repo;
  st->image_name = image_name;
  st->hardware_id = hardware_id;
  st->installed_version = installed_version;
  st->policy = policy;
  st->done = std::move(done);
  sched.schedule_after(SimTime::zero(), [this, st] { retry_attempt(st); });
}

void FullVerificationClient::fetch_and_stage_with_retry(
    sim::Scheduler& sched, const Repository& director_repo,
    const Repository& image_repo, const std::string& image_name,
    const std::string& hardware_id, std::uint32_t installed_version,
    RetryPolicy policy, ecu::Flash& flash, RetryCallback done) {
  auto st = std::make_shared<RetryState>();
  st->sched = &sched;
  st->director = &director_repo;
  st->image_repo = &image_repo;
  st->image_name = image_name;
  st->hardware_id = hardware_id;
  st->installed_version = installed_version;
  st->policy = policy;
  st->flash = &flash;
  st->done = std::move(done);
  sched.schedule_after(SimTime::zero(), [this, st] { retry_attempt(st); });
}

void FullVerificationClient::retry_attempt(
    const std::shared_ptr<RetryState>& st) {
  const SimTime now = st->sched->now();
  SimTime response_latency = SimTime::zero();
  TargetInfo info;
  if (st->policy.server) {
    // Serving-front path: metadata comes as one coalesced snapshot, and a
    // kRetryAfter answer is an instruction, not a failure — honoring the
    // server's slot keeps a shed herd de-synchronized, so deferrals never
    // count against max_attempts.
    const MetadataResponse mr =
        st->policy.server->fetch_metadata(st->policy.server_class, now);
    if (mr.status == ServeStatus::kRetryAfter) {
      if (++st->deferrals > st->policy.max_server_deferrals) {
        ASECK_TRACE(trace_, now, k_retries_exhausted_,
                    "deferrals=" + std::to_string(st->deferrals));
        Outcome out;
        out.error = OtaError::kRetriesExhausted;
        retry_finish(st, std::move(out));
        return;
      }
      c_server_deferrals_->inc();
      ASECK_TRACE(trace_, now, k_retry_after_,
                  "ns=" + std::to_string(mr.retry_after.ns) + " at=metadata");
      st->sched->schedule_after(mr.retry_after,
                                [this, st] { retry_attempt(st); });
      return;
    }
    ++st->attempt;
    c_fetch_attempts_->inc();
    ASECK_TRACE(trace_, now, k_fetch_attempt_,
                "n=" + std::to_string(st->attempt) +
                    " image=" + st->image_name);
    if (mr.status == ServeStatus::kUnavailable) {
      ASECK_TRACE(trace_, now, k_fetch_interrupted_, "server_unavailable");
      retry_fail_transport(st);
      return;
    }
    response_latency = mr.latency;
    const OtaError err = resolve_target(
        *mr.snapshot.director, *mr.snapshot.image, st->image_name,
        st->hardware_id, st->installed_version, now, &info);
    if (err != OtaError::kOk) {
      // Metadata failures are final: a retry cannot fix a bad signature,
      // rollback, or repo disagreement.
      Outcome out;
      out.error = err;
      retry_finish(st, std::move(out));
      return;
    }
  } else {
    ++st->attempt;
    c_fetch_attempts_->inc();
    ASECK_TRACE(trace_, now, k_fetch_attempt_,
                "n=" + std::to_string(st->attempt) +
                    " image=" + st->image_name);
    if (!st->director->available() || !st->image_repo->available()) {
      ASECK_TRACE(trace_, now, k_fetch_interrupted_, "repo_unavailable");
      retry_fail_transport(st);
      return;
    }
    const OtaError err = resolve_target(
        st->director->metadata(), st->image_repo->metadata(), st->image_name,
        st->hardware_id, st->installed_version, now, &info);
    if (err != OtaError::kOk) {
      // Metadata failures are final: a retry cannot fix a bad signature,
      // rollback, or repo disagreement.
      Outcome out;
      out.error = err;
      retry_finish(st, std::move(out));
      return;
    }
  }
  if (st->offset > 0 &&
      (info.sha256 != st->info.sha256 || info.length != st->info.length)) {
    // The target changed between attempts; a partial download of the old
    // bytes is useless.
    st->offset = 0;
    st->buffer.clear();
  }
  st->info = info;
  if (st->flash) {
    // Open (or resume) the staging journal keyed by the content digest. A
    // different digest resets the journal inside stage_begin.
    ecu::Flash::StageRequest req;
    req.name = st->image_name;
    req.version = info.version;
    req.total_bytes = info.length;
    req.sha256 = info.sha256;
    if (!st->flash->stage_begin(req)) {
      Outcome out;
      out.error = st->flash->lost_power() ? OtaError::kPowerLoss
                                          : OtaError::kImageRollback;
      retry_finish(st, std::move(out));
      return;
    }
    const std::uint64_t wm = st->flash->staging_watermark();
    if (st->attempt == 1 && wm > 0) {
      // Journal survived a previous session (power cut + boot recovery):
      // these bytes never cross the link again.
      st->resume_saved = static_cast<std::size_t>(wm);
      c_resume_bytes_saved_->inc(wm);
      ASECK_TRACE(trace_, now, k_stage_resume_,
                  "watermark=" + std::to_string(wm) +
                      " image=" + st->image_name);
    }
    st->offset = static_cast<std::size_t>(wm);
  }
  st->resumed_from = st->offset;
  if (st->offset > 0) {
    ASECK_TRACE(trace_, now, k_fetch_resume_,
                "offset=" + std::to_string(st->offset));
  }
  if (response_latency > SimTime::zero()) {
    // The metadata response spent queue + service time at the front.
    st->sched->schedule_after(response_latency,
                              [this, st] { retry_fetch_chunk(st); });
  } else {
    retry_fetch_chunk(st);
  }
}

void FullVerificationClient::retry_fetch_chunk(
    const std::shared_ptr<RetryState>& st) {
  const SimTime now = st->sched->now();
  if (st->flash && st->offset >= st->info.length) {
    // Seal the journal: page CRCs + content digest are checked in flash.
    const ecu::FlashWrite w = st->flash->stage_finish();
    Outcome out;
    if (w == ecu::FlashWrite::kOk) {
      out.target = st->info;
      out.error = OtaError::kOk;  // bytes live in flash, not in out.image
      retry_finish(st, std::move(out));
      return;
    }
    if (w == ecu::FlashWrite::kPowerLoss) {
      ASECK_TRACE(trace_, now, k_power_loss_,
                  "at=stage_finish image=" + st->image_name);
      out.error = OtaError::kPowerLoss;
      retry_finish(st, std::move(out));
      return;
    }
    // kRejected: journal bytes did not match the digest (erased inside
    // stage_finish); restart the download on the next attempt.
    st->offset = 0;
    ASECK_TRACE(trace_, now, k_fetch_interrupted_, "hash_mismatch_restart");
    retry_fail_transport(st);
    return;
  }
  if (st->offset >= st->info.length) {
    Outcome out;
    if (st->buffer.size() != st->info.length) {
      out.error = OtaError::kImageLengthMismatch;
      retry_finish(st, std::move(out));
      return;
    }
    if (crypto::sha256_bytes(st->buffer) != st->info.sha256) {
      // Bytes changed under us mid-download (repo republished); restart the
      // download on the next attempt.
      st->offset = 0;
      st->buffer.clear();
      ASECK_TRACE(trace_, now, k_fetch_interrupted_, "hash_mismatch_restart");
      retry_fail_transport(st);
      return;
    }
    out.target = st->info;
    out.image = st->buffer;
    out.error = OtaError::kOk;
    retry_finish(st, std::move(out));
    return;
  }
  std::optional<util::Bytes> chunk;
  std::size_t wire = 0;                      // bytes crossing the link
  SimTime server_latency = SimTime::zero();  // queue + service at the front
  if (st->policy.server) {
    ChunkResponse cr =
        st->policy.server->fetch_chunk(st->policy.server_class, st->image_name,
                                       st->offset, st->policy.chunk_bytes, now);
    if (cr.status == ServeStatus::kRetryAfter) {
      // Mid-download shed: keep the offset, come back at the server's slot.
      if (++st->deferrals > st->policy.max_server_deferrals) {
        ASECK_TRACE(trace_, now, k_retries_exhausted_,
                    "deferrals=" + std::to_string(st->deferrals));
        Outcome out;
        out.error = OtaError::kRetriesExhausted;
        retry_finish(st, std::move(out));
        return;
      }
      c_server_deferrals_->inc();
      ASECK_TRACE(trace_, now, k_retry_after_,
                  "ns=" + std::to_string(cr.retry_after.ns) + " at=chunk");
      st->sched->schedule_after(cr.retry_after,
                                [this, st] { retry_fetch_chunk(st); });
      return;
    }
    if (cr.status == ServeStatus::kUnavailable) {
      ASECK_TRACE(trace_, now, k_fetch_interrupted_,
                  "offset=" + std::to_string(st->offset));
      retry_fail_transport(st);
      return;
    }
    wire = cr.wire_bytes;
    server_latency = cr.latency;
    chunk = std::move(cr.chunk);
  } else {
    // Image repo is the primary mirror; the director may also serve bytes.
    chunk = st->image_repo->download_range(st->image_name, st->offset,
                                           st->policy.chunk_bytes);
    if (!chunk) {
      chunk = st->director->download_range(st->image_name, st->offset,
                                           st->policy.chunk_bytes);
    }
    if (!chunk) {
      ASECK_TRACE(trace_, now, k_fetch_interrupted_,
                  "offset=" + std::to_string(st->offset));
      retry_fail_transport(st);
      return;
    }
    wire = chunk->size();
  }
  if (chunk->empty()) {
    // Stored image is shorter than the metadata claims.
    Outcome out;
    out.error = OtaError::kImageLengthMismatch;
    retry_finish(st, std::move(out));
    return;
  }
  if (st->flash) {
    const ecu::FlashWrite w = st->flash->stage_write(*chunk);
    if (w == ecu::FlashWrite::kPowerLoss) {
      ASECK_TRACE(trace_, now, k_power_loss_,
                  "offset=" + std::to_string(st->offset) +
                      " image=" + st->image_name);
      Outcome out;
      out.error = OtaError::kPowerLoss;
      retry_finish(st, std::move(out));
      return;
    }
    if (w == ecu::FlashWrite::kRejected) {
      Outcome out;
      out.error = OtaError::kDownloadFailed;
      retry_finish(st, std::move(out));
      return;
    }
  } else {
    st->buffer.insert(st->buffer.end(), chunk->begin(), chunk->end());
  }
  st->offset += chunk->size();
  st->wire_bytes += wire;
  c_bytes_fetched_->inc(chunk->size());
  c_wire_bytes_->inc(wire);
  // Transfer time is paid on WIRE bytes (a delta-compressed chunk crosses
  // the link faster), plus whatever the serving front charged in queueing.
  const SimTime tx =
      SimTime::from_seconds_f(
          static_cast<double>(wire) /
          static_cast<double>(st->policy.link_bytes_per_sec)) +
      server_latency;
  st->sched->schedule_after(tx, [this, st] { retry_fetch_chunk(st); });
}

void FullVerificationClient::retry_fail_transport(
    const std::shared_ptr<RetryState>& st) {
  if (st->attempt >= st->policy.max_attempts) {
    ASECK_TRACE(trace_, st->sched->now(), k_retries_exhausted_,
                "attempts=" + std::to_string(st->attempt));
    Outcome out;
    out.error = OtaError::kRetriesExhausted;
    retry_finish(st, std::move(out));
    return;
  }
  c_fetch_retries_->inc();
  const double base = st->policy.initial_backoff.seconds() *
                      std::pow(st->policy.multiplier, st->attempt - 1);
  double capped = std::min(base, st->policy.max_backoff.seconds());
  if (st->policy.jitter > 0 && st->policy.jitter_rng) {
    capped *= st->policy.jitter_rng->uniform_real(1.0 - st->policy.jitter,
                                                  1.0 + st->policy.jitter);
  }
  const SimTime backoff = SimTime::from_seconds_f(capped);
  c_backoffs_->inc();
  c_backoff_ns_->inc(backoff.ns);
  h_backoff_ms_->record(backoff.ms());
  ASECK_TRACE(trace_, st->sched->now(), k_backoff_,
              "ns=" + std::to_string(backoff.ns));
  st->sched->schedule_after(backoff, [this, st] { retry_attempt(st); });
}

void FullVerificationClient::retry_finish(const std::shared_ptr<RetryState>& st,
                                          Outcome out) {
  const SimTime now = st->sched->now();
  if (out.error == OtaError::kOk) {
    c_verify_ok_->inc();
    ASECK_TRACE(trace_, now, k_verify_ok_, "image=" + st->image_name);
  } else {
    c_verify_fail_->inc();
    ASECK_TRACE(trace_, now, k_verify_fail_,
                std::string(ota_error_name(out.error)) +
                    " image=" + st->image_name);
  }
  RetryOutcome ro;
  ro.outcome = std::move(out);
  ro.attempts = st->attempt;
  ro.resumed_from = st->resumed_from;
  ro.resume_bytes_saved = st->resume_saved;
  ro.wire_bytes = st->wire_bytes;
  ro.server_deferrals = st->deferrals;
  ro.finished_at = now;
  if (st->done) st->done(ro);
}

PartialVerificationClient::Outcome PartialVerificationClient::verify(
    const Signed<TargetsMeta>& director_targets, const std::string& image_name,
    const std::string& hardware_id, std::uint32_t installed_version,
    SimTime now) {
  Outcome out;
  // Single pinned key, threshold 1.
  bool ok = false;
  const util::Bytes payload = director_targets.body.serialize();
  for (const Signature& s : director_targets.signatures) {
    if (crypto::ecdsa_verify(targets_key_, payload, s.sig)) {
      ok = true;
      break;
    }
  }
  if (!ok) {
    out.error = OtaError::kTargetsSignature;
    return out;
  }
  if (now > director_targets.body.expires) {
    out.error = OtaError::kTargetsExpired;
    return out;
  }
  if (director_targets.body.version < last_targets_) {
    out.error = OtaError::kTargetsVersionMismatch;
    return out;
  }
  const auto it = director_targets.body.targets.find(image_name);
  if (it == director_targets.body.targets.end()) {
    out.error = OtaError::kTargetUnknown;
    return out;
  }
  if (it->second.hardware_id != hardware_id) {
    out.error = OtaError::kHardwareMismatch;
    return out;
  }
  if (it->second.version < installed_version) {
    out.error = OtaError::kImageRollback;
    return out;
  }
  last_targets_ = director_targets.body.version;
  out.target = it->second;
  return out;
}

const char* install_result_name(InstallResult r) {
  switch (r) {
    case InstallResult::kCommitted: return "committed";
    case InstallResult::kRevertedSelfTest: return "reverted_self_test";
    case InstallResult::kStageRejected: return "stage_rejected";
    case InstallResult::kPowerLoss: return "power_loss";
  }
  return "?";
}

InstallResult install_image(ecu::Flash& flash, const std::string& image_name,
                            std::uint32_t version, const util::Bytes& image,
                            const std::function<bool()>& self_test) {
  if (!flash.stage(ecu::FirmwareImage{image_name, version, image})) {
    return InstallResult::kStageRejected;
  }
  flash.activate();
  if (self_test && !self_test()) {
    flash.revert();
    return InstallResult::kRevertedSelfTest;
  }
  flash.commit();
  return InstallResult::kCommitted;
}

InstallResult install_staged(ecu::Flash& flash, util::SimTime now,
                             util::SimTime confirm_timeout,
                             const std::function<bool()>& self_test) {
  if (!flash.staged()) return InstallResult::kStageRejected;
  if (!flash.activate(now, confirm_timeout)) {
    return flash.lost_power() ? InstallResult::kPowerLoss
                              : InstallResult::kStageRejected;
  }
  if (self_test && !self_test()) {
    flash.revert();
    return InstallResult::kRevertedSelfTest;
  }
  flash.commit();
  // A cut at the commit marker leaves the slot ACTIVE-unconfirmed; the
  // confirm deadline machinery settles it at the next boot.
  if (flash.lost_power()) return InstallResult::kPowerLoss;
  return InstallResult::kCommitted;
}

}  // namespace aseck::ota
