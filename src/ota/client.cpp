#include "ota/client.hpp"

namespace aseck::ota {

const char* ota_error_name(OtaError e) {
  switch (e) {
    case OtaError::kOk: return "ok";
    case OtaError::kRootSignature: return "root_signature";
    case OtaError::kRootExpired: return "root_expired";
    case OtaError::kTimestampSignature: return "timestamp_signature";
    case OtaError::kTimestampExpired: return "timestamp_expired";
    case OtaError::kTimestampRollback: return "timestamp_rollback";
    case OtaError::kSnapshotSignature: return "snapshot_signature";
    case OtaError::kSnapshotExpired: return "snapshot_expired";
    case OtaError::kSnapshotHashMismatch: return "snapshot_hash_mismatch";
    case OtaError::kSnapshotRollback: return "snapshot_rollback";
    case OtaError::kTargetsSignature: return "targets_signature";
    case OtaError::kTargetsExpired: return "targets_expired";
    case OtaError::kTargetsVersionMismatch: return "targets_version_mismatch";
    case OtaError::kTargetUnknown: return "target_unknown";
    case OtaError::kReposDisagree: return "repos_disagree";
    case OtaError::kImageHashMismatch: return "image_hash_mismatch";
    case OtaError::kImageLengthMismatch: return "image_length_mismatch";
    case OtaError::kHardwareMismatch: return "hardware_mismatch";
    case OtaError::kImageRollback: return "image_rollback";
    case OtaError::kDownloadFailed: return "download_failed";
  }
  return "?";
}

FullVerificationClient::FullVerificationClient(std::string name,
                                               Signed<RootMeta> director_root,
                                               Signed<RootMeta> image_root)
    : name_(std::move(name)),
      trace_("ota." + name_),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  director_.trusted_root = std::move(director_root);
  image_.trusted_root = std::move(image_root);
  wire_telemetry();
}

void FullVerificationClient::wire_telemetry() {
  const std::string p = "ota." + name_ + ".";
  const auto rewire = [this, &p](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(p + key);
    if (c && c != &nc) nc.inc(c->value());
    c = &nc;
  };
  rewire(c_verify_ok_, "verify_ok");
  rewire(c_verify_fail_, "verify_fail");
  k_verify_ok_ = trace_.kind("verify_ok");
  k_verify_fail_ = trace_.kind("verify_fail");
}

void FullVerificationClient::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

OtaError FullVerificationClient::verify_repo(const MetadataBundle& bundle,
                                             RepoState& st, SimTime now,
                                             const TargetsMeta** out_targets) {
  // 1. Root: if newer than the pinned root, it must verify against the
  //    *pinned* root's key set (chained trust), then against its own.
  const RootMeta& trusted = st.trusted_root.body;
  const RootMeta& offered = bundle.root.body;
  const util::Bytes root_payload = offered.serialize();
  if (offered.version > trusted.version) {
    if (!verify_threshold(root_payload, bundle.root.signatures,
                          trusted.roles.at(Role::kRoot), trusted.keys) ||
        !verify_threshold(root_payload, bundle.root.signatures,
                          offered.roles.at(Role::kRoot), offered.keys)) {
      return OtaError::kRootSignature;
    }
    st.trusted_root = bundle.root;  // accept rotation
  } else if (offered.version == trusted.version) {
    if (!verify_threshold(root_payload, bundle.root.signatures,
                          trusted.roles.at(Role::kRoot), trusted.keys)) {
      return OtaError::kRootSignature;
    }
  } else {
    return OtaError::kRootSignature;  // root rollback
  }
  const RootMeta& root = st.trusted_root.body;
  if (now > root.expires) return OtaError::kRootExpired;

  // 2. Timestamp.
  const auto& ts = bundle.timestamp;
  if (!verify_threshold(ts.body.serialize(), ts.signatures,
                        root.roles.at(Role::kTimestamp), root.keys)) {
    return OtaError::kTimestampSignature;
  }
  if (now > ts.body.expires) return OtaError::kTimestampExpired;
  if (ts.body.version < st.last_timestamp) return OtaError::kTimestampRollback;

  // 3. Snapshot: hash pinned by timestamp.
  const auto& snap = bundle.snapshot;
  const util::Bytes snap_payload = snap.body.serialize();
  if (crypto::sha256_bytes(snap_payload) != ts.body.snapshot_hash ||
      snap.body.version != ts.body.snapshot_version) {
    return OtaError::kSnapshotHashMismatch;
  }
  if (!verify_threshold(snap_payload, snap.signatures,
                        root.roles.at(Role::kSnapshot), root.keys)) {
    return OtaError::kSnapshotSignature;
  }
  if (now > snap.body.expires) return OtaError::kSnapshotExpired;
  if (snap.body.version < st.last_snapshot) return OtaError::kSnapshotRollback;

  // 4. Targets: version pinned by snapshot.
  const auto& tgt = bundle.targets;
  if (tgt.body.version != snap.body.targets_version) {
    return OtaError::kTargetsVersionMismatch;
  }
  if (!verify_threshold(tgt.body.serialize(), tgt.signatures,
                        root.roles.at(Role::kTargets), root.keys)) {
    return OtaError::kTargetsSignature;
  }
  if (now > tgt.body.expires) return OtaError::kTargetsExpired;

  st.last_timestamp = ts.body.version;
  st.last_snapshot = snap.body.version;
  st.last_targets = tgt.body.version;
  if (out_targets) *out_targets = &tgt.body;
  return OtaError::kOk;
}

OtaError FullVerificationClient::verify_chain(const MetadataBundle& bundle,
                                              bool is_director, SimTime now) {
  return verify_repo(bundle, is_director ? director_ : image_, now, nullptr);
}

FullVerificationClient::Outcome FullVerificationClient::fetch_and_verify(
    const MetadataBundle& director, const MetadataBundle& image_repo,
    const Repository& director_repo, const Repository& image_repo_store,
    const std::string& image_name, const std::string& hardware_id,
    std::uint32_t installed_version, SimTime now) {
  Outcome out =
      fetch_and_verify_inner(director, image_repo, director_repo,
                             image_repo_store, image_name, hardware_id,
                             installed_version, now);
  if (out.error == OtaError::kOk) {
    c_verify_ok_->inc();
    ASECK_TRACE(trace_, now, k_verify_ok_, "image=" + image_name);
  } else {
    c_verify_fail_->inc();
    ASECK_TRACE(trace_, now, k_verify_fail_,
                std::string(ota_error_name(out.error)) + " image=" + image_name);
  }
  return out;
}

FullVerificationClient::Outcome FullVerificationClient::fetch_and_verify_inner(
    const MetadataBundle& director, const MetadataBundle& image_repo,
    const Repository& director_repo, const Repository& image_repo_store,
    const std::string& image_name, const std::string& hardware_id,
    std::uint32_t installed_version, SimTime now) {
  Outcome out;
  const TargetsMeta* dir_targets = nullptr;
  const TargetsMeta* img_targets = nullptr;
  out.error = verify_repo(director, director_, now, &dir_targets);
  if (out.error != OtaError::kOk) return out;
  out.error = verify_repo(image_repo, image_, now, &img_targets);
  if (out.error != OtaError::kOk) return out;

  const auto dit = dir_targets->targets.find(image_name);
  const auto iit = img_targets->targets.find(image_name);
  if (dit == dir_targets->targets.end() || iit == img_targets->targets.end()) {
    out.error = OtaError::kTargetUnknown;
    return out;
  }
  // Director and image repo must agree exactly (anti mix-and-match).
  if (!(dit->second == iit->second)) {
    out.error = OtaError::kReposDisagree;
    return out;
  }
  const TargetInfo& info = dit->second;
  if (info.hardware_id != hardware_id) {
    out.error = OtaError::kHardwareMismatch;
    return out;
  }
  if (info.version < installed_version) {
    out.error = OtaError::kImageRollback;
    return out;
  }
  // Download preferentially from the image repo; director may also serve.
  const util::Bytes* image = image_repo_store.download(image_name);
  if (!image) image = director_repo.download(image_name);
  if (!image) {
    out.error = OtaError::kDownloadFailed;
    return out;
  }
  if (image->size() != info.length) {
    out.error = OtaError::kImageLengthMismatch;
    return out;
  }
  if (crypto::sha256_bytes(*image) != info.sha256) {
    out.error = OtaError::kImageHashMismatch;
    return out;
  }
  out.target = info;
  out.image = *image;
  out.error = OtaError::kOk;
  return out;
}

PartialVerificationClient::Outcome PartialVerificationClient::verify(
    const Signed<TargetsMeta>& director_targets, const std::string& image_name,
    const std::string& hardware_id, std::uint32_t installed_version,
    SimTime now) {
  Outcome out;
  // Single pinned key, threshold 1.
  bool ok = false;
  const util::Bytes payload = director_targets.body.serialize();
  for (const Signature& s : director_targets.signatures) {
    if (crypto::ecdsa_verify(targets_key_, payload, s.sig)) {
      ok = true;
      break;
    }
  }
  if (!ok) {
    out.error = OtaError::kTargetsSignature;
    return out;
  }
  if (now > director_targets.body.expires) {
    out.error = OtaError::kTargetsExpired;
    return out;
  }
  if (director_targets.body.version < last_targets_) {
    out.error = OtaError::kTargetsVersionMismatch;
    return out;
  }
  const auto it = director_targets.body.targets.find(image_name);
  if (it == director_targets.body.targets.end()) {
    out.error = OtaError::kTargetUnknown;
    return out;
  }
  if (it->second.hardware_id != hardware_id) {
    out.error = OtaError::kHardwareMismatch;
    return out;
  }
  if (it->second.version < installed_version) {
    out.error = OtaError::kImageRollback;
    return out;
  }
  last_targets_ = director_targets.body.version;
  out.target = it->second;
  return out;
}

InstallResult install_image(ecu::Flash& flash, const std::string& image_name,
                            std::uint32_t version, const util::Bytes& image,
                            const std::function<bool()>& self_test) {
  if (!flash.stage(ecu::FirmwareImage{image_name, version, image})) {
    return InstallResult::kStageRejected;
  }
  flash.activate();
  if (self_test && !self_test()) {
    flash.revert();
    return InstallResult::kRevertedSelfTest;
  }
  flash.commit();
  return InstallResult::kCommitted;
}

}  // namespace aseck::ota
