#include "ota/manifest.hpp"

namespace aseck::ota {

util::Bytes EcuVersionReport::tbs() const {
  util::Bytes out;
  out.insert(out.end(), ecu_serial.begin(), ecu_serial.end());
  out.push_back(0);
  out.insert(out.end(), image_name.begin(), image_name.end());
  out.push_back(0);
  util::append_be(out, installed_version, 4);
  out.insert(out.end(), image_digest.begin(), image_digest.end());
  util::append_be(out, reported_at.ns, 8);
  return out;
}

EcuVersionReport EcuVersionReport::make(const std::string& serial,
                                        const std::string& image_name,
                                        std::uint32_t version,
                                        util::BytesView image_digest,
                                        util::SimTime at,
                                        const crypto::EcdsaPrivateKey& ecu_key) {
  EcuVersionReport r;
  r.ecu_serial = serial;
  r.image_name = image_name;
  r.installed_version = version;
  r.image_digest.assign(image_digest.begin(), image_digest.end());
  r.reported_at = at;
  r.signature = ecu_key.sign(r.tbs());
  return r;
}

util::Bytes VehicleManifest::tbs() const {
  util::Bytes out(vin.begin(), vin.end());
  out.push_back(0);
  for (const auto& r : reports) {
    const util::Bytes rb = r.tbs();
    out.insert(out.end(), rb.begin(), rb.end());
    const util::Bytes sig = r.signature.to_bytes();
    out.insert(out.end(), sig.begin(), sig.end());
  }
  return out;
}

VehicleManifest VehicleManifest::assemble(
    const std::string& vin, std::vector<EcuVersionReport> reports,
    const crypto::EcdsaPrivateKey& primary_key) {
  VehicleManifest m;
  m.vin = vin;
  m.reports = std::move(reports);
  m.primary_signature = primary_key.sign(m.tbs());
  return m;
}

void ManifestProcessor::register_ecu(const std::string& serial,
                                     crypto::EcdsaPublicKey key) {
  ecu_keys_.emplace(serial, std::move(key));
}

void ManifestProcessor::register_primary(const std::string& vin,
                                         crypto::EcdsaPublicKey key) {
  primary_keys_.emplace(vin, std::move(key));
}

void ManifestProcessor::expect(const std::string& vin,
                               const std::string& image_name,
                               std::uint32_t version, util::Bytes digest) {
  expected_[{vin, image_name}] = Expectation{version, std::move(digest)};
}

std::size_t ManifestProcessor::Result::alarms() const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.status == ReportStatus::kUnexpectedVersion ||
        f.status == ReportStatus::kBadSignature ||
        f.status == ReportStatus::kUnknownEcu) {
      ++n;
    }
  }
  return n;
}

ManifestProcessor::Result ManifestProcessor::process(
    const VehicleManifest& manifest) const {
  Result out;
  const auto pit = primary_keys_.find(manifest.vin);
  out.manifest_authentic =
      pit != primary_keys_.end() &&
      crypto::ecdsa_verify(pit->second, manifest.tbs(),
                           manifest.primary_signature);
  for (const auto& r : manifest.reports) {
    Finding f;
    f.ecu_serial = r.ecu_serial;
    const auto kit = ecu_keys_.find(r.ecu_serial);
    if (kit == ecu_keys_.end()) {
      f.status = ReportStatus::kUnknownEcu;
    } else if (!crypto::ecdsa_verify(kit->second, r.tbs(), r.signature)) {
      f.status = ReportStatus::kBadSignature;
    } else {
      const auto eit = expected_.find({manifest.vin, r.image_name});
      if (eit == expected_.end()) {
        f.status = ReportStatus::kUnexpectedVersion;
      } else if (r.installed_version == eit->second.version &&
                 r.image_digest == eit->second.digest) {
        f.status = ReportStatus::kCurrent;
      } else if (r.installed_version < eit->second.version) {
        f.status = ReportStatus::kOutdated;
      } else {
        f.status = ReportStatus::kUnexpectedVersion;
      }
    }
    out.findings.push_back(std::move(f));
  }
  return out;
}

const char* ManifestProcessor::status_name(ReportStatus s) {
  switch (s) {
    case ReportStatus::kCurrent: return "current";
    case ReportStatus::kOutdated: return "outdated";
    case ReportStatus::kUnexpectedVersion: return "unexpected_version";
    case ReportStatus::kBadSignature: return "bad_signature";
    case ReportStatus::kUnknownEcu: return "unknown_ecu";
  }
  return "?";
}

}  // namespace aseck::ota
