#pragma once
// Uptane vehicle version manifest: after every update cycle, each ECU signs
// a report of what it actually has installed; the primary aggregates them
// into a vehicle manifest for the director. This is how the backend detects
// partial installs, rollback attempts on individual ECUs, and ECUs that are
// lying about versions (a compromised ECU cannot forge another ECU's
// report without its key).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/ecdsa.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"
#include "util/time.hpp"

namespace aseck::ota {

/// One ECU's signed installation report.
struct EcuVersionReport {
  std::string ecu_serial;
  std::string image_name;
  std::uint32_t installed_version = 0;
  util::Bytes image_digest;  // SHA-256 of the installed image
  util::SimTime reported_at;
  crypto::EcdsaSignature signature;

  util::Bytes tbs() const;
  static EcuVersionReport make(const std::string& serial,
                               const std::string& image_name,
                               std::uint32_t version,
                               util::BytesView image_digest, util::SimTime at,
                               const crypto::EcdsaPrivateKey& ecu_key);
};

/// The aggregated vehicle manifest, signed by the primary ECU.
struct VehicleManifest {
  std::string vin;
  std::vector<EcuVersionReport> reports;
  crypto::EcdsaSignature primary_signature;

  util::Bytes tbs() const;
  static VehicleManifest assemble(const std::string& vin,
                                  std::vector<EcuVersionReport> reports,
                                  const crypto::EcdsaPrivateKey& primary_key);
};

/// Director-side manifest processing: verifies signatures against the
/// registered ECU keys and diffs installed state against the expected
/// targets.
class ManifestProcessor {
 public:
  void register_ecu(const std::string& serial, crypto::EcdsaPublicKey key);
  void register_primary(const std::string& vin, crypto::EcdsaPublicKey key);
  /// Expected installed version per (vin, image).
  void expect(const std::string& vin, const std::string& image_name,
              std::uint32_t version, util::Bytes digest);

  enum class ReportStatus {
    kCurrent,            // matches expectation
    kOutdated,           // older than expected (update not applied yet)
    kUnexpectedVersion,  // NEWER than directed or unknown digest: alarm
    kBadSignature,       // forged report
    kUnknownEcu,
  };
  struct Finding {
    std::string ecu_serial;
    ReportStatus status;
  };
  struct Result {
    bool manifest_authentic = false;
    std::vector<Finding> findings;
    std::size_t alarms() const;
  };
  Result process(const VehicleManifest& manifest) const;

  static const char* status_name(ReportStatus s);

 private:
  std::map<std::string, crypto::EcdsaPublicKey> ecu_keys_;
  std::map<std::string, crypto::EcdsaPublicKey> primary_keys_;
  struct Expectation {
    std::uint32_t version;
    util::Bytes digest;
  };
  std::map<std::pair<std::string, std::string>, Expectation> expected_;
};

}  // namespace aseck::ota
