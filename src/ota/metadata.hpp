#pragma once
// Uptane-style signed metadata. Four roles per repository:
//   root      — trust anchor: role keys + thresholds, self-chained versions
//   targets   — image name -> (hash, length, version, hardware id)
//   snapshot  — versions of targets metadata (anti mix-and-match)
//   timestamp — hash+version of snapshot (anti freeze, cheap to poll)
//
// Two repositories (director + image repo) must agree on a target before a
// full-verification client installs it; this is the core Uptane defense the
// E5 experiment's compromise matrix exercises.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/ecdsa.hpp"
#include "crypto/sha256.hpp"
#include "crypto/verify_engine.hpp"
#include "util/bytes.hpp"
#include "util/time.hpp"

namespace aseck::ota {

using util::SimTime;

enum class Role { kRoot, kTargets, kSnapshot, kTimestamp };
const char* role_name(Role r);

/// Key id = first 8 bytes of SHA-256 of the SEC1 public key.
using KeyId = std::array<std::uint8_t, 8>;
KeyId key_id(const crypto::EcdsaPublicKey& pub);
std::string key_id_hex(const KeyId& id);

struct TargetInfo {
  util::Bytes sha256;       // 32-byte image digest
  std::uint64_t length = 0;
  std::uint32_t version = 0;
  std::string hardware_id;  // which ECU class may install this

  util::Bytes serialize() const;
  /// Parses a TargetInfo occupying the whole of `b` (strict: trailing bytes
  /// reject). Every serialized value round-trips: parse(serialize(x)) == x.
  static std::optional<TargetInfo> parse(util::BytesView b);
  friend bool operator==(const TargetInfo&, const TargetInfo&) = default;
};

/// Role bodies ---------------------------------------------------------------

// Each role body serializes to a tagged, length-explicit byte string and
// parses back strictly: unknown tags, truncated fields, counts that overrun
// the buffer, and trailing bytes all reject (std::nullopt) — there is no
// silent clamping anywhere, so `parse(serialize(x)) == x` and
// `serialize(*parse(b)) == b` are the E20 fuzzer's round-trip oracles.

struct RootMeta {
  std::uint32_t version = 1;
  SimTime expires;
  // role -> (threshold, authorized key ids); keys themselves are stored too.
  struct RoleKeys {
    std::uint32_t threshold = 1;
    std::vector<KeyId> key_ids;
    friend bool operator==(const RoleKeys&, const RoleKeys&) = default;
  };
  std::map<Role, RoleKeys> roles;
  std::map<std::string, crypto::EcdsaPublicKey> keys;  // keyid hex -> key

  util::Bytes serialize() const;
  static std::optional<RootMeta> parse(util::BytesView b);
  friend bool operator==(const RootMeta&, const RootMeta&) = default;
};

struct TargetsMeta {
  std::uint32_t version = 1;
  SimTime expires;
  std::map<std::string, TargetInfo> targets;  // image name -> info

  util::Bytes serialize() const;
  static std::optional<TargetsMeta> parse(util::BytesView b);
  friend bool operator==(const TargetsMeta&, const TargetsMeta&) = default;
};

struct SnapshotMeta {
  std::uint32_t version = 1;
  SimTime expires;
  std::uint32_t targets_version = 0;

  util::Bytes serialize() const;
  static std::optional<SnapshotMeta> parse(util::BytesView b);
  friend bool operator==(const SnapshotMeta&, const SnapshotMeta&) = default;
};

struct TimestampMeta {
  std::uint32_t version = 1;
  SimTime expires;
  std::uint32_t snapshot_version = 0;
  util::Bytes snapshot_hash;  // SHA-256 of serialized snapshot

  util::Bytes serialize() const;
  static std::optional<TimestampMeta> parse(util::BytesView b);
  friend bool operator==(const TimestampMeta&, const TimestampMeta&) = default;
};

/// A detached signature.
struct Signature {
  KeyId keyid{};
  crypto::EcdsaSignature sig;
};

/// Signed envelope: serialized body + signatures.
template <typename Body>
struct Signed {
  Body body;
  std::vector<Signature> signatures;
};

/// Signs `payload` with `key`, producing a Signature entry.
Signature sign_payload(const crypto::EcdsaPrivateKey& key,
                       util::BytesView payload);

/// Verifies that `payload` carries >= threshold valid signatures from the
/// authorized key set. When `engine` is supplied, the ECDSA checks run
/// through it (verify-result cache + crypto.verify.* metrics) — OTA clients
/// re-verify identical metadata on every poll cycle, so the cache turns the
/// steady-state cost into a hash lookup.
bool verify_threshold(util::BytesView payload,
                      const std::vector<Signature>& sigs,
                      const RootMeta::RoleKeys& authorized,
                      const std::map<std::string, crypto::EcdsaPublicKey>& keys,
                      crypto::VerifyEngine* engine = nullptr);

}  // namespace aseck::ota
