#pragma once
// Uptane repository (used both as the Director and as the Image repo).
// Holds the four role keys, publishes signed metadata, and stores images.
// The Director personalizes `targets` per vehicle; the Image repo publishes
// the full catalogue.

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "crypto/drbg.hpp"
#include "crypto/service.hpp"
#include "ota/metadata.hpp"
#include "sim/faultplan.hpp"

namespace aseck::ota {

/// Everything a client downloads in one refresh.
struct MetadataBundle {
  Signed<RootMeta> root;
  Signed<TargetsMeta> targets;
  Signed<SnapshotMeta> snapshot;
  Signed<TimestampMeta> timestamp;
};

class Repository {
 public:
  /// Creates a repository with fresh role keys. `expiry` applies to all
  /// roles initially (timestamp typically re-signed frequently).
  Repository(crypto::Drbg& rng, std::string name, SimTime expiry);

  const std::string& name() const { return name_; }

  /// Adds/updates an image in `targets` and stores its bytes for download.
  void add_target(const std::string& image_name, const util::Bytes& image,
                  std::uint32_t version, const std::string& hardware_id);
  /// Removes an image from targets.
  void remove_target(const std::string& image_name);

  /// Re-signs all metadata (bumps targets/snapshot/timestamp versions).
  void publish(SimTime now);

  /// Current signed metadata bundle.
  const MetadataBundle& metadata() const { return bundle_; }
  /// Immutable generation-numbered snapshot of the current bundle. The copy
  /// is made at most once per generation (copy-on-write): every fetch until
  /// the next publish/rotation shares the same `shared_ptr`, so a wave of a
  /// million vehicles costs one MetadataBundle copy instead of one each —
  /// the E21 bench preamble measures the win. The pointed-to bundle never
  /// mutates; republishing produces a fresh snapshot under a new generation.
  std::shared_ptr<const MetadataBundle> snapshot() const;
  /// Monotonic metadata generation: bumped by publish(), rotate_key(), and
  /// mutable_bundle() (the attack hook hands out a mutable reference, so the
  /// repository must assume the bundle changed).
  std::uint64_t generation() const { return generation_; }
  /// Image download; returns nullptr if unknown or unavailable (outage).
  const util::Bytes* download(const std::string& image_name) const;
  /// Byte-range download for resumable fetch: bytes [offset, offset+max_len)
  /// of the image (short at EOF). nullopt when unknown, unavailable, or the
  /// offset is past the end.
  std::optional<util::Bytes> download_range(const std::string& image_name,
                                            std::size_t offset,
                                            std::size_t max_len) const;

  /// Attaches a fault-injection port (sim::FaultPlan kOutage windows): while
  /// the port is down the repository refuses all downloads.
  void set_fault_port(sim::FaultPort* port) { fault_port_ = port; }
  /// False while an injected outage window is active.
  bool available() const { return !fault_port_ || !fault_port_->down(); }

  /// Initial trusted root for provisioning clients.
  const Signed<RootMeta>& trusted_root() const { return bundle_.root; }

  // --- key compromise / rotation experiments --------------------------------
  /// Returns the private key of a role (the "compromise" primitive in E5).
  /// Role keys are provisioned with kUsageExport exactly so this attack
  /// surface stays modelable; the returned key is reconstructed from the
  /// service's export and signs bit-identically (deterministic ECDSA).
  const crypto::EcdsaPrivateKey& role_key(Role r) const;
  /// Replaces a role's key, bumping root version (key rotation). Clients
  /// accept the new root because it is signed with the *old* root key too.
  void rotate_key(crypto::Drbg& rng, Role r, SimTime now);

  /// Direct mutable access to the bundle for attack construction in tests
  /// and benches (an attacker who stole role keys forges metadata).
  MetadataBundle& mutable_bundle() {
    invalidate_snapshot();
    return bundle_;
  }

  /// Re-sign helpers exposed for attack scenarios: sign `body` with this
  /// repository's key for role `r`.
  template <typename Body>
  void sign_role(Signed<Body>& s, Role r) const {
    s.signatures.clear();
    s.signatures.push_back(sign_role_payload(r, s.body.serialize()));
  }

  /// The repository's backend HSM. Key material never leaves it except
  /// through the policy-gated export used by role_key().
  const crypto::CryptoService& hsm() const { return hsm_; }

 private:
  void rebuild_root(SimTime now, const crypto::KeyHandle* old_root_key);
  /// Signs `payload` with the role's service-held key (keyid + signature).
  Signature sign_role_payload(Role r, util::BytesView payload) const;
  Signature sign_with(crypto::KeyHandle h, util::BytesView payload) const;
  crypto::EcdsaPublicKey public_key(Role r) const;
  void invalidate_snapshot() {
    ++generation_;
    snapshot_.reset();
  }

  std::string name_;
  SimTime expiry_;
  /// Backend HSM: never sealed (kProvisioning), so runtime key rotation
  /// keeps working while all role keys live behind the service boundary.
  crypto::CryptoService hsm_;
  crypto::PartitionId part_ = 0;
  std::map<Role, crypto::KeyHandle> keys_;
  /// role_key() cache: reconstructed-from-export private keys (stable
  /// references for the E5 compromise experiments). Invalidated on rotation.
  mutable std::map<Role, crypto::EcdsaPrivateKey> exported_;
  std::map<std::string, util::Bytes> images_;
  MetadataBundle bundle_;
  std::uint64_t generation_ = 0;
  mutable std::shared_ptr<const MetadataBundle> snapshot_;  // lazy, per gen
  sim::FaultPort* fault_port_ = nullptr;
};

}  // namespace aseck::ota
