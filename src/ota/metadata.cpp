#include "ota/metadata.hpp"

#include <algorithm>
#include <set>

namespace aseck::ota {

const char* role_name(Role r) {
  switch (r) {
    case Role::kRoot: return "root";
    case Role::kTargets: return "targets";
    case Role::kSnapshot: return "snapshot";
    case Role::kTimestamp: return "timestamp";
  }
  return "?";
}

KeyId key_id(const crypto::EcdsaPublicKey& pub) {
  const crypto::Digest d = crypto::sha256(pub.to_bytes());
  KeyId out;
  std::copy(d.begin(), d.begin() + 8, out.begin());
  return out;
}

std::string key_id_hex(const KeyId& id) {
  return util::to_hex(util::BytesView(id.data(), id.size()));
}

util::Bytes TargetInfo::serialize() const {
  util::Bytes out = sha256;
  util::append_be(out, length, 8);
  util::append_be(out, version, 4);
  out.insert(out.end(), hardware_id.begin(), hardware_id.end());
  out.push_back(0);
  return out;
}

util::Bytes RootMeta::serialize() const {
  util::Bytes out;
  out.push_back('R');
  util::append_be(out, version, 4);
  util::append_be(out, expires.ns, 8);
  for (const auto& [role, rk] : roles) {
    out.push_back(static_cast<std::uint8_t>(role));
    util::append_be(out, rk.threshold, 4);
    for (const auto& kid : rk.key_ids) {
      out.insert(out.end(), kid.begin(), kid.end());
    }
    out.push_back(0xff);
  }
  for (const auto& [hex, key] : keys) {
    const util::Bytes kb = key.to_bytes();
    out.insert(out.end(), kb.begin(), kb.end());
  }
  return out;
}

util::Bytes TargetsMeta::serialize() const {
  util::Bytes out;
  out.push_back('T');
  util::append_be(out, version, 4);
  util::append_be(out, expires.ns, 8);
  for (const auto& [name, info] : targets) {
    out.insert(out.end(), name.begin(), name.end());
    out.push_back(0);
    const util::Bytes ib = info.serialize();
    out.insert(out.end(), ib.begin(), ib.end());
  }
  return out;
}

util::Bytes SnapshotMeta::serialize() const {
  util::Bytes out;
  out.push_back('S');
  util::append_be(out, version, 4);
  util::append_be(out, expires.ns, 8);
  util::append_be(out, targets_version, 4);
  return out;
}

util::Bytes TimestampMeta::serialize() const {
  util::Bytes out;
  out.push_back('M');
  util::append_be(out, version, 4);
  util::append_be(out, expires.ns, 8);
  util::append_be(out, snapshot_version, 4);
  out.insert(out.end(), snapshot_hash.begin(), snapshot_hash.end());
  return out;
}

Signature sign_payload(const crypto::EcdsaPrivateKey& key,
                       util::BytesView payload) {
  Signature s;
  s.keyid = key_id(key.public_key());
  s.sig = key.sign(payload);
  return s;
}

bool verify_threshold(util::BytesView payload,
                      const std::vector<Signature>& sigs,
                      const RootMeta::RoleKeys& authorized,
                      const std::map<std::string, crypto::EcdsaPublicKey>& keys,
                      crypto::VerifyEngine* engine) {
  std::set<std::string> counted;  // distinct authorized keyids that verified
  for (const Signature& s : sigs) {
    const std::string hex = key_id_hex(s.keyid);
    if (counted.count(hex)) continue;
    // Is the key authorized for this role?
    const bool authorized_key =
        std::find(authorized.key_ids.begin(), authorized.key_ids.end(),
                  s.keyid) != authorized.key_ids.end();
    if (!authorized_key) continue;
    const auto kit = keys.find(hex);
    if (kit == keys.end()) continue;
    const bool ok = engine ? engine->verify(kit->second, payload, s.sig)
                           : crypto::ecdsa_verify(kit->second, payload, s.sig);
    if (ok) {
      counted.insert(hex);
    }
  }
  return counted.size() >= authorized.threshold;
}

}  // namespace aseck::ota
