#include "ota/metadata.hpp"

#include <algorithm>
#include <set>

#include "util/coverage.hpp"

namespace aseck::ota {

namespace {

/// Bounded big-endian cursor over a byte view. Every read checks remaining
/// length; `ok` latches false on the first overrun so callers can chain
/// reads and test once.
struct Reader {
  util::BytesView b;
  std::size_t pos = 0;
  bool ok = true;

  std::size_t remaining() const { return ok ? b.size() - pos : 0; }

  std::uint8_t u8() {
    if (remaining() < 1) { ok = false; return 0; }
    return b[pos++];
  }
  std::uint64_t be(std::size_t width) {
    if (remaining() < width) { ok = false; return 0; }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < width; ++i) v = (v << 8) | b[pos + i];
    pos += width;
    return v;
  }
  util::Bytes take(std::size_t n) {
    if (remaining() < n) { ok = false; return {}; }
    util::Bytes out(b.begin() + static_cast<std::ptrdiff_t>(pos),
                    b.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return out;
  }
  /// Bytes up to (not including) the next NUL; consumes the NUL too.
  std::string cstr() {
    std::string s;
    while (true) {
      if (remaining() < 1) { ok = false; return {}; }
      const std::uint8_t c = b[pos++];
      if (c == 0) return s;
      s.push_back(static_cast<char>(c));
    }
  }
  bool done() const { return ok && pos == b.size(); }
};

std::optional<Role> role_from_byte(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(Role::kTimestamp)) return std::nullopt;
  return static_cast<Role>(v);
}

}  // namespace

const char* role_name(Role r) {
  switch (r) {
    case Role::kRoot: return "root";
    case Role::kTargets: return "targets";
    case Role::kSnapshot: return "snapshot";
    case Role::kTimestamp: return "timestamp";
  }
  return "?";
}

KeyId key_id(const crypto::EcdsaPublicKey& pub) {
  const crypto::Digest d = crypto::sha256(pub.to_bytes());
  KeyId out;
  std::copy(d.begin(), d.begin() + 8, out.begin());
  return out;
}

std::string key_id_hex(const KeyId& id) {
  return util::to_hex(util::BytesView(id.data(), id.size()));
}

util::Bytes TargetInfo::serialize() const {
  util::Bytes out = sha256;
  util::append_be(out, length, 8);
  util::append_be(out, version, 4);
  out.insert(out.end(), hardware_id.begin(), hardware_id.end());
  out.push_back(0);
  return out;
}

std::optional<TargetInfo> TargetInfo::parse(util::BytesView b) {
  Reader r{b};
  TargetInfo t;
  t.sha256 = r.take(32);
  t.length = r.be(8);
  t.version = static_cast<std::uint32_t>(r.be(4));
  t.hardware_id = r.cstr();
  if (!r.done()) {
    ASECK_COV("ota.target_info.bad");
    return std::nullopt;
  }
  ASECK_COV("ota.target_info.ok");
  return t;
}

util::Bytes RootMeta::serialize() const {
  util::Bytes out;
  out.push_back('R');
  util::append_be(out, version, 4);
  util::append_be(out, expires.ns, 8);
  out.push_back(static_cast<std::uint8_t>(roles.size()));
  for (const auto& [role, rk] : roles) {
    out.push_back(static_cast<std::uint8_t>(role));
    util::append_be(out, rk.threshold, 4);
    out.push_back(static_cast<std::uint8_t>(rk.key_ids.size()));
    for (const auto& kid : rk.key_ids) {
      out.insert(out.end(), kid.begin(), kid.end());
    }
  }
  util::append_be(out, keys.size(), 2);
  for (const auto& [hex, key] : keys) {
    const util::Bytes kb = key.to_bytes();
    out.insert(out.end(), kb.begin(), kb.end());
  }
  return out;
}

std::optional<RootMeta> RootMeta::parse(util::BytesView b) {
  Reader r{b};
  if (r.u8() != 'R') {
    ASECK_COV("ota.root.bad_magic");
    return std::nullopt;
  }
  RootMeta m;
  m.version = static_cast<std::uint32_t>(r.be(4));
  m.expires.ns = static_cast<decltype(m.expires.ns)>(r.be(8));
  const std::uint8_t role_count = r.u8();
  int prev_role = -1;
  for (std::uint8_t i = 0; i < role_count && r.ok; ++i) {
    const std::uint8_t rb = r.u8();
    const auto role = role_from_byte(rb);
    // Roles must be strictly ascending: rejects duplicates and keeps the
    // serialization canonical (std::map iteration order).
    if (!role || static_cast<int>(rb) <= prev_role) {
      ASECK_COV("ota.root.bad_role");
      return std::nullopt;
    }
    prev_role = rb;
    RoleKeys rk;
    rk.threshold = static_cast<std::uint32_t>(r.be(4));
    const std::uint8_t kid_count = r.u8();
    for (std::uint8_t k = 0; k < kid_count && r.ok; ++k) {
      const util::Bytes kb = r.take(8);
      if (!r.ok) break;
      KeyId kid;
      std::copy(kb.begin(), kb.end(), kid.begin());
      rk.key_ids.push_back(kid);
    }
    m.roles.emplace(*role, std::move(rk));
  }
  const std::uint64_t key_count = r.be(2);
  std::string prev_hex;
  for (std::uint64_t i = 0; i < key_count && r.ok; ++i) {
    const util::Bytes kb = r.take(65);
    if (!r.ok) break;
    const auto key = crypto::EcdsaPublicKey::from_bytes(kb);
    if (!key) {
      ASECK_COV("ota.root.bad_key");
      return std::nullopt;
    }
    // The map key is not serialized — it is always the keyid hex of the key
    // itself, so the parser recomputes it. Strictly ascending hex keeps the
    // round trip canonical (and rejects duplicate keys).
    const std::string hex = key_id_hex(key_id(*key));
    if (!prev_hex.empty() && hex <= prev_hex) {
      ASECK_COV("ota.root.key_order");
      return std::nullopt;
    }
    prev_hex = hex;
    m.keys.emplace(hex, *key);
  }
  if (!r.done()) {
    ASECK_COV("ota.root.bad_len");
    return std::nullopt;
  }
  ASECK_COV("ota.root.ok");
  return m;
}

util::Bytes TargetsMeta::serialize() const {
  util::Bytes out;
  out.push_back('T');
  util::append_be(out, version, 4);
  util::append_be(out, expires.ns, 8);
  for (const auto& [name, info] : targets) {
    out.insert(out.end(), name.begin(), name.end());
    out.push_back(0);
    const util::Bytes ib = info.serialize();
    out.insert(out.end(), ib.begin(), ib.end());
  }
  return out;
}

std::optional<TargetsMeta> TargetsMeta::parse(util::BytesView b) {
  Reader r{b};
  if (r.u8() != 'T') {
    ASECK_COV("ota.targets.bad_magic");
    return std::nullopt;
  }
  TargetsMeta m;
  m.version = static_cast<std::uint32_t>(r.be(4));
  m.expires.ns = static_cast<decltype(m.expires.ns)>(r.be(8));
  std::string prev_name;
  bool first = true;
  while (r.ok && r.remaining() > 0) {
    const std::string name = r.cstr();
    if (!first && name <= prev_name) {
      ASECK_COV("ota.targets.name_order");
      return std::nullopt;
    }
    first = false;
    prev_name = name;
    TargetInfo info;
    info.sha256 = r.take(32);
    info.length = r.be(8);
    info.version = static_cast<std::uint32_t>(r.be(4));
    info.hardware_id = r.cstr();
    if (!r.ok) break;
    m.targets.emplace(name, std::move(info));
  }
  if (!r.done()) {
    ASECK_COV("ota.targets.bad_len");
    return std::nullopt;
  }
  ASECK_COV("ota.targets.ok");
  return m;
}

util::Bytes SnapshotMeta::serialize() const {
  util::Bytes out;
  out.push_back('S');
  util::append_be(out, version, 4);
  util::append_be(out, expires.ns, 8);
  util::append_be(out, targets_version, 4);
  return out;
}

std::optional<SnapshotMeta> SnapshotMeta::parse(util::BytesView b) {
  Reader r{b};
  if (r.u8() != 'S') {
    ASECK_COV("ota.snapshot.bad_magic");
    return std::nullopt;
  }
  SnapshotMeta m;
  m.version = static_cast<std::uint32_t>(r.be(4));
  m.expires.ns = static_cast<decltype(m.expires.ns)>(r.be(8));
  m.targets_version = static_cast<std::uint32_t>(r.be(4));
  if (!r.done()) {
    ASECK_COV("ota.snapshot.bad_len");
    return std::nullopt;
  }
  ASECK_COV("ota.snapshot.ok");
  return m;
}

util::Bytes TimestampMeta::serialize() const {
  util::Bytes out;
  out.push_back('M');
  util::append_be(out, version, 4);
  util::append_be(out, expires.ns, 8);
  util::append_be(out, snapshot_version, 4);
  out.insert(out.end(), snapshot_hash.begin(), snapshot_hash.end());
  return out;
}

std::optional<TimestampMeta> TimestampMeta::parse(util::BytesView b) {
  Reader r{b};
  if (r.u8() != 'M') {
    ASECK_COV("ota.timestamp.bad_magic");
    return std::nullopt;
  }
  TimestampMeta m;
  m.version = static_cast<std::uint32_t>(r.be(4));
  m.expires.ns = static_cast<decltype(m.expires.ns)>(r.be(8));
  m.snapshot_version = static_cast<std::uint32_t>(r.be(4));
  // The snapshot hash is always SHA-256; anything but exactly 32 trailing
  // bytes is malformed.
  m.snapshot_hash = r.take(32);
  if (!r.done()) {
    ASECK_COV("ota.timestamp.bad_len");
    return std::nullopt;
  }
  ASECK_COV("ota.timestamp.ok");
  return m;
}

Signature sign_payload(const crypto::EcdsaPrivateKey& key,
                       util::BytesView payload) {
  Signature s;
  s.keyid = key_id(key.public_key());
  s.sig = key.sign(payload);
  return s;
}

bool verify_threshold(util::BytesView payload,
                      const std::vector<Signature>& sigs,
                      const RootMeta::RoleKeys& authorized,
                      const std::map<std::string, crypto::EcdsaPublicKey>& keys,
                      crypto::VerifyEngine* engine) {
  std::set<std::string> counted;  // distinct authorized keyids that verified
  for (const Signature& s : sigs) {
    const std::string hex = key_id_hex(s.keyid);
    if (counted.count(hex)) continue;
    // Is the key authorized for this role?
    const bool authorized_key =
        std::find(authorized.key_ids.begin(), authorized.key_ids.end(),
                  s.keyid) != authorized.key_ids.end();
    if (!authorized_key) continue;
    const auto kit = keys.find(hex);
    if (kit == keys.end()) continue;
    const bool ok = engine ? engine->verify(kit->second, payload, s.sig)
                           : crypto::ecdsa_verify(kit->second, payload, s.sig);
    if (ok) {
      counted.insert(hex);
    }
  }
  return counted.size() >= authorized.threshold;
}

}  // namespace aseck::ota
