#include "ota/server.hpp"

#include <algorithm>

#include "sim/trace.hpp"

namespace aseck::ota {

const char* serve_class_name(ServeClass c) {
  switch (c) {
    case ServeClass::kCampaign: return "campaign";
    case ServeClass::kBackground: return "background";
  }
  return "?";
}

const char* serve_status_name(ServeStatus s) {
  switch (s) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kRetryAfter: return "retry_after";
    case ServeStatus::kUnavailable: return "unavailable";
  }
  return "?";
}

const char* server_tier_name(ServerTier t) {
  switch (t) {
    case ServerTier::kNormal: return "normal";
    case ServerTier::kShedDelta: return "shed_delta";
    case ServerTier::kShedRefresh: return "shed_refresh";
    case ServerTier::kShedAdmission: return "shed_admission";
  }
  return "?";
}

namespace {
int tier_rank(ServerTier t) { return static_cast<int>(t); }
ServerTier tier_from_rank(int r) { return static_cast<ServerTier>(r); }
}  // namespace

RepositoryServer::RepositoryServer(const Repository& director,
                                   const Repository& image_repo,
                                   ServerConfig cfg)
    : director_(director),
      image_repo_(image_repo),
      cfg_(cfg),
      cache_(cfg.chunk_cache_entries),
      trace_("ota.repo"),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  tokens_campaign_ = cfg_.bucket_burst;
  tokens_background_ = cfg_.bucket_burst;
  wire_telemetry();
}

void RepositoryServer::wire_telemetry() {
  const auto rewire = [this](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(std::string("ota.repo.") + key);
    if (c && c != &nc) nc.inc(c->value());  // carry accumulated value across
    c = &nc;
  };
  rewire(c_requests_, "requests");
  rewire(c_served_, "served");
  rewire(c_shed_, "shed");
  rewire(c_shed_background_, "shed_background");
  rewire(c_coalesced_, "coalesced");
  rewire(c_refresh_, "snapshot_refreshes");
  rewire(c_cache_hits_, "cache_hits");
  rewire(c_cache_misses_, "cache_misses");
  rewire(c_delta_chunks_, "delta_chunks");
  rewire(c_bytes_sent_, "bytes_sent");
  rewire(c_delta_bytes_saved_, "delta_bytes_saved");
  rewire(c_transitions_, "degraded_transitions");
  h_queue_delay_ms_ =
      &metrics_->histogram("ota.repo.queue_delay_ms", 0, 1'000, 64);
  k_shed_ = trace_.kind("shed");
  k_tier_up_ = trace_.kind("tier_up");
  k_tier_down_ = trace_.kind("tier_down");
  k_refresh_ = trace_.kind("snapshot_refresh");
  k_outage_defer_ = trace_.kind("outage_defer");
}

void RepositoryServer::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

void RepositoryServer::refill_tokens(util::SimTime now) {
  if (!buckets_primed_) {
    buckets_primed_ = true;
    last_refill_ = now;
    return;
  }
  if (now <= last_refill_) return;
  const double dt =
      static_cast<double>(now.ns - last_refill_.ns) / 1e9;  // seconds
  last_refill_ = now;
  tokens_campaign_ = std::min(cfg_.bucket_burst,
                              tokens_campaign_ + cfg_.campaign_rps * dt);
  tokens_background_ = std::min(
      cfg_.bucket_burst, tokens_background_ + cfg_.background_rps * dt);
}

void RepositoryServer::set_tier(ServerTier t, util::SimTime now) {
  if (t == tier_) return;
  const bool up = tier_rank(t) > tier_rank(tier_);
  ASECK_TRACE(trace_, now, up ? k_tier_up_ : k_tier_down_,
              std::string(server_tier_name(tier_)) + " -> " +
                  server_tier_name(t));
  transitions_.push_back(TierTransition{now, tier_, t});
  c_transitions_->inc();
  tier_ = t;
  if (tier_rank(t) > tier_rank(peak_tier_)) peak_tier_ = t;
}

void RepositoryServer::roll_windows(util::SimTime now) {
  if (!window_open_) {
    window_open_ = true;
    window_start_ = now;
    return;
  }
  while (window_start_ + cfg_.tier_window <= now) {
    const util::SimTime edge = window_start_ + cfg_.tier_window;
    const double ratio =
        win_arrivals_ == 0
            ? 0.0
            : static_cast<double>(win_shed_) / static_cast<double>(win_arrivals_);
    last_shed_ratio_ = ratio;
    if (win_arrivals_ > 0 && ratio > cfg_.shed_enter_ratio) {
      if (tier_ != ServerTier::kShedAdmission) {
        set_tier(tier_from_rank(tier_rank(tier_) + 1), edge);
      }
    } else if (ratio <= cfg_.shed_exit_ratio &&
               tier_ != ServerTier::kNormal) {
      set_tier(tier_from_rank(tier_rank(tier_) - 1), edge);
    }
    win_arrivals_ = 0;
    win_shed_ = 0;
    window_start_ = edge;
    if (tier_ == ServerTier::kNormal &&
        window_start_ + cfg_.tier_window <= now) {
      // Fully recovered and idle: nothing left to de-escalate, so skip the
      // remaining empty windows in O(1) instead of looping per window.
      const std::uint64_t w = cfg_.tier_window.ns;
      window_start_.ns += ((now.ns - window_start_.ns) / w) * w;
      last_shed_ratio_ = 0.0;
    }
  }
}

void RepositoryServer::observe(util::SimTime now) {
  refill_tokens(now);
  roll_windows(now);
}

RepositoryServer::Admission RepositoryServer::shed_slot(
    util::SimTime now, util::SimTime drain_hint) {
  Admission a;
  const util::SimTime target = now + drain_hint;
  // Monotone slot cursor: successive sheds are handed successive *future*
  // re-admission slots, so a herd that arrived in lockstep comes back spread
  // out — this is the thundering-herd fix, and it is fully deterministic.
  if (herd_cursor_ < target) herd_cursor_ = target;
  a.retry_after = herd_cursor_ - now;
  herd_cursor_ += cfg_.retry_slot;
  return a;
}

RepositoryServer::Admission RepositoryServer::admit(ServeClass cls,
                                                    util::SimTime service,
                                                    util::SimTime now) {
  Admission a;
  c_requests_->inc();
  refill_tokens(now);
  roll_windows(now);

  const bool outage = fault_port_ && fault_port_->down();

  if (!cfg_.admission_enabled) {
    // Legacy front: unbounded queue, no shedding, outage = hard failure.
    // Kept as the E21 control arm demonstrating the stampede failure mode.
    if (outage) {
      a.hard_fail = true;
      return a;
    }
    const util::SimTime start = std::max(now, busy_until_);
    const util::SimTime wait = start - now;
    busy_until_ = start + service;
    if (wait > max_wait_) max_wait_ = wait;
    h_queue_delay_ms_->record(wait.ms());
    a.admitted = true;
    a.latency = busy_until_ - now;
    return a;
  }

  ++win_arrivals_;

  if (outage) {
    // The front itself stays up: it cannot serve, but it CAN answer with a
    // slotted retry-after, which is exactly what keeps the waiting herd
    // de-synchronized for the recovery stampede.
    ++win_shed_;
    c_shed_->inc();
    if (cls == ServeClass::kBackground) c_shed_background_->inc();
    a = shed_slot(now, cfg_.outage_retry_base);
    ASECK_TRACE(trace_, now, k_outage_defer_,
                std::string(serve_class_name(cls)) +
                    " retry_ms=" + std::to_string(a.retry_after.ms()));
    return a;
  }

  if (cls == ServeClass::kBackground && tier_ >= ServerTier::kShedRefresh) {
    // Policy shed, not an overload signal: intentional background rejection
    // must not feed the window ratio or the ladder could never walk down.
    --win_arrivals_;
    c_shed_->inc();
    c_shed_background_->inc();
    a = shed_slot(now, cfg_.tier_window);
    ASECK_TRACE(trace_, now, k_shed_, "background tier_policy");
    return a;
  }

  double& tokens =
      cls == ServeClass::kCampaign ? tokens_campaign_ : tokens_background_;
  const double rate =
      cls == ServeClass::kCampaign ? cfg_.campaign_rps : cfg_.background_rps;
  if (tokens < 1.0) {
    ++win_shed_;
    c_shed_->inc();
    if (cls == ServeClass::kBackground) c_shed_background_->inc();
    const util::SimTime refill_eta =
        rate > 0 ? util::SimTime::from_seconds_f((1.0 - tokens) / rate)
                 : cfg_.retry_slot;
    a = shed_slot(now, refill_eta);
    ASECK_TRACE(trace_, now, k_shed_,
                std::string(serve_class_name(cls)) + " token_bucket");
    return a;
  }

  util::SimTime bound = cfg_.max_queue_delay;
  if (cls == ServeClass::kBackground) {
    bound = util::SimTime::from_ns(static_cast<std::uint64_t>(
        static_cast<double>(bound.ns) * cfg_.background_queue_share));
  }
  if (tier_ >= ServerTier::kShedAdmission) {
    bound = util::SimTime::from_ns(bound.ns / 4);  // drain the queue
  }
  const util::SimTime start = std::max(now, busy_until_);
  const util::SimTime wait = start - now;
  if (wait > bound) {
    ++win_shed_;
    c_shed_->inc();
    if (cls == ServeClass::kBackground) c_shed_background_->inc();
    a = shed_slot(now, busy_until_ - now);
    ASECK_TRACE(trace_, now, k_shed_,
                std::string(serve_class_name(cls)) +
                    " queue_delay_ms=" + std::to_string(wait.ms()));
    return a;
  }

  tokens -= 1.0;
  busy_until_ = start + service;
  if (wait > max_wait_) max_wait_ = wait;
  h_queue_delay_ms_->record(wait.ms());
  a.admitted = true;
  a.latency = busy_until_ - now;
  return a;
}

MetadataResponse RepositoryServer::fetch_metadata(ServeClass cls,
                                                  util::SimTime now) {
  MetadataResponse r;
  util::SimTime service = cfg_.metadata_service;
  if (fault_port_) service += fault_port_->service_slowdown();
  const Admission a = admit(cls, service, now);
  if (a.hard_fail) {
    r.status = ServeStatus::kUnavailable;
    return r;
  }
  if (!a.admitted) {
    r.status = ServeStatus::kRetryAfter;
    r.retry_after = a.retry_after;
    return r;
  }
  const bool stale = snap_director_gen_ != director_.generation() ||
                     snap_image_gen_ != image_repo_.generation();
  if (!snap_.director || (stale && tier_ < ServerTier::kShedRefresh)) {
    // One copy-on-write refresh serves the whole wave; under kShedRefresh+
    // the stale generation keeps being served instead (freshness is the
    // second capability shed, after delta CPU).
    snap_.director = director_.snapshot();
    snap_.image = image_repo_.snapshot();
    snap_.generation = next_generation_++;
    snap_director_gen_ = director_.generation();
    snap_image_gen_ = image_repo_.generation();
    c_refresh_->inc();
    ASECK_TRACE(trace_, now, k_refresh_,
                "gen=" + std::to_string(snap_.generation));
  } else {
    r.coalesced = true;
    c_coalesced_->inc();
  }
  r.snapshot = snap_;
  r.latency = a.latency;
  c_served_->inc();
  return r;
}

ChunkResponse RepositoryServer::fetch_chunk(ServeClass cls,
                                            const std::string& image_name,
                                            std::size_t offset,
                                            std::size_t max_len,
                                            util::SimTime now) {
  ChunkResponse r;
  // Generation-keyed so a republished image can never serve stale chunks.
  const std::string key = image_name + ":" +
                          std::to_string(image_repo_.generation()) + ":" +
                          std::to_string(offset) + ":" +
                          std::to_string(max_len);
  // The front checks its cache before queueing the work (a hit is a cheap
  // RAM serve); the probe is deterministic even when admission then sheds.
  std::shared_ptr<const util::Bytes>* cached = cache_.find(key);
  const bool hit = cached != nullptr;
  const auto base_it = delta_bases_.find(image_name);
  const bool delta_on =
      base_it != delta_bases_.end() && tier_ < ServerTier::kShedDelta;

  util::SimTime service = hit ? cfg_.cache_hit_service : cfg_.chunk_service;
  if (!hit && delta_on) {
    // Delta encoding trades CPU for bandwidth; the CPU is the first thing
    // the degradation ladder sheds.
    service += util::SimTime::from_ns(static_cast<std::uint64_t>(
        cfg_.delta_cpu_factor * static_cast<double>(cfg_.chunk_service.ns)));
  }
  if (fault_port_) service += fault_port_->service_slowdown();

  const Admission a = admit(cls, service, now);
  if (a.hard_fail) {
    r.status = ServeStatus::kUnavailable;
    return r;
  }
  if (!a.admitted) {
    r.status = ServeStatus::kRetryAfter;
    r.retry_after = a.retry_after;
    return r;
  }

  if (hit) {
    r.chunk = **cached;
    r.cache_hit = true;
    c_cache_hits_->inc();
  } else {
    std::optional<util::Bytes> bytes =
        image_repo_.download_range(image_name, offset, max_len);
    if (!bytes) {
      // Unknown image or the backing repository itself is down — the queue
      // slot was spent discovering that; the client sees a transport error.
      r.status = ServeStatus::kUnavailable;
      return r;
    }
    c_cache_misses_->inc();
    auto shared = std::make_shared<const util::Bytes>(std::move(*bytes));
    r.chunk = *shared;
    cache_.put(key, std::move(shared));
  }

  std::size_t wire = r.chunk.size();
  if (delta_on) {
    const util::Bytes& base = base_it->second;
    std::size_t diff = 0;
    for (std::size_t i = 0; i < r.chunk.size(); ++i) {
      if (offset + i >= base.size() || base[offset + i] != r.chunk[i]) ++diff;
    }
    constexpr std::size_t kDeltaHeader = 16;  // per-chunk frame overhead
    if (diff + kDeltaHeader < r.chunk.size()) {
      wire = diff + kDeltaHeader;
      r.delta = true;
      c_delta_chunks_->inc();
      c_delta_bytes_saved_->inc(r.chunk.size() - wire);
    }
  }
  r.wire_bytes = wire;
  c_bytes_sent_->inc(wire);
  r.latency = a.latency;
  c_served_->inc();
  return r;
}

void RepositoryServer::register_delta_base(const std::string& image_name,
                                           util::Bytes base) {
  delta_bases_[image_name] = std::move(base);
}

}  // namespace aseck::ota
