#pragma once
// Campaign-storm-hardened serving front for the Uptane director/image repos.
//
// `ota::Repository` is a passive in-process map; a million-vehicle campaign
// (sharded metro x CampaignRunner waves) turns it into an unmodeled serving
// bottleneck — a wave stampede simply could not fail. `RepositoryServer`
// models the backend honestly as a single-server virtual queue with:
//
//   * admission control — per-class token buckets (safety-critical campaign
//     traffic vs background polls) plus a bounded queue-delay admission
//     test; rejected requests get an explicit kRetryAfter response carrying
//     a server-suggested backoff drawn from a monotonically advancing slot
//     cursor, so a shed herd is re-admitted *de-synchronized* instead of
//     re-stampeding in lockstep;
//   * request coalescing — one immutable generation-numbered metadata
//     snapshot (Repository::snapshot, copy-on-write) serves an entire wave,
//     and a CDN-style chunk cache (util::LruCache) serves repeated image
//     ranges without re-reading the store;
//   * per-vehicle block deltas — when the fleet's installed image is
//     registered, chunk responses carry only the bytes that differ from it
//     (CPU-for-bandwidth trade: delta encoding costs extra service time);
//   * graceful degradation — under sustained overload the server walks a
//     ladder mirroring the gateway's normal -> degraded -> limp-home modes:
//     kNormal -> kShedDelta (delta encoding off: CPU first) -> kShedRefresh
//     (background polls shed, snapshot refresh suspended) -> kShedAdmission
//     (queue bound tightened so almost everything is deferred and the queue
//     drains). Every transition is a TraceBus event and a ledger entry.
//
// Chaos integration: a sim::FaultPort supplies kOutage windows (the whole
// front is down; with admission control the server still answers with
// slotted kRetryAfter, which is exactly what de-synchronizes a thundering
// herd waiting out the outage) and kRepoSlowdown windows (per-request
// service-latency inflation — the deterministic way to push the server
// through each degradation tier).
//
// Everything is driven by caller-supplied sim time: same seed + same request
// sequence => bit-identical responses, tiers, and metrics (the E21 CI diff).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ota/repository.hpp"
#include "sim/telemetry.hpp"
#include "util/lru.hpp"

namespace aseck::ota {

/// Priority class of a request. Campaign traffic (safety-critical updates in
/// flight) preempts background metadata polls at every admission stage.
enum class ServeClass { kCampaign, kBackground };
const char* serve_class_name(ServeClass c);

enum class ServeStatus {
  kOk,          // served; `latency` = queue wait + service time
  kRetryAfter,  // shed by admission control; come back at `retry_after`
  kUnavailable, // hard failure (outage with admission control off, or
                // unknown image) — the legacy transport-error path
};
const char* serve_status_name(ServeStatus s);

/// Degradation ladder (cheapest capability shed first).
enum class ServerTier {
  kNormal,         // everything on
  kShedDelta,      // delta encoding off — shed CPU, spend bandwidth
  kShedRefresh,    // background class shed, snapshot refresh suspended
  kShedAdmission,  // queue bound tightened; most requests deferred
};
const char* server_tier_name(ServerTier t);

/// One coalesced immutable metadata view: both repositories' bundles under a
/// single server generation. Copied never, shared by every vehicle it serves.
struct MetadataSnapshot {
  std::uint64_t generation = 0;
  std::shared_ptr<const MetadataBundle> director;
  std::shared_ptr<const MetadataBundle> image;
};

struct ServerConfig {
  /// False disables every admission mechanism (no shedding, unbounded queue,
  /// no retry-after): the legacy "repository cannot fail" behavior, kept as
  /// the E21 control arm that demonstrates the stampede failure mode.
  bool admission_enabled = true;

  // --- token buckets (tokens/sec, shared burst capacity) ---------------------
  double campaign_rps = 2000.0;
  double background_rps = 200.0;
  double bucket_burst = 64.0;

  // --- virtual service queue -------------------------------------------------
  util::SimTime metadata_service = util::SimTime::from_us(50);
  util::SimTime chunk_service = util::SimTime::from_us(200);     // store read
  util::SimTime cache_hit_service = util::SimTime::from_us(25);  // RAM serve
  double delta_cpu_factor = 3.0;  // delta encode costs x chunk_service extra
  /// Admission bound on queueing delay (campaign class). Background uses
  /// background_queue_share of it; kShedAdmission tightens both by 4x.
  util::SimTime max_queue_delay = util::SimTime::from_ms(100);
  double background_queue_share = 0.25;

  // --- retry-after slot cursor (herd de-synchronization) ---------------------
  util::SimTime retry_slot = util::SimTime::from_ms(20);  // per-shed spacing
  util::SimTime outage_retry_base = util::SimTime::from_ms(500);

  // --- degradation ladder ----------------------------------------------------
  util::SimTime tier_window = util::SimTime::from_ms(500);  // observation
  double shed_enter_ratio = 0.10;  // window shed ratio that escalates
  double shed_exit_ratio = 0.02;   // ceiling for a de-escalating window

  // --- chunk cache -----------------------------------------------------------
  std::size_t chunk_cache_entries = 512;
};

struct MetadataResponse {
  ServeStatus status = ServeStatus::kOk;
  MetadataSnapshot snapshot;                        // kOk only
  bool coalesced = false;       // served from the already-built generation
  util::SimTime latency = util::SimTime::zero();    // kOk: wait + service
  util::SimTime retry_after = util::SimTime::zero();  // kRetryAfter only
};

struct ChunkResponse {
  ServeStatus status = ServeStatus::kOk;
  util::Bytes chunk;            // full plaintext range (delta already applied)
  std::size_t wire_bytes = 0;   // bytes on the wire (< chunk.size() if delta)
  bool cache_hit = false;
  bool delta = false;
  util::SimTime latency = util::SimTime::zero();
  util::SimTime retry_after = util::SimTime::zero();
};

class RepositoryServer {
 public:
  RepositoryServer(const Repository& director, const Repository& image_repo,
                   ServerConfig cfg = {});

  /// Coalesced metadata fetch. kOk responses share one snapshot per
  /// generation; the snapshot refreshes lazily when either repository
  /// republished (suspended at ServerTier::kShedRefresh and above).
  MetadataResponse fetch_metadata(ServeClass cls, util::SimTime now);

  /// Image range fetch through the chunk cache. When a delta base is
  /// registered for `image_name` (and the tier still allows delta encoding)
  /// the response's `wire_bytes` counts only the bytes differing from the
  /// base plus a small per-chunk frame header.
  ChunkResponse fetch_chunk(ServeClass cls, const std::string& image_name,
                            std::size_t offset, std::size_t max_len,
                            util::SimTime now);

  /// Registers the fleet's currently-installed image bytes as the delta base
  /// for `image_name` chunk responses.
  void register_delta_base(const std::string& image_name, util::Bytes base);

  /// kOutage / kRepoSlowdown windows (target e.g. "ota.server").
  void set_fault_port(sim::FaultPort* port) { fault_port_ = port; }

  /// Rolls the observation window / token buckets forward without issuing a
  /// request — the backpressure poll hook (a paused campaign still needs the
  /// ladder to walk back down while no traffic arrives).
  void observe(util::SimTime now);

  ServerTier tier() const { return tier_; }
  /// Shed ratio of the last completed observation window — the wave-level
  /// backpressure signal consumed by CampaignRunner.
  double last_window_shed_ratio() const { return last_shed_ratio_; }

  struct TierTransition {
    util::SimTime at = util::SimTime::zero();
    ServerTier from = ServerTier::kNormal;
    ServerTier to = ServerTier::kNormal;
  };
  const std::vector<TierTransition>& transitions() const {
    return transitions_;
  }
  /// Highest tier reached since construction.
  ServerTier peak_tier() const { return peak_tier_; }

  // --- stats (mirrored in the ota.repo.* metrics) ----------------------------
  std::uint64_t requests() const { return c_requests_->value(); }
  std::uint64_t served() const { return c_served_->value(); }
  std::uint64_t shed() const { return c_shed_->value(); }
  std::uint64_t shed_background() const { return c_shed_background_->value(); }
  std::uint64_t coalesced() const { return c_coalesced_->value(); }
  std::uint64_t snapshot_refreshes() const { return c_refresh_->value(); }
  std::uint64_t cache_hits() const { return c_cache_hits_->value(); }
  std::uint64_t cache_misses() const { return c_cache_misses_->value(); }
  double cache_hit_rate() const {
    const std::uint64_t h = cache_hits(), m = cache_misses();
    return h + m == 0 ? 0.0
                      : static_cast<double>(h) / static_cast<double>(h + m);
  }
  std::uint64_t delta_chunks() const { return c_delta_chunks_->value(); }
  std::uint64_t bytes_sent() const { return c_bytes_sent_->value(); }
  std::uint64_t delta_bytes_saved() const {
    return c_delta_bytes_saved_->value();
  }
  std::uint64_t degraded_transitions() const {
    return c_transitions_->value();
  }
  /// Worst queueing delay any admitted request experienced.
  util::SimTime max_queue_delay_seen() const { return max_wait_; }

  sim::TraceScope& trace() { return trace_; }
  /// Rebinds trace events and ota.repo.* counters onto a shared telemetry
  /// plane (counters carry their values across the rewire, and survive
  /// MetricsRegistry::merge_from in sharded runs).
  void bind_telemetry(const sim::Telemetry& t);

 private:
  struct Admission {
    bool admitted = false;
    bool hard_fail = false;  // kUnavailable (admission control off + outage)
    util::SimTime latency = util::SimTime::zero();
    util::SimTime retry_after = util::SimTime::zero();
  };
  Admission admit(ServeClass cls, util::SimTime service, util::SimTime now);
  Admission shed_slot(util::SimTime now, util::SimTime drain_hint);
  void roll_windows(util::SimTime now);
  void refill_tokens(util::SimTime now);
  void set_tier(ServerTier t, util::SimTime now);
  void wire_telemetry();

  const Repository& director_;
  const Repository& image_repo_;
  ServerConfig cfg_;
  sim::FaultPort* fault_port_ = nullptr;

  // virtual single-server queue
  util::SimTime busy_until_ = util::SimTime::zero();
  util::SimTime max_wait_ = util::SimTime::zero();

  // token buckets
  double tokens_campaign_ = 0;
  double tokens_background_ = 0;
  util::SimTime last_refill_ = util::SimTime::zero();
  bool buckets_primed_ = false;

  // retry-after slot cursor
  util::SimTime herd_cursor_ = util::SimTime::zero();

  // degradation ladder
  ServerTier tier_ = ServerTier::kNormal;
  ServerTier peak_tier_ = ServerTier::kNormal;
  std::vector<TierTransition> transitions_;
  util::SimTime window_start_ = util::SimTime::zero();
  bool window_open_ = false;
  std::uint64_t win_arrivals_ = 0;
  std::uint64_t win_shed_ = 0;
  double last_shed_ratio_ = 0.0;

  // coalesced metadata snapshot
  MetadataSnapshot snap_;
  std::uint64_t snap_director_gen_ = ~0ULL;
  std::uint64_t snap_image_gen_ = ~0ULL;
  std::uint64_t next_generation_ = 1;

  // chunk cache + delta bases
  util::LruCache<std::string, std::shared_ptr<const util::Bytes>> cache_;
  std::map<std::string, util::Bytes> delta_bases_;

  // telemetry
  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_requests_ = nullptr;
  sim::Counter* c_served_ = nullptr;
  sim::Counter* c_shed_ = nullptr;
  sim::Counter* c_shed_background_ = nullptr;
  sim::Counter* c_coalesced_ = nullptr;
  sim::Counter* c_refresh_ = nullptr;
  sim::Counter* c_cache_hits_ = nullptr;
  sim::Counter* c_cache_misses_ = nullptr;
  sim::Counter* c_delta_chunks_ = nullptr;
  sim::Counter* c_bytes_sent_ = nullptr;
  sim::Counter* c_delta_bytes_saved_ = nullptr;
  sim::Counter* c_transitions_ = nullptr;
  sim::LatencyHistogram* h_queue_delay_ms_ = nullptr;
  sim::TraceId k_shed_ = 0, k_tier_up_ = 0, k_tier_down_ = 0, k_refresh_ = 0,
               k_outage_defer_ = 0;
};

}  // namespace aseck::ota
