#include "ota/campaign.hpp"

#include <algorithm>
#include <cstdio>

namespace aseck::ota {

// --- ConfirmWatchdog ---------------------------------------------------------

ConfirmWatchdog::ConfirmWatchdog(sim::Scheduler& sched,
                                 safety::HealthSupervisor& supervisor,
                                 ecu::Flash& flash, std::string entity,
                                 util::SimTime check_period)
    : sched_(sched),
      supervisor_(supervisor),
      flash_(flash),
      entity_(std::move(entity)) {
  safety::AliveSupervision alive;
  alive.period = check_period;
  alive.expected = 1;
  alive.min_margin = 0;
  alive.max_margin = 3;  // heartbeat runs at 2x the cycle; allow phase drift
  safety::EscalationPolicy esc;
  esc.failed_tolerance = 0;  // first silent cycle expires the entity
  esc.max_resets = 3;
  supervisor_.supervise_alive(entity_, alive, esc);
  supervisor_.set_reset_handler(entity_, [this](const std::string&) {
    // The watchdog reset IS the reboot: boot-time recovery auto-reverts the
    // lapsed ACTIVE-unconfirmed slot to the previous confirmed bank.
    const auto rep = flash_.boot(sched_.now());
    if (rep.auto_reverted) ++auto_reverts_;
    return rep.bootable;
  });
  heartbeat_ = std::make_unique<safety::HeartbeatEmitter>(
      sched_, supervisor_, entity_,
      util::SimTime::from_ns(std::max<std::uint64_t>(1, check_period.ns / 2)),
      [this] {
        const util::SimTime dl = flash_.confirm_deadline();
        const bool lapsed = flash_.confirm_pending() &&
                            dl != util::SimTime::zero() && sched_.now() > dl;
        return !lapsed;
      });
}

void ConfirmWatchdog::start() {
  heartbeat_->start();
  if (!supervisor_.running()) supervisor_.start();
}

void ConfirmWatchdog::stop() { heartbeat_->stop(); }

// --- CampaignRunner ----------------------------------------------------------

const char* vehicle_outcome_name(VehicleOutcome o) {
  switch (o) {
    case VehicleOutcome::kPending: return "pending";
    case VehicleOutcome::kSkipped: return "skipped";
    case VehicleOutcome::kUpdated: return "updated";
    case VehicleOutcome::kUpdatedAfterPowerLoss:
      return "updated_after_power_loss";
    case VehicleOutcome::kRevertedSelfTest: return "reverted_self_test";
    case VehicleOutcome::kFetchFailed: return "fetch_failed";
    case VehicleOutcome::kBricked: return "bricked";
  }
  return "?";
}

CampaignRunner::CampaignRunner(sim::Scheduler& sched,
                               const Repository& director_repo,
                               const Repository& image_repo,
                               std::string image_name, std::string hardware_id,
                               CampaignConfig cfg)
    : sched_(sched),
      director_(director_repo),
      image_repo_(image_repo),
      image_name_(std::move(image_name)),
      hardware_id_(std::move(hardware_id)),
      cfg_(cfg) {
  if (cfg_.wave_size == 0) cfg_.wave_size = 1;
}

void CampaignRunner::add_vehicle(std::string id, ecu::Flash& flash,
                                 FullVerificationClient& client,
                                 std::function<bool()> self_test,
                                 ecu::KvStore* kv) {
  Vehicle v;
  v.flash = &flash;
  v.client = &client;
  v.self_test = std::move(self_test);
  v.kv = kv;
  vehicles_.push_back(std::move(v));
  VehicleLedger led;
  led.id = std::move(id);
  led.wave = (vehicles_.size() - 1) / cfg_.wave_size;
  ledger_.push_back(std::move(led));
  reboots_.push_back(0);
}

CampaignRunner::ConfigPushReport CampaignRunner::push_config(
    const ecu::KvTransaction& txn, int max_reboots) {
  ConfigPushReport rep;
  for (Vehicle& v : vehicles_) {
    if (!v.kv) continue;
    ++rep.vehicles;
    bool committed = false;
    bool rebooted = false;
    for (int attempt = 0; attempt <= max_reboots; ++attempt) {
      if (!v.kv->mounted() || v.kv->lost_power()) {
        // The power-cut reboot: mount-time recovery discards the cut
        // transaction entirely (atomicity), then we retry from scratch.
        v.kv->mount();
        if (attempt > 0) rebooted = true;
      }
      if (v.kv->commit(txn)) {
        committed = true;
        break;
      }
    }
    if (committed) {
      ++rep.committed;
      if (rebooted) ++rep.retried;
    } else {
      ++rep.failed;
    }
  }
  return rep;
}

void CampaignRunner::start(std::function<void()> done) {
  if (started_) return;
  started_ = true;
  done_ = std::move(done);
  if (vehicles_.empty()) {
    finished_ = true;
    if (done_) done_();
    return;
  }
  start_wave(0);
}

void CampaignRunner::gate_wave(std::size_t wave, int polls) {
  RepositoryServer* srv = cfg_.retry.server;
  if (srv && cfg_.pause_shed_ratio > 0) {
    srv->observe(sched_.now());  // roll the window even while traffic paused
    const bool paused = polls > 0;
    const double threshold =
        paused ? cfg_.resume_shed_ratio : cfg_.pause_shed_ratio;
    if (srv->last_window_shed_ratio() > threshold &&
        polls < cfg_.max_backpressure_polls) {
      if (!paused) ++backpressure_pauses_;
      sched_.schedule_after(cfg_.backpressure_poll, [this, wave, polls] {
        gate_wave(wave, polls + 1);
      });
      return;
    }
  }
  start_wave(wave);
}

void CampaignRunner::start_wave(std::size_t wave) {
  current_wave_ = wave;
  ++waves_dispatched_;
  const std::size_t begin = wave * cfg_.wave_size;
  const std::size_t end =
      std::min(begin + cfg_.wave_size, vehicles_.size());
  wave_pending_ = end - begin;
  for (std::size_t i = begin; i < end; ++i) {
    const util::SimTime delay =
        util::SimTime::from_ns(cfg_.vehicle_stagger.ns * (i - begin));
    sched_.schedule_after(delay, [this, i] { start_fetch(i); });
  }
}

void CampaignRunner::start_fetch(std::size_t idx) {
  Vehicle& v = vehicles_[idx];
  ++ledger_[idx].fetch_sessions;
  const std::uint32_t installed =
      v.flash->active() ? v.flash->active()->version : 0;
  v.client->fetch_and_stage_with_retry(
      sched_, director_, image_repo_, image_name_, hardware_id_, installed,
      cfg_.retry, *v.flash,
      [this, idx](const FullVerificationClient::RetryOutcome& ro) {
        on_fetch_done(idx, ro);
      });
}

void CampaignRunner::on_fetch_done(
    std::size_t idx, const FullVerificationClient::RetryOutcome& ro) {
  VehicleLedger& led = ledger_[idx];
  led.resume_bytes_saved += ro.resume_bytes_saved;
  led.last_error = ro.outcome.error;
  if (ro.outcome.error == OtaError::kOk) {
    run_install(idx);
    return;
  }
  if (ro.outcome.error == OtaError::kPowerLoss) {
    ++led.power_losses;
    schedule_reboot(idx);
    return;
  }
  finish_vehicle(idx, VehicleOutcome::kFetchFailed);
}

void CampaignRunner::run_install(std::size_t idx) {
  Vehicle& v = vehicles_[idx];
  const InstallResult r = install_staged(*v.flash, sched_.now(),
                                         cfg_.confirm_timeout, v.self_test);
  switch (r) {
    case InstallResult::kCommitted:
      finish_vehicle(idx, ledger_[idx].power_losses > 0
                              ? VehicleOutcome::kUpdatedAfterPowerLoss
                              : VehicleOutcome::kUpdated);
      return;
    case InstallResult::kRevertedSelfTest:
      finish_vehicle(idx, VehicleOutcome::kRevertedSelfTest);
      return;
    case InstallResult::kPowerLoss:
      ++ledger_[idx].power_losses;
      schedule_reboot(idx);
      return;
    case InstallResult::kStageRejected:
      finish_vehicle(idx, VehicleOutcome::kFetchFailed);
      return;
  }
}

void CampaignRunner::schedule_reboot(std::size_t idx) {
  sched_.schedule_after(cfg_.reboot_delay, [this, idx] { reboot(idx); });
}

void CampaignRunner::reboot(std::size_t idx) {
  Vehicle& v = vehicles_[idx];
  VehicleLedger& led = ledger_[idx];
  const ecu::Flash::BootReport rep = v.flash->boot(sched_.now());
  led.recovery_us += rep.scan_us;
  if (!rep.bootable) {
    finish_vehicle(idx, VehicleOutcome::kBricked);
    return;
  }
  if (++reboots_[idx] > cfg_.max_reboots) {
    // Recovery budget exhausted; the vehicle keeps its previous image.
    finish_vehicle(idx, VehicleOutcome::kFetchFailed);
    return;
  }
  if (v.flash->confirm_pending()) {
    // The cut hit the commit marker: new image active but unconfirmed.
    const bool ok = !v.self_test || v.self_test();
    if (!ok) {
      v.flash->revert();
      finish_vehicle(idx, VehicleOutcome::kRevertedSelfTest);
      return;
    }
    v.flash->commit();
    if (v.flash->lost_power()) {
      ++led.power_losses;
      schedule_reboot(idx);
      return;
    }
    finish_vehicle(idx, VehicleOutcome::kUpdatedAfterPowerLoss);
    return;
  }
  if (v.flash->staged()) {
    // Journal sealed before the cut; only activation remains.
    run_install(idx);
    return;
  }
  // Resume the download from the recovered journal watermark.
  start_fetch(idx);
}

void CampaignRunner::finish_vehicle(std::size_t idx, VehicleOutcome o) {
  VehicleLedger& led = ledger_[idx];
  if (led.outcome != VehicleOutcome::kPending) return;
  led.outcome = o;
  led.finished_at = sched_.now();
  const ecu::FirmwareImage* img = vehicles_[idx].flash->active();
  led.final_version = img ? img->version : 0;
  if (led.wave == current_wave_ && wave_pending_ > 0) {
    if (--wave_pending_ == 0) finish_wave(current_wave_);
  }
}

bool CampaignRunner::wave_failure(VehicleOutcome o) const {
  return o == VehicleOutcome::kRevertedSelfTest ||
         o == VehicleOutcome::kFetchFailed || o == VehicleOutcome::kBricked;
}

void CampaignRunner::finish_wave(std::size_t wave) {
  const std::size_t begin = wave * cfg_.wave_size;
  const std::size_t end =
      std::min(begin + cfg_.wave_size, vehicles_.size());
  std::size_t failures = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (wave_failure(ledger_[i].outcome)) ++failures;
  }
  const bool abort = static_cast<double>(failures) /
                         static_cast<double>(end - begin) >=
                     cfg_.wave_abort_ratio;
  const bool more = end < vehicles_.size();
  if (abort) aborted_ = true;
  if (abort && more) {
    for (std::size_t i = end; i < vehicles_.size(); ++i) {
      ledger_[i].outcome = VehicleOutcome::kSkipped;
      ledger_[i].finished_at = sched_.now();
      const ecu::FirmwareImage* img = vehicles_[i].flash->active();
      ledger_[i].final_version = img ? img->version : 0;
    }
    finished_ = true;
    if (done_) done_();
    return;
  }
  if (!more) {
    finished_ = true;
    if (done_) done_();
    return;
  }
  sched_.schedule_after(cfg_.wave_gap,
                        [this, wave] { gate_wave(wave + 1, 0); });
}

std::size_t CampaignRunner::count(VehicleOutcome o) const {
  std::size_t n = 0;
  for (const VehicleLedger& l : ledger_) n += l.outcome == o ? 1 : 0;
  return n;
}

double CampaignRunner::completion_rate() const {
  if (ledger_.empty()) return 0.0;
  return static_cast<double>(updated()) /
         static_cast<double>(ledger_.size());
}

std::size_t CampaignRunner::total_resume_bytes_saved() const {
  std::size_t n = 0;
  for (const VehicleLedger& l : ledger_) n += l.resume_bytes_saved;
  return n;
}

std::string CampaignRunner::to_json() const {
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "{\"image\":\"%s\",\"fleet\":%zu,\"waves\":%zu,"
                "\"aborted\":%s,\"updated\":%zu,\"bricked\":%zu,"
                "\"completion_rate\":%.4f,\"resume_bytes_saved\":%zu,"
                "\"backpressure_pauses\":%llu,\"vehicles\":[",
                image_name_.c_str(), ledger_.size(), waves_dispatched_,
                aborted_ ? "true" : "false", updated(), bricked(),
                completion_rate(), total_resume_bytes_saved(),
                static_cast<unsigned long long>(backpressure_pauses_));
  std::string out = buf;
  bool first = true;
  for (const VehicleLedger& l : ledger_) {
    if (!first) out += ",";
    first = false;
    std::snprintf(
        buf, sizeof buf,
        "{\"id\":\"%s\",\"wave\":%zu,\"outcome\":\"%s\","
        "\"fetch_sessions\":%d,\"power_losses\":%d,"
        "\"resume_bytes_saved\":%zu,\"recovery_us\":%.3f,"
        "\"final_version\":%u,\"last_error\":\"%s\",\"finished_ns\":%llu}",
        l.id.c_str(), l.wave, vehicle_outcome_name(l.outcome),
        l.fetch_sessions, l.power_losses, l.resume_bytes_saved, l.recovery_us,
        l.final_version, ota_error_name(l.last_error),
        static_cast<unsigned long long>(l.finished_at.ns));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace aseck::ota
