#pragma once
// Fleet update campaigns and the confirm-or-revert watchdog.
//
// The paper's §5 extensibility drivers (in-field patching at fleet scale)
// and §7 secure-update layer meet operations here: a `CampaignRunner` rolls
// an image out in staggered waves, watches a per-wave abort threshold so a
// bad image or a power-loss storm halts the campaign instead of bricking
// the fleet, and keeps a per-vehicle outcome ledger. Each vehicle streams
// the image into its journaled flash (ota::fetch_and_stage_with_retry),
// survives injected power cuts by rebooting (`Flash::boot()`) and resuming
// from the journal watermark, and finishes with install_staged's
// confirm-or-revert deadline.
//
// `ConfirmWatchdog` wires that deadline to `safety::HealthSupervisor` as a
// real supervised entity: a heartbeat emitter beats while the flash is
// healthy (no lapsed unconfirmed activation) and falls silent the moment
// the confirm deadline lapses; the supervisor's escalation ladder then
// fires a reset that runs boot-time recovery, which auto-reverts to the
// previous bank. Missed-confirm detection therefore shows up on the same
// telemetry plane as every other supervision incident (E16).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ecu/flash.hpp"
#include "ecu/kvstore.hpp"
#include "ota/client.hpp"
#include "ota/repository.hpp"
#include "safety/supervisor.hpp"
#include "sim/scheduler.hpp"
#include "util/time.hpp"

namespace aseck::ota {

/// Supervised confirm-or-revert deadline: an alive-supervised entity whose
/// heartbeat is suppressed once the active slot's confirmation deadline has
/// lapsed without commit(); the supervisor's reset handler then runs
/// `Flash::boot()`, which auto-reverts to the previous confirmed bank.
class ConfirmWatchdog {
 public:
  /// Registers `entity` on `supervisor` (call before supervisor.start()).
  ConfirmWatchdog(sim::Scheduler& sched, safety::HealthSupervisor& supervisor,
                  ecu::Flash& flash, std::string entity,
                  util::SimTime check_period);

  /// Starts the heartbeat (and the supervisor, if not yet running).
  void start();
  void stop();

  /// Recoveries performed by the supervisor's reset (lapsed deadline hit).
  std::uint64_t auto_reverts() const { return auto_reverts_; }
  const std::string& entity() const { return entity_; }

 private:
  sim::Scheduler& sched_;
  safety::HealthSupervisor& supervisor_;
  ecu::Flash& flash_;
  std::string entity_;
  std::unique_ptr<safety::HeartbeatEmitter> heartbeat_;
  std::uint64_t auto_reverts_ = 0;
};

/// Terminal state of one vehicle in a campaign.
enum class VehicleOutcome {
  kPending,               // not yet dispatched / still in flight
  kSkipped,               // campaign aborted before this vehicle's wave
  kUpdated,               // new image confirmed, no incident
  kUpdatedAfterPowerLoss, // new image confirmed after >=1 power-cut reboot
  kRevertedSelfTest,      // self-test failed; previous bank restored
  kFetchFailed,           // metadata/transport failure; previous bank intact
  kBricked,               // no bootable image after recovery (the invariant)
};
const char* vehicle_outcome_name(VehicleOutcome o);

/// Staggered-wave rollout parameters.
struct CampaignConfig {
  std::size_t wave_size = 4;
  util::SimTime wave_gap = util::SimTime::from_s(10);  // wave end -> next wave
  util::SimTime vehicle_stagger = util::SimTime::from_ms(500);  // within a wave
  /// Abort the campaign when failed/wave_size reaches this ratio (> 1 =
  /// never abort). Failures: reverted self-tests, fetch failures, bricks.
  double wave_abort_ratio = 0.5;
  int max_reboots = 3;  // power-cut recovery attempts per vehicle
  util::SimTime reboot_delay = util::SimTime::from_s(2);
  util::SimTime confirm_timeout = util::SimTime::from_s(30);
  FullVerificationClient::RetryPolicy retry;
  /// Wave-level backpressure against the serving front (needs retry.server;
  /// 0 disables). Before dispatching a wave the runner polls the server's
  /// last-window shed ratio: above pause_shed_ratio the wave PAUSES and
  /// re-polls every backpressure_poll until the ratio recovers to
  /// resume_shed_ratio (hysteresis) or the poll budget runs out — the fleet
  /// operator's half of the admission-control contract.
  double pause_shed_ratio = 0.0;
  double resume_shed_ratio = 0.05;
  util::SimTime backpressure_poll = util::SimTime::from_s(1);
  int max_backpressure_polls = 120;
};

/// Per-vehicle campaign ledger entry (deterministically exported).
struct VehicleLedger {
  std::string id;
  std::size_t wave = 0;
  VehicleOutcome outcome = VehicleOutcome::kPending;
  int fetch_sessions = 0;    // fetch_and_stage_with_retry invocations
  int power_losses = 0;      // injected cuts survived (fetch or install)
  std::size_t resume_bytes_saved = 0;  // journal bytes never refetched
  double recovery_us = 0.0;  // summed boot-time recovery scan latency
  std::uint32_t final_version = 0;
  OtaError last_error = OtaError::kOk;
  util::SimTime finished_at = util::SimTime::zero();
};

/// Staggered-wave fleet rollout with per-wave abort and outcome ledger.
class CampaignRunner {
 public:
  CampaignRunner(sim::Scheduler& sched, const Repository& director_repo,
                 const Repository& image_repo, std::string image_name,
                 std::string hardware_id, CampaignConfig cfg);

  /// Registers a vehicle (dispatch order = registration order). The flash
  /// and client must outlive the campaign. An empty self_test passes. `kv`
  /// optionally attaches the vehicle's provisioning store so push_config can
  /// reach it.
  void add_vehicle(std::string id, ecu::Flash& flash,
                   FullVerificationClient& client,
                   std::function<bool()> self_test = {},
                   ecu::KvStore* kv = nullptr);

  /// Fleet-wide transactional config push (trust anchors, image signatures,
  /// pseudonym/campaign parameters): commits `txn` into every registered
  /// vehicle's provisioning store. A vehicle whose commit is cut by power
  /// loss reboots (remounts — the cut transaction is invisible, by the
  /// kvstore's atomicity contract) and retries, up to `max_reboots` times.
  struct ConfigPushReport {
    std::size_t vehicles = 0;   // vehicles with an attached kvstore
    std::size_t committed = 0;  // transaction fully applied
    std::size_t retried = 0;    // of those, needed >=1 power-cut reboot
    std::size_t failed = 0;     // still unapplied after max_reboots
  };
  ConfigPushReport push_config(const ecu::KvTransaction& txn,
                               int max_reboots = 3);

  /// Schedules wave 0; `done` fires when the campaign completes or aborts.
  void start(std::function<void()> done = {});

  bool finished() const { return finished_; }
  bool aborted() const { return aborted_; }
  std::size_t waves_dispatched() const { return waves_dispatched_; }
  const std::vector<VehicleLedger>& ledger() const { return ledger_; }
  std::size_t count(VehicleOutcome o) const;
  std::size_t updated() const {
    return count(VehicleOutcome::kUpdated) +
           count(VehicleOutcome::kUpdatedAfterPowerLoss);
  }
  std::size_t bricked() const { return count(VehicleOutcome::kBricked); }
  /// Updated vehicles / fleet size.
  double completion_rate() const;
  std::size_t total_resume_bytes_saved() const;
  /// Waves whose dispatch was delayed at least once by server backpressure.
  std::uint64_t backpressure_pauses() const { return backpressure_pauses_; }

  /// Deterministic ledger export: same seed + same script => byte-identical.
  std::string to_json() const;

 private:
  struct Vehicle {
    ecu::Flash* flash = nullptr;
    FullVerificationClient* client = nullptr;
    std::function<bool()> self_test;
    ecu::KvStore* kv = nullptr;
  };

  void start_wave(std::size_t wave);
  void gate_wave(std::size_t wave, int polls);
  void start_fetch(std::size_t idx);
  void on_fetch_done(std::size_t idx, const FullVerificationClient::RetryOutcome& ro);
  void run_install(std::size_t idx);
  void schedule_reboot(std::size_t idx);
  void reboot(std::size_t idx);
  void finish_vehicle(std::size_t idx, VehicleOutcome o);
  void finish_wave(std::size_t wave);
  bool wave_failure(VehicleOutcome o) const;

  sim::Scheduler& sched_;
  const Repository& director_;
  const Repository& image_repo_;
  std::string image_name_;
  std::string hardware_id_;
  CampaignConfig cfg_;
  std::vector<Vehicle> vehicles_;
  std::vector<VehicleLedger> ledger_;
  std::vector<int> reboots_;  // per-vehicle recovery attempts used
  std::function<void()> done_;
  std::size_t wave_pending_ = 0;   // vehicles still in flight this wave
  std::size_t current_wave_ = 0;
  std::size_t waves_dispatched_ = 0;
  std::uint64_t backpressure_pauses_ = 0;
  bool started_ = false;
  bool finished_ = false;
  bool aborted_ = false;
};

}  // namespace aseck::ota
