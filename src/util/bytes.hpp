#pragma once
// Byte-buffer utilities shared by every subsystem.
//
// `Bytes` is the canonical octet-string type for frames, keys, digests and
// serialized metadata throughout the library.

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace aseck::util {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Lowercase hex encoding, e.g. {0xde,0xad} -> "dead".
std::string to_hex(BytesView data);

/// Parses hex (case-insensitive, no separators). Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Bytes of an ASCII string (no terminator).
Bytes from_string(std::string_view s);

/// Concatenates any number of buffers.
Bytes concat(std::initializer_list<BytesView> parts);

/// XORs `b` into `a` elementwise; buffers must have equal length.
void xor_inplace(Bytes& a, BytesView b);
Bytes xor_bytes(BytesView a, BytesView b);

/// Constant-time equality (length leak only). Returns false on length
/// mismatch without early exit on content.
bool ct_equal(BytesView a, BytesView b);

// Big-endian fixed-width loads/stores (network / crypto order).
std::uint32_t load_be32(const std::uint8_t* p);
std::uint64_t load_be64(const std::uint8_t* p);
void store_be32(std::uint8_t* p, std::uint32_t v);
void store_be64(std::uint8_t* p, std::uint64_t v);

// Little-endian variants (CAN payload conventions).
std::uint32_t load_le32(const std::uint8_t* p);
std::uint64_t load_le64(const std::uint8_t* p);
void store_le32(std::uint8_t* p, std::uint32_t v);
void store_le64(std::uint8_t* p, std::uint64_t v);

/// Appends a big-endian integer of `width` bytes (1..8) to `out`.
void append_be(Bytes& out, std::uint64_t v, std::size_t width);

/// Rotate-left on 32-bit words (crypto kernels).
constexpr std::uint32_t rotl32(std::uint32_t x, unsigned n) {
  return (x << n) | (x >> (32u - n));
}
constexpr std::uint32_t rotr32(std::uint32_t x, unsigned n) {
  return (x >> n) | (x << (32u - n));
}
constexpr std::uint64_t rotl64(std::uint64_t x, unsigned n) {
  return (x << n) | (x >> (64u - n));
}

/// Population count helpers used by the side-channel leakage models.
constexpr int hamming_weight(std::uint64_t v) { return __builtin_popcountll(v); }
constexpr int hamming_distance(std::uint64_t a, std::uint64_t b) {
  return hamming_weight(a ^ b);
}

}  // namespace aseck::util
