#include "util/crc.hpp"

namespace aseck::util {

namespace {

/// Generic MSB-first CRC over bytes for width <= 32.
std::uint32_t crc_msb(BytesView data, unsigned width, std::uint32_t poly,
                      std::uint32_t init, std::uint32_t xorout) {
  const std::uint32_t topbit = 1u << (width - 1);
  const std::uint32_t mask = (width == 32) ? 0xffffffffu : ((1u << width) - 1);
  std::uint32_t crc = init;
  for (std::uint8_t byte : data) {
    for (int bit = 7; bit >= 0; --bit) {
      const std::uint32_t in = (byte >> bit) & 1u;
      const std::uint32_t top = (crc >> (width - 1)) & 1u;
      crc = (crc << 1) & mask;
      if (top ^ in) crc ^= poly;
    }
  }
  (void)topbit;
  return (crc ^ xorout) & mask;
}

}  // namespace

std::uint16_t crc15_can(BytesView bits_as_bytes) {
  return static_cast<std::uint16_t>(crc_msb(bits_as_bytes, 15, 0x4599, 0, 0));
}

std::uint32_t crc17_canfd(BytesView data) {
  return crc_msb(data, 17, 0x3685B, 0, 0);
}

std::uint32_t crc21_canfd(BytesView data) {
  return crc_msb(data, 21, 0x302899, 0, 0);
}

std::uint16_t crc11_flexray(BytesView data) {
  return static_cast<std::uint16_t>(crc_msb(data, 11, 0x385, 0x01A, 0));
}

std::uint32_t crc24_flexray(BytesView data) {
  return crc_msb(data, 24, 0x5D6DCB, 0xFEDCBA, 0);
}

std::uint32_t crc32_ieee(BytesView data) {
  std::uint32_t crc = 0xffffffffu;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int i = 0; i < 8; ++i) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xffffffffu;
}

std::uint8_t crc8_j1850(BytesView data) {
  return static_cast<std::uint8_t>(crc_msb(data, 8, 0x1D, 0xFF, 0xFF));
}

}  // namespace aseck::util
