#pragma once
// Small-buffer, move-only callable wrapper.
//
// The sharded simulation exchanges millions of cross-shard messages per
// simulated second; `std::function` heap-allocates for captures beyond a
// couple of pointers and must be copyable. `SmallFn` stores the callable
// inline (compile-time capacity check, no heap, no RTTI) and is move-only,
// which is exactly what an epoch outbox needs: append, move across the
// barrier, invoke once on the destination shard.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace aseck::util {

template <typename Sig, std::size_t Capacity = 64>
class SmallFn;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFn<R(Args...), Capacity> {
 public:
  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor) mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "SmallFn: capture too large for inline buffer");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "SmallFn: over-aligned capture");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "SmallFn: capture must be nothrow-move-constructible");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p, Args&&... a) -> R {
      return (*static_cast<Fn*>(p))(std::forward<Args>(a)...);
    };
    relocate_ = [](void* dst, void* src) {
      Fn* s = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    };
    destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
  }

  SmallFn(SmallFn&& o) noexcept { move_from(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  void reset() {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  void move_from(SmallFn& o) {
    if (o.invoke_ == nullptr) return;
    o.relocate_(buf_, o.buf_);
    invoke_ = o.invoke_;
    relocate_ = o.relocate_;
    destroy_ = o.destroy_;
    o.invoke_ = nullptr;
    o.relocate_ = nullptr;
    o.destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  R (*invoke_)(void*, Args&&...) = nullptr;
  void (*relocate_)(void* dst, void* src) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

}  // namespace aseck::util
