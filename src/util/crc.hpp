#pragma once
// CRC implementations used by the in-vehicle network models.
//
// CAN 2.0 uses CRC-15 (poly 0x4599); CAN FD uses CRC-17 (0x3685B) for
// payloads up to 16 bytes and CRC-21 (0x302899) above; FlexRay uses CRC-24
// on the frame and CRC-11 on the header; Ethernet uses CRC-32 (reflected).

#include <cstdint>

#include "util/bytes.hpp"

namespace aseck::util {

/// CAN 2.0 CRC-15, polynomial x^15+x^14+x^10+x^8+x^7+x^4+x^3+1 (0x4599),
/// computed MSB-first over a bit stream. `bit_count` bits of `bits` are
/// consumed most-significant-bit first per byte.
std::uint16_t crc15_can(BytesView bits_as_bytes);

/// CAN FD CRC-17 (poly 0x3685B) over bytes, MSB-first, init 0.
std::uint32_t crc17_canfd(BytesView data);

/// CAN FD CRC-21 (poly 0x302899) over bytes, MSB-first, init 0.
std::uint32_t crc21_canfd(BytesView data);

/// FlexRay header CRC-11 (poly 0x385, init 0x01A).
std::uint16_t crc11_flexray(BytesView data);

/// FlexRay frame CRC-24 (poly 0x5D6DCB, init 0xFEDCBA).
std::uint32_t crc24_flexray(BytesView data);

/// IEEE 802.3 CRC-32 (reflected, init/final 0xFFFFFFFF).
std::uint32_t crc32_ieee(BytesView data);

/// AUTOSAR E2E Profile CRC-8 (SAE J1850, poly 0x1D, init 0xFF, xorout 0xFF).
std::uint8_t crc8_j1850(BytesView data);

}  // namespace aseck::util
