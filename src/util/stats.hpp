#pragma once
// Statistics accumulators used by benches, IDS detectors, and the
// side-channel analysis code (Welford online moments, percentiles,
// histograms, Pearson correlation, Welch's t-test).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aseck::util {

/// Online mean/variance via Welford's algorithm; O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples; supports exact percentiles. Use for latency distributions.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact percentile with linear interpolation; p in [0,100].
  double percentile(double p) const;
  const std::vector<double>& values() const { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to edge
/// bins. NaN samples are never binned (they would be UB to cast); they are
/// counted separately in nan_count().
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  std::size_t nan_count() const { return nan_; }
  double bin_low(std::size_t i) const;
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_ = 0;
};

/// Pearson correlation coefficient of two equal-length series.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Welch's t statistic between two sample groups (TVLA leakage testing).
double welch_t(const RunningStats& a, const RunningStats& b);

}  // namespace aseck::util
