#pragma once
// Lightweight branch-coverage instrumentation for the protocol fuzzer
// (src/fuzz) — no compiler plugin, no global ctors, zero cost when no sink
// is installed.
//
// Target parsers mark interesting decision points with
//
//     ASECK_COV("someip.parse.len_ok");
//
// The site name is FNV-1a-hashed at compile time, so the hot path is a
// thread-local pointer load, a branch, and (with a sink installed) one
// virtual call. The fuzzer's CoverageMap sink (src/fuzz/fuzzer.hpp) folds
// consecutive site hits into *edge* ids — hash(prev_site, site) — giving
// AFL-style edge coverage over the hand-placed sites.
//
// The sink pointer is thread-local: shard worker threads (sim/sharded) never
// see a sink installed by a fuzzing thread, and parallel campaigns cannot
// cross-contaminate coverage.

#include <cstdint>

namespace aseck::util::cov {

/// Compile-time FNV-1a 64-bit hash of a site name.
constexpr std::uint64_t site_id(const char* s) {
  std::uint64_t h = 14695981039346656037ULL;
  while (*s != '\0') {
    h ^= static_cast<std::uint8_t>(*s++);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Receives site hits while installed on the current thread.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_site(std::uint64_t site) = 0;
};

/// Installs `s` as this thread's sink (nullptr uninstalls). Returns the
/// previously installed sink so scopes can nest.
Sink* install(Sink* s);
/// This thread's current sink (nullptr when none).
Sink* current();

/// Hot-path hit: no-op unless a sink is installed on this thread.
void hit(std::uint64_t site);

/// RAII install/uninstall for one fuzz execution.
class ScopedSink {
 public:
  explicit ScopedSink(Sink* s) : prev_(install(s)) {}
  ~ScopedSink() { install(prev_); }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  Sink* prev_;
};

}  // namespace aseck::util::cov

/// Marks a coverage site. The hash is computed at compile time; the name
/// should be globally unique ("<module>.<function>.<branch>").
#define ASECK_COV(name)                                                \
  do {                                                                 \
    constexpr std::uint64_t aseck_cov_site_ =                          \
        ::aseck::util::cov::site_id(name);                             \
    ::aseck::util::cov::hit(aseck_cov_site_);                          \
  } while (0)
