#include "util/coverage.hpp"

namespace aseck::util::cov {

namespace {
thread_local Sink* g_sink = nullptr;
}  // namespace

Sink* install(Sink* s) {
  Sink* prev = g_sink;
  g_sink = s;
  return prev;
}

Sink* current() { return g_sink; }

void hit(std::uint64_t site) {
  if (g_sink != nullptr) g_sink->on_site(site);
}

}  // namespace aseck::util::cov
