#include "util/bytes.hpp"

#include <stdexcept>

namespace aseck::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes from_string(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

Bytes concat(std::initializer_list<BytesView> parts) {
  std::size_t total = 0;
  for (auto p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (auto p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

void xor_inplace(Bytes& a, BytesView b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("xor_inplace: length mismatch");
  }
  for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}

Bytes xor_bytes(BytesView a, BytesView b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("xor_bytes: length mismatch");
  }
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return out;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

std::uint64_t load_be64(const std::uint8_t* p) {
  return (std::uint64_t{load_be32(p)} << 32) | load_be32(p + 4);
}

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

void store_be64(std::uint8_t* p, std::uint64_t v) {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

std::uint64_t load_le64(const std::uint8_t* p) {
  return std::uint64_t{load_le32(p)} | (std::uint64_t{load_le32(p + 4)} << 32);
}

void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void store_le64(std::uint8_t* p, std::uint64_t v) {
  store_le32(p, static_cast<std::uint32_t>(v));
  store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

void append_be(Bytes& out, std::uint64_t v, std::size_t width) {
  if (width == 0 || width > 8) {
    throw std::invalid_argument("append_be: width must be 1..8");
  }
  for (std::size_t i = 0; i < width; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * (width - 1 - i))));
  }
}

}  // namespace aseck::util
