#pragma once
// Deterministic random number generation.
//
// All simulation randomness flows through `Rng` (xoshiro256**) so that every
// experiment is reproducible from a single seed. Cryptographic randomness
// (key generation, nonces) uses the ChaCha20-based `Drbg` in crypto/, which
// is itself seeded deterministically in tests and benches.

#include <cstdint>
#include <cstddef>
#include <vector>

#include "util/bytes.hpp"

namespace aseck::util {

/// SplitMix64 — used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, deterministic PRNG for simulation.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform in [0, bound) without modulo bias (Lemire rejection).
  std::uint64_t uniform(std::uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double uniform01();
  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);
  /// Standard normal via Box–Muller (cached spare).
  double gaussian();
  double gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }
  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);
  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }
  /// Poisson-distributed count (Knuth for small lambda, normal approx large).
  std::uint64_t poisson(double lambda);

  /// Random byte string of length n.
  Bytes bytes(std::size_t n);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element index; container must be non-empty.
  std::size_t index(std::size_t size) { return static_cast<std::size_t>(uniform(size)); }

  /// Derives an independent child stream (for per-component RNGs).
  Rng fork();

  /// Derives the `stream_id`-th independent stream from `master_seed`
  /// without constructing (or perturbing) a master generator. Used for
  /// per-shard RNGs in the sharded world: stream i is a pure function of
  /// (master_seed, i), so resharding or re-running any subset of shards
  /// reproduces the same draws. Streams for distinct ids are seeded at
  /// golden-ratio-spaced points of the SplitMix64 sequence space and then
  /// expanded into distinct 256-bit xoshiro states; adjacent ids share no
  /// prefix (known-answer + overlap tests in util_test.cpp pin this down
  /// across platforms).
  static Rng for_stream(std::uint64_t master_seed, std::uint64_t stream_id);

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace aseck::util
