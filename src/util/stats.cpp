#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aseck::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double Samples::min() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.front();
}

double Samples::max() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.back();
}

double Samples::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max();
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs_.size()) return xs_.back();
  return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: bad range or zero bins");
  }
}

void Histogram::add(double x) {
  if (std::isnan(x)) {
    // A NaN sample fails both range guards below, and casting NaN to an
    // integer is UB — count it explicitly instead of binning it.
    ++nan_;
    return;
  }
  const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  std::size_t idx;
  if (t < 0.0) {
    idx = 0;
  } else if (t >= static_cast<double>(counts_.size())) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>(t);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar = counts_[i] * width / peak;
    out += std::to_string(bin_low(i));
    out += " | ";
    out.append(bar, '#');
    out += " (" + std::to_string(counts_[i]) + ")\n";
  }
  return out;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("pearson: need two equal-length series, n >= 2");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  const double denom = std::sqrt(sxx * syy);
  return denom == 0.0 ? 0.0 : sxy / denom;
}

double welch_t(const RunningStats& a, const RunningStats& b) {
  if (a.count() < 2 || b.count() < 2) return 0.0;
  const double va = a.variance() / static_cast<double>(a.count());
  const double vb = b.variance() / static_cast<double>(b.count());
  const double denom = std::sqrt(va + vb);
  return denom == 0.0 ? 0.0 : (a.mean() - b.mean()) / denom;
}

}  // namespace aseck::util
