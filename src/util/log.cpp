#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace aseck::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void Log::set_level(LogLevel lvl) { g_level.store(lvl, std::memory_order_relaxed); }
LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::write(LogLevel lvl, std::string_view component, std::string_view msg) {
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(lvl),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace aseck::util
