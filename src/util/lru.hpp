#pragma once
// Bounded least-recently-used cache. Shared policy for the verify-result
// cache (crypto::VerifyEngine) and the certificate chain cache
// (v2x::TrustStore): both sit on hot verification paths where an unbounded
// map grows without limit under pseudonym churn.
//
// Deterministic by construction (ordered map index, no hashing, no clocks):
// the same access sequence always yields the same hit/evict sequence, which
// the seeded benches rely on for bit-identical output.

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <utility>

namespace aseck::util {

template <typename K, typename V>
class LruCache {
 public:
  /// capacity == 0 means unbounded (no eviction).
  explicit LruCache(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Looks up `k`, bumping it to most-recently-used. Returns nullptr on
  /// miss. The pointer stays valid until the entry is evicted or erased.
  V* find(const K& k) {
    const auto it = index_.find(k);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites `k`, making it most-recently-used. Evicts the
  /// least-recently-used entry when over capacity.
  void put(const K& k, V v) {
    const auto it = index_.find(k);
    if (it != index_.end()) {
      it->second->second = std::move(v);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(k, std::move(v));
    index_[k] = order_.begin();
    if (capacity_ != 0 && order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  void clear() {
    order_.clear();
    index_.clear();
  }

  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Rebinding the capacity evicts immediately if the cache is over the new
  /// bound.
  void set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (capacity_ != 0 && order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recently used
  std::map<K, typename std::list<std::pair<K, V>>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace aseck::util
