#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace aseck::util {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl64(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl64(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform: zero bound");
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next_u64()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : uniform(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform_real(-1.0, 1.0);
    v = uniform_real(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::exponential(double lambda) {
  if (lambda <= 0.0) throw std::invalid_argument("Rng::exponential: lambda <= 0");
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda < 0.0) throw std::invalid_argument("Rng::poisson: negative lambda");
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform01();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large lambda.
  const double g = gaussian(lambda, std::sqrt(lambda));
  return g < 0.0 ? 0 : static_cast<std::uint64_t>(g + 0.5);
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    store_le64(&out[i], next_u64());
    i += 8;
  }
  if (i < n) {
    std::uint64_t v = next_u64();
    for (; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

Rng Rng::fork() {
  return Rng(next_u64() ^ 0xa5a5a5a5a5a5a5a5ULL);
}

Rng Rng::for_stream(std::uint64_t master_seed, std::uint64_t stream_id) {
  // Decorrelate the master seed once, then place stream seeds at
  // golden-ratio increments: SplitMix64 (inside Rng's constructor) is a
  // bijection of the seed, so distinct ids yield distinct 256-bit states.
  SplitMix64 sm(master_seed);
  const std::uint64_t base = sm.next();
  return Rng(base + 0x9e3779b97f4a7c15ULL * (stream_id + 1));
}

}  // namespace aseck::util
