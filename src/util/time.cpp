#include "util/time.hpp"

#include <cstdio>

namespace aseck::util {

std::string SimTime::str() const {
  char buf[48];
  if (ns < 1000ULL) {
    std::snprintf(buf, sizeof buf, "%lluns", static_cast<unsigned long long>(ns));
  } else if (ns < 1000000ULL) {
    std::snprintf(buf, sizeof buf, "%.3fus", us());
  } else if (ns < 1000000000ULL) {
    std::snprintf(buf, sizeof buf, "%.3fms", ms());
  } else {
    std::snprintf(buf, sizeof buf, "%.6fs", seconds());
  }
  return buf;
}

}  // namespace aseck::util
