#pragma once
// Simulated-time type. All latencies and schedules in the library are in
// simulated nanoseconds — a strong type prevents mixing with wall-clock or
// loop counters.

#include <compare>
#include <cstdint>
#include <string>

namespace aseck::util {

/// Simulated time point / duration in nanoseconds since simulation start.
/// Intentionally a thin value type: arithmetic is explicit and saturating
/// semantics are NOT provided — overflow at ~584 years of sim time is out of
/// scope for vehicle-scale runs.
struct SimTime {
  std::uint64_t ns = 0;

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime from_ns(std::uint64_t v) { return SimTime{v}; }
  static constexpr SimTime from_us(std::uint64_t v) { return SimTime{v * 1000ULL}; }
  static constexpr SimTime from_ms(std::uint64_t v) { return SimTime{v * 1000000ULL}; }
  static constexpr SimTime from_s(std::uint64_t v) { return SimTime{v * 1000000000ULL}; }
  static SimTime from_seconds_f(double s) {
    return SimTime{static_cast<std::uint64_t>(s * 1e9)};
  }

  constexpr double us() const { return static_cast<double>(ns) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns) / 1e6; }
  constexpr double seconds() const { return static_cast<double>(ns) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns + o.ns}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns - o.ns}; }
  constexpr SimTime operator*(std::uint64_t k) const { return SimTime{ns * k}; }
  SimTime& operator+=(SimTime o) {
    ns += o.ns;
    return *this;
  }

  std::string str() const;
};

}  // namespace aseck::util
