#pragma once
// Minimal leveled logger. Default level is kWarn so tests and benches stay
// quiet; examples raise it to kInfo for narrative output.

#include <sstream>
#include <string>
#include <string_view>

namespace aseck::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-global log configuration.
class Log {
 public:
  static void set_level(LogLevel lvl);
  static LogLevel level();
  static bool enabled(LogLevel lvl) { return lvl >= level(); }
  static void write(LogLevel lvl, std::string_view component, std::string_view msg);
};

/// Stream-style log statement builder.
class LogLine {
 public:
  LogLine(LogLevel lvl, std::string_view component)
      : lvl_(lvl), component_(component) {}
  ~LogLine() {
    if (Log::enabled(lvl_)) Log::write(lvl_, component_, os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (Log::enabled(lvl_)) os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace aseck::util

#define ASECK_LOG(level, component) ::aseck::util::LogLine(level, component)
#define ASECK_INFO(component) ASECK_LOG(::aseck::util::LogLevel::kInfo, component)
#define ASECK_WARN(component) ASECK_LOG(::aseck::util::LogLevel::kWarn, component)
#define ASECK_ERROR(component) ASECK_LOG(::aseck::util::LogLevel::kError, component)
#define ASECK_DEBUG(component) ASECK_LOG(::aseck::util::LogLevel::kDebug, component)
