#pragma once
// CAN intrusion detection: the detector families the automotive IDS
// literature (and the paper's Secure Networks layer) builds on:
//
//  * FrequencyDetector — learns per-ID inter-arrival statistics in a training
//    phase; flags messages arriving much faster than the learned cadence
//    (injection/flood attacks change timing before anything else).
//  * PayloadEntropyDetector — learns which payload bytes are constant /
//    low-variance per ID; flags frames whose bytes fall outside the learned
//    value set (fuzzing, spoofed implausible values).
//  * SpecRuleDetector — specification-based allowlist: known IDs, expected
//    DLC, optional byte-range constraints.
//  * IdsEnsemble — OR-combination with per-detector attribution and
//    TP/FP/FN/TN scoring against ground-truth labels (used by experiment E7).

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ivn/can.hpp"
#include "sim/telemetry.hpp"
#include "util/stats.hpp"

namespace aseck::ids {

using ivn::CanFrame;
using sim::SimTime;

/// Common detector interface. Detectors are trained on benign traffic, then
/// score live frames; score >= 1.0 means "alert".
class Detector {
 public:
  virtual ~Detector() = default;
  virtual std::string name() const = 0;
  virtual void train(const CanFrame& frame, SimTime at) = 0;
  /// Finalize training (compute statistics).
  virtual void finish_training() {}
  /// Returns an anomaly score; >= 1.0 raises an alert.
  virtual double observe(const CanFrame& frame, SimTime at) = 0;
};

class FrequencyDetector : public Detector {
 public:
  /// `sensitivity`: alert when the observed interval is shorter than
  /// (mean - sensitivity * stddev) — smaller = more aggressive.
  explicit FrequencyDetector(double sensitivity = 4.0)
      : sensitivity_(sensitivity) {}

  std::string name() const override { return "frequency"; }
  void train(const CanFrame& frame, SimTime at) override;
  void finish_training() override;
  double observe(const CanFrame& frame, SimTime at) override;

 private:
  struct PerId {
    util::RunningStats intervals;  // seconds
    std::optional<SimTime> last_train;
    std::optional<SimTime> last_live;
    double floor_s = 0;  // learned minimum legitimate interval
  };
  double sensitivity_;
  std::map<std::uint32_t, PerId> ids_;
};

class PayloadEntropyDetector : public Detector {
 public:
  std::string name() const override { return "payload"; }
  void train(const CanFrame& frame, SimTime at) override;
  double observe(const CanFrame& frame, SimTime at) override;

 private:
  struct PerId {
    // Observed value set per byte position; positions with few distinct
    // values are "structured" and deviations there are suspicious.
    std::vector<std::set<std::uint8_t>> values;
    std::size_t samples = 0;
  };
  std::map<std::uint32_t, PerId> ids_;
};

/// Sequence-based detector: learns the first-order Markov transition set of
/// CAN ids (which id follows which on the bus — stable for schedule-driven
/// traffic). Injected frames create transitions never seen in training.
/// Complements frequency analysis: catches single injected frames whose
/// id and payload look legitimate but that break the arbitration pattern.
class SequenceDetector : public Detector {
 public:
  /// `min_training_transitions`: below this, observe() stays quiet.
  explicit SequenceDetector(std::size_t min_training_transitions = 64)
      : min_transitions_(min_training_transitions) {}

  std::string name() const override { return "sequence"; }
  void train(const CanFrame& frame, SimTime at) override;
  double observe(const CanFrame& frame, SimTime at) override;

 private:
  std::size_t min_transitions_;
  std::size_t trained_ = 0;
  std::optional<std::uint32_t> last_train_id_;
  std::optional<std::uint32_t> last_live_id_;
  std::set<std::uint64_t> transitions_;  // (prev << 32) | next
};

class SpecRuleDetector : public Detector {
 public:
  struct Rule {
    std::size_t dlc = 8;
    /// Optional inclusive range constraint per byte index.
    std::map<std::size_t, std::pair<std::uint8_t, std::uint8_t>> byte_ranges;
  };

  std::string name() const override { return "spec"; }
  /// Spec detectors are configured, not trained; training frames only add
  /// IDs to the allowlist with their observed DLC.
  void train(const CanFrame& frame, SimTime at) override;
  double observe(const CanFrame& frame, SimTime at) override;

  void add_rule(std::uint32_t id, Rule rule) { rules_[id] = std::move(rule); }

 private:
  std::map<std::uint32_t, Rule> rules_;
};

/// Labeled evaluation outcome counters.
struct IdsScore {
  std::uint64_t tp = 0, fp = 0, fn = 0, tn = 0;
  double precision() const {
    return tp + fp == 0 ? 0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
  }
  double recall() const {
    return tp + fn == 0 ? 0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
  }
  double f1() const {
    const double p = precision(), r = recall();
    return p + r == 0 ? 0 : 2 * p * r / (p + r);
  }
  double fpr() const {
    return fp + tn == 0 ? 0 : static_cast<double>(fp) / static_cast<double>(fp + tn);
  }
};

class IdsEnsemble {
 public:
  IdsEnsemble();
  void add(std::unique_ptr<Detector> d) { detectors_.push_back(std::move(d)); }

  void train(const CanFrame& frame, SimTime at);
  void finish_training();

  struct Verdict {
    bool alert = false;
    double max_score = 0;
    std::string detector;  // which detector fired
  };
  Verdict observe(const CanFrame& frame, SimTime at);

  /// Observe with a ground-truth label; updates the score counters.
  Verdict observe_labeled(const CanFrame& frame, SimTime at, bool is_attack);

  const IdsScore& score() const { return score_; }
  void reset_score() { score_ = {}; }
  std::size_t detector_count() const { return detectors_.size(); }
  sim::TraceScope& trace() { return trace_; }

  /// Rebinds trace events and counters onto a shared telemetry plane.
  void bind_telemetry(const sim::Telemetry& t);

 private:
  void wire_telemetry();

  std::vector<std::unique_ptr<Detector>> detectors_;
  IdsScore score_;
  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_observed_ = nullptr;
  sim::Counter* c_alerts_ = nullptr;
  sim::Counter* c_tp_ = nullptr;
  sim::Counter* c_fp_ = nullptr;
  sim::Counter* c_fn_ = nullptr;
  sim::Counter* c_tn_ = nullptr;
  sim::TraceId k_alert_ = 0;
};

/// Convenience: ensemble with the three classic detectors at default
/// settings (frequency, payload, specification).
IdsEnsemble make_default_ensemble();
/// Extended ensemble adding the sequence (Markov-transition) detector.
IdsEnsemble make_extended_ensemble();

}  // namespace aseck::ids
