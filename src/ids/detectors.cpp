#include "ids/detectors.hpp"

#include <algorithm>

namespace aseck::ids {

void FrequencyDetector::train(const CanFrame& frame, SimTime at) {
  PerId& st = ids_[frame.id];
  if (st.last_train) {
    st.intervals.add((at - *st.last_train).seconds());
  }
  st.last_train = at;
}

void FrequencyDetector::finish_training() {
  for (auto& [id, st] : ids_) {
    const double floor =
        st.intervals.mean() - sensitivity_ * st.intervals.stddev();
    // Never let the floor collapse to zero for periodic traffic: half the
    // learned minimum interval is a conservative lower bound.
    st.floor_s = std::max(floor, st.intervals.min() * 0.5);
  }
}

double FrequencyDetector::observe(const CanFrame& frame, SimTime at) {
  const auto it = ids_.find(frame.id);
  if (it == ids_.end()) return 1.5;  // unknown ID is itself anomalous
  PerId& st = it->second;
  double score = 0.0;
  if (st.last_live && st.intervals.count() >= 2 && st.floor_s > 0) {
    const double interval = (at - *st.last_live).seconds();
    if (interval < st.floor_s) {
      score = st.floor_s / std::max(interval, 1e-9);  // >1 when too fast
    }
  }
  st.last_live = at;
  return score;
}

void PayloadEntropyDetector::train(const CanFrame& frame, SimTime) {
  PerId& st = ids_[frame.id];
  if (st.values.size() < frame.data.size()) st.values.resize(frame.data.size());
  for (std::size_t i = 0; i < frame.data.size(); ++i) {
    st.values[i].insert(frame.data[i]);
  }
  ++st.samples;
}

double PayloadEntropyDetector::observe(const CanFrame& frame, SimTime) {
  const auto it = ids_.find(frame.id);
  if (it == ids_.end()) return 1.5;
  const PerId& st = it->second;
  if (st.samples < 8) return 0.0;  // insufficient model
  if (frame.data.size() != st.values.size()) return 2.0;  // DLC change
  double worst = 0.0;
  for (std::size_t i = 0; i < frame.data.size(); ++i) {
    const auto& seen = st.values[i];
    if (seen.count(frame.data[i])) continue;
    // Unseen value at a structured (low-cardinality) position is suspicious;
    // at a high-entropy position it is expected.
    const double cardinality = static_cast<double>(seen.size());
    const double score = cardinality <= 4 ? 2.0 : (cardinality <= 32 ? 1.2 : 0.2);
    worst = std::max(worst, score);
  }
  return worst;
}

void SequenceDetector::train(const CanFrame& frame, SimTime) {
  if (last_train_id_) {
    transitions_.insert((static_cast<std::uint64_t>(*last_train_id_) << 32) |
                        frame.id);
    ++trained_;
  }
  last_train_id_ = frame.id;
}

double SequenceDetector::observe(const CanFrame& frame, SimTime) {
  double score = 0.0;
  if (last_live_id_ && trained_ >= min_transitions_) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(*last_live_id_) << 32) | frame.id;
    if (!transitions_.count(key)) score = 1.2;
  }
  last_live_id_ = frame.id;
  return score;
}

void SpecRuleDetector::train(const CanFrame& frame, SimTime) {
  auto it = rules_.find(frame.id);
  if (it == rules_.end()) {
    Rule r;
    r.dlc = frame.data.size();
    rules_[frame.id] = r;
  }
}

double SpecRuleDetector::observe(const CanFrame& frame, SimTime) {
  const auto it = rules_.find(frame.id);
  if (it == rules_.end()) return 2.0;  // ID not in the allowlist
  const Rule& r = it->second;
  if (frame.data.size() != r.dlc) return 2.0;
  for (const auto& [idx, range] : r.byte_ranges) {
    if (idx >= frame.data.size()) return 2.0;
    if (frame.data[idx] < range.first || frame.data[idx] > range.second) {
      return 1.5;
    }
  }
  return 0.0;
}

IdsEnsemble::IdsEnsemble()
    : trace_("ids"), metrics_(std::make_shared<sim::MetricsRegistry>()) {
  wire_telemetry();
}

void IdsEnsemble::wire_telemetry() {
  const auto rewire = [this](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(std::string("ids.") + key);
    if (c && c != &nc) nc.inc(c->value());
    c = &nc;
  };
  rewire(c_observed_, "observed");
  rewire(c_alerts_, "alerts");
  rewire(c_tp_, "tp");
  rewire(c_fp_, "fp");
  rewire(c_fn_, "fn");
  rewire(c_tn_, "tn");
  k_alert_ = trace_.kind("alert");
}

void IdsEnsemble::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

void IdsEnsemble::train(const CanFrame& frame, SimTime at) {
  for (auto& d : detectors_) d->train(frame, at);
}

void IdsEnsemble::finish_training() {
  for (auto& d : detectors_) d->finish_training();
}

IdsEnsemble::Verdict IdsEnsemble::observe(const CanFrame& frame, SimTime at) {
  Verdict v;
  for (auto& d : detectors_) {
    const double s = d->observe(frame, at);
    if (s > v.max_score) {
      v.max_score = s;
      v.detector = d->name();
    }
  }
  v.alert = v.max_score >= 1.0;
  c_observed_->inc();
  if (v.alert) {
    c_alerts_->inc();
    ASECK_TRACE(trace_, at, k_alert_,
                "id=" + std::to_string(frame.id) + " detector=" + v.detector);
  }
  return v;
}

IdsEnsemble::Verdict IdsEnsemble::observe_labeled(const CanFrame& frame,
                                                  SimTime at, bool is_attack) {
  const Verdict v = observe(frame, at);
  if (is_attack) {
    v.alert ? ++score_.tp : ++score_.fn;
    v.alert ? c_tp_->inc() : c_fn_->inc();
  } else {
    v.alert ? ++score_.fp : ++score_.tn;
    v.alert ? c_fp_->inc() : c_tn_->inc();
  }
  return v;
}

IdsEnsemble make_default_ensemble() {
  IdsEnsemble e;
  e.add(std::make_unique<FrequencyDetector>());
  e.add(std::make_unique<PayloadEntropyDetector>());
  e.add(std::make_unique<SpecRuleDetector>());
  return e;
}

IdsEnsemble make_extended_ensemble() {
  IdsEnsemble e = make_default_ensemble();
  e.add(std::make_unique<SequenceDetector>());
  return e;
}

}  // namespace aseck::ids
