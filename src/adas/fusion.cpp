#include "adas/fusion.hpp"

#include <algorithm>
#include <cmath>

namespace aseck::adas {

SensorFusion::FusionOutput SensorFusion::fuse(
    const std::vector<TruthObject>& truth) {
  FusionOutput out;
  // Collect per-sensor detections.
  struct Tagged {
    Detection d;
    std::size_t sensor;
  };
  std::vector<Tagged> all;
  for (std::size_t s = 0; s < sensors_.size(); ++s) {
    for (const Detection& d : sensors_[s]->sense(truth)) {
      all.push_back({d, s});
    }
  }
  std::sort(all.begin(), all.end(),
            [](const Tagged& a, const Tagged& b) { return a.d.range_m < b.d.range_m; });

  // Greedy gating association: cluster detections within the range gate.
  std::vector<bool> used(all.size(), false);
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (used[i]) continue;
    std::vector<const Tagged*> cluster{&all[i]};
    std::vector<bool> sensor_seen(sensors_.size(), false);
    sensor_seen[all[i].sensor] = true;
    used[i] = true;
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      if (used[j]) continue;
      if (std::abs(all[j].d.range_m - all[i].d.range_m) >
          cfg_.association_gate_m) {
        break;  // sorted: nothing further can associate
      }
      if (sensor_seen[all[j].sensor]) continue;  // one det per sensor
      sensor_seen[all[j].sensor] = true;
      cluster.push_back(&all[j]);
      used[j] = true;
    }
    FusedObject obj;
    for (const Tagged* t : cluster) {
      obj.range_m += t->d.range_m;
      obj.rel_speed_mps += t->d.rel_speed_mps;
    }
    obj.range_m /= static_cast<double>(cluster.size());
    obj.rel_speed_mps /= static_cast<double>(cluster.size());
    obj.corroboration = static_cast<int>(cluster.size());
    out.objects.push_back(obj);
    if (obj.corroboration >= cfg_.min_corroboration) {
      out.actionable.push_back(obj);
    } else {
      ++out.single_source_rejected;
      ++rejected_total_;
    }
  }
  return out;
}

AebController::Decision AebController::evaluate(
    const std::vector<FusedObject>& actionable) const {
  Decision d;
  for (const FusedObject& o : actionable) {
    if (o.rel_speed_mps <= 0.1) continue;  // not closing
    if (o.range_m < cfg_.min_range_m) continue;
    const double ttc = o.range_m / o.rel_speed_mps;
    if (ttc < d.ttc_s) d.ttc_s = ttc;
  }
  d.brake = d.ttc_s < cfg_.ttc_threshold_s;
  return d;
}

bool ImuPlausibilityMonitor::feed(double imu_accel_mps2,
                                  double wheel_speed_mps, double dt_s) {
  if (last_speed_ && dt_s > 0) {
    const double wheel_accel = (wheel_speed_mps - *last_speed_) / dt_s;
    const double residual = std::abs(imu_accel_mps2 - wheel_accel);
    if (residual > cfg_.residual_threshold_mps2) {
      if (++consecutive_ >= cfg_.required_consecutive) alarmed_ = true;
    } else {
      consecutive_ = 0;
    }
  }
  last_speed_ = wheel_speed_mps;
  return alarmed_;
}

}  // namespace aseck::adas
