#pragma once
// Sensor fusion with cross-sensor plausibility voting, and the automated
// emergency braking (AEB) consumer — the "Sensor Fusion module that performs
// analytics" of paper §2, built so that the §4.1 sensor attacks can be run
// against it: a single spoofed sensor is outvoted; coordinated multi-sensor
// spoofing defeats voting (the residual risk).

#include <map>
#include <memory>
#include <vector>

#include "adas/sensors.hpp"

namespace aseck::adas {

/// A fused object track with the number of corroborating sensors.
struct FusedObject {
  double range_m = 0;
  double rel_speed_mps = 0;
  int corroboration = 0;  // sensors agreeing on this object
};

/// Fusion association/voting parameters.
struct FusionConfig {
  /// Detections within this range gate are considered the same object.
  double association_gate_m = 5.0;
  /// Minimum corroborating sensors for an *actionable* object.
  int min_corroboration = 2;
};

class SensorFusion {
 public:
  using Config = FusionConfig;
  explicit SensorFusion(Config cfg = {}) : cfg_(cfg) {}

  void add_sensor(PerceptionSensor* s) { sensors_.push_back(s); }

  struct FusionOutput {
    std::vector<FusedObject> objects;          // all tracks
    std::vector<FusedObject> actionable;       // corroboration >= min
    std::uint64_t single_source_rejected = 0;  // ghost candidates outvoted
  };
  FusionOutput fuse(const std::vector<TruthObject>& truth);

  std::uint64_t total_single_source_rejected() const { return rejected_total_; }

 private:
  Config cfg_;
  std::vector<PerceptionSensor*> sensors_;
  std::uint64_t rejected_total_ = 0;
};

/// Automated emergency braking: brakes when an actionable object's
/// time-to-collision drops below the threshold.
struct AebConfig {
  double ttc_threshold_s = 1.8;
  double min_range_m = 1.0;
};

class AebController {
 public:
  using Config = AebConfig;
  explicit AebController(Config cfg = {}) : cfg_(cfg) {}

  struct Decision {
    bool brake = false;
    double ttc_s = 1e9;
  };
  Decision evaluate(const std::vector<FusedObject>& actionable) const;

 private:
  Config cfg_;
};

/// Longitudinal plausibility monitor: cross-checks MEMS acceleration against
/// differentiated wheel speed; acoustic-injection bias shows up as a
/// persistent residual (the defense against [13]).
struct ImuMonitorConfig {
  double residual_threshold_mps2 = 1.5;
  int required_consecutive = 5;
};

class ImuPlausibilityMonitor {
 public:
  using Config = ImuMonitorConfig;
  explicit ImuPlausibilityMonitor(Config cfg = {}) : cfg_(cfg) {}

  /// Feeds one 10 Hz sample pair; returns true when an inconsistency alarm
  /// is active.
  bool feed(double imu_accel_mps2, double wheel_speed_mps, double dt_s);

  bool alarmed() const { return alarmed_; }

 private:
  Config cfg_;
  std::optional<double> last_speed_;
  int consecutive_ = 0;
  bool alarmed_ = false;
};

}  // namespace aseck::adas
