#include "adas/sensors.hpp"

#include <cmath>

namespace aseck::adas {

const char* sensor_kind_name(SensorKind k) {
  switch (k) {
    case SensorKind::kRadar: return "radar";
    case SensorKind::kLidar: return "lidar";
    case SensorKind::kCamera: return "camera";
  }
  return "?";
}

PerceptionSensor::PerceptionSensor(Config cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {}

std::vector<Detection> PerceptionSensor::sense(
    const std::vector<TruthObject>& truth) {
  std::vector<Detection> out;
  if (!blinded_) {
    for (const TruthObject& t : truth) {
      if (t.range_m > cfg_.max_range_m) continue;
      if (rng_.chance(cfg_.dropout_prob)) continue;
      Detection d;
      d.range_m = t.range_m + rng_.gaussian(0.0, cfg_.range_noise_m);
      d.bearing_rad = t.bearing_rad + rng_.gaussian(0.0, 0.005);
      d.rel_speed_mps = t.rel_speed_mps + rng_.gaussian(0.0, 0.2);
      d.confidence = 0.9 + rng_.uniform01() * 0.1;
      out.push_back(d);
    }
  }
  if (ghost_) out.push_back(*ghost_);
  return out;
}

MemsAccelerometer::MemsAccelerometer(double noise_mps2, std::uint64_t seed)
    : noise_(noise_mps2), rng_(seed) {}

double MemsAccelerometer::sense(double true_accel_mps2) {
  return true_accel_mps2 + acoustic_bias_ + rng_.gaussian(0.0, noise_);
}

WheelSpeedSensor::WheelSpeedSensor(double noise_frac, std::uint64_t seed)
    : noise_frac_(noise_frac), rng_(seed) {}

double WheelSpeedSensor::sense(double true_speed_mps) {
  return true_speed_mps * (1.0 + rng_.gaussian(0.0, noise_frac_));
}

}  // namespace aseck::adas
