#pragma once
// Dual-channel redundant sensing with 2oo2 plausibility voting (paper §2
// driver assistance + §3 safety/security interplay). Safety-critical ADAS
// inputs are duplicated across two independent sensor channels; the voter
// cross-checks them per frame:
//
//   * both channels healthy  -> 2oo2: only detections corroborated by both
//     channels (within the association gates) pass, averaged, at full
//     confidence. Unmatched detections on either side are suppressed
//     (fail-safe: a ghost injected into one channel is *not* acted on) and
//     a persistent mismatch raises the plausibility alarm;
//   * one channel failed (flagged by the safety::HealthSupervisor via
//     `set_channel_failed`) -> 1oo1 degraded: the surviving channel passes
//     through with confidence scaled by `degraded_confidence`, so consumers
//     (AEB) can demand corroboration elsewhere or lengthen their thresholds;
//   * both channels failed  -> no data (the consumer must fail safe).
//
// This is the sensing-side counterpart of the gateway's hot-standby pair:
// redundancy plus supervision turns "survive the fault" into "detect,
// isolate, and keep a quantified residual capability".

#include <cstdint>
#include <vector>

#include "adas/sensors.hpp"

namespace aseck::adas {

enum class VoteVerdict {
  kAgree,           // 2oo2: channels corroborate
  kDisagree,        // 2oo2: at least one uncorroborated detection suppressed
  kDegradedSingle,  // 1oo1: one channel failed, survivor passed through
  kNoData,          // both channels failed
};
const char* vote_verdict_name(VoteVerdict v);

struct DualChannelConfig {
  /// Association gates: detections from the two channels within both gates
  /// are the same physical object.
  double range_gate_m = 2.0;
  double speed_gate_mps = 1.5;
  /// Confidence multiplier applied in single-channel degraded mode.
  double degraded_confidence = 0.5;
  /// Consecutive disagreeing 2oo2 frames before the plausibility alarm
  /// latches (transient noise should not alarm).
  std::uint32_t disagree_alarm_threshold = 3;
};

class DualChannelVoter {
 public:
  DualChannelVoter(DualChannelConfig cfg, PerceptionSensor* channel_a,
                   PerceptionSensor* channel_b);

  /// Marks a channel failed/recovered (0 = A, 1 = B); wired to the
  /// supervisor's status handler.
  void set_channel_failed(int channel, bool failed);
  bool channel_failed(int channel) const;

  struct Output {
    std::vector<Detection> detections;
    VoteVerdict verdict = VoteVerdict::kNoData;
    std::size_t matched = 0;      // corroborated pairs
    std::size_t unmatched_a = 0;  // suppressed A-only detections
    std::size_t unmatched_b = 0;  // suppressed B-only detections
  };

  /// Samples both sensors against the truth scene and votes.
  Output sample(const std::vector<TruthObject>& truth);
  /// Pure voting over already-sampled channel outputs.
  Output vote(const std::vector<Detection>& a, const std::vector<Detection>& b);

  std::uint64_t frames_agreed() const { return agreed_; }
  std::uint64_t frames_disagreed() const { return disagreed_; }
  std::uint64_t frames_degraded() const { return degraded_; }
  std::uint64_t suppressed_detections() const { return suppressed_; }
  /// Latched after `disagree_alarm_threshold` consecutive mismatching frames.
  bool plausibility_alarm() const { return alarm_; }

 private:
  DualChannelConfig cfg_;
  PerceptionSensor* a_;
  PerceptionSensor* b_;
  bool failed_[2] = {false, false};
  std::uint64_t agreed_ = 0;
  std::uint64_t disagreed_ = 0;
  std::uint64_t degraded_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint32_t disagree_streak_ = 0;
  bool alarm_ = false;
};

}  // namespace aseck::adas
