#include "adas/redundancy.hpp"

#include <cmath>
#include <stdexcept>

namespace aseck::adas {

const char* vote_verdict_name(VoteVerdict v) {
  switch (v) {
    case VoteVerdict::kAgree: return "agree";
    case VoteVerdict::kDisagree: return "disagree";
    case VoteVerdict::kDegradedSingle: return "degraded_single";
    case VoteVerdict::kNoData: return "no_data";
  }
  return "?";
}

DualChannelVoter::DualChannelVoter(DualChannelConfig cfg,
                                   PerceptionSensor* channel_a,
                                   PerceptionSensor* channel_b)
    : cfg_(cfg), a_(channel_a), b_(channel_b) {
  if (!a_ || !b_) {
    throw std::invalid_argument("DualChannelVoter: null channel");
  }
}

void DualChannelVoter::set_channel_failed(int channel, bool failed) {
  if (channel < 0 || channel > 1) {
    throw std::invalid_argument("DualChannelVoter: channel must be 0 or 1");
  }
  failed_[channel] = failed;
}

bool DualChannelVoter::channel_failed(int channel) const {
  if (channel < 0 || channel > 1) {
    throw std::invalid_argument("DualChannelVoter: channel must be 0 or 1");
  }
  return failed_[channel];
}

DualChannelVoter::Output DualChannelVoter::sample(
    const std::vector<TruthObject>& truth) {
  // A failed channel is not even sampled (its output is untrusted anyway,
  // and skipping keeps each channel's RNG stream aligned with its health).
  std::vector<Detection> da, db;
  if (!failed_[0]) da = a_->sense(truth);
  if (!failed_[1]) db = b_->sense(truth);
  return vote(da, db);
}

DualChannelVoter::Output DualChannelVoter::vote(
    const std::vector<Detection>& a, const std::vector<Detection>& b) {
  Output out;
  if (failed_[0] && failed_[1]) {
    out.verdict = VoteVerdict::kNoData;
    return out;
  }
  if (failed_[0] || failed_[1]) {
    const std::vector<Detection>& survivor = failed_[0] ? b : a;
    out.detections = survivor;
    for (Detection& d : out.detections) {
      d.confidence *= cfg_.degraded_confidence;
    }
    out.verdict = VoteVerdict::kDegradedSingle;
    out.matched = out.detections.size();
    ++degraded_;
    return out;
  }
  // 2oo2: greedy nearest-neighbor association inside the gates.
  std::vector<bool> used_b(b.size(), false);
  for (const Detection& da : a) {
    std::size_t best = b.size();
    double best_dist = cfg_.range_gate_m;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (used_b[j]) continue;
      const double dr = std::fabs(da.range_m - b[j].range_m);
      const double dv = std::fabs(da.rel_speed_mps - b[j].rel_speed_mps);
      if (dr <= best_dist && dv <= cfg_.speed_gate_mps) {
        best = j;
        best_dist = dr;
      }
    }
    if (best < b.size()) {
      used_b[best] = true;
      Detection fused;
      fused.range_m = 0.5 * (da.range_m + b[best].range_m);
      fused.bearing_rad = 0.5 * (da.bearing_rad + b[best].bearing_rad);
      fused.rel_speed_mps = 0.5 * (da.rel_speed_mps + b[best].rel_speed_mps);
      fused.confidence = std::min(da.confidence, b[best].confidence);
      out.detections.push_back(fused);
      ++out.matched;
    } else {
      ++out.unmatched_a;
    }
  }
  for (std::size_t j = 0; j < b.size(); ++j) {
    if (!used_b[j]) ++out.unmatched_b;
  }
  suppressed_ += out.unmatched_a + out.unmatched_b;
  if (out.unmatched_a == 0 && out.unmatched_b == 0) {
    out.verdict = VoteVerdict::kAgree;
    ++agreed_;
    disagree_streak_ = 0;
  } else {
    out.verdict = VoteVerdict::kDisagree;
    ++disagreed_;
    if (++disagree_streak_ >= cfg_.disagree_alarm_threshold) alarm_ = true;
  }
  return out;
}

}  // namespace aseck::adas
