#pragma once
// ADAS sensor models and their attack surfaces (paper §2 "Driver
// Assistance", §4.1 availability attacks on sensors: LIDAR spoofing [7],
// acoustic MEMS injection [13], TPMS spoofing [11], GPS spoofing [9,18]).
//
// Each sensor produces object detections or scalar channels with
// configurable noise; attack hooks inject ghost objects, bias, or resonance.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace aseck::adas {

using util::SimTime;

/// An object hypothesis in the vehicle frame (x forward, meters).
struct Detection {
  double range_m = 0;
  double bearing_rad = 0;
  double rel_speed_mps = 0;  // closing speed (positive = approaching)
  double confidence = 1.0;
};

/// A ground-truth object the scenario places in front of the vehicle.
struct TruthObject {
  double range_m;
  double bearing_rad;
  double rel_speed_mps;
};

enum class SensorKind { kRadar, kLidar, kCamera };
const char* sensor_kind_name(SensorKind k);

/// Ranging/perception sensor with noise and attack injection.
class PerceptionSensor {
 public:
  struct Config {
    SensorKind kind = SensorKind::kRadar;
    double max_range_m = 150;
    double range_noise_m = 0.5;
    double dropout_prob = 0.02;
  };
  PerceptionSensor(Config cfg, std::uint64_t seed);

  const Config& config() const { return cfg_; }

  /// Measures the true scene; attack-injected ghosts are appended and
  /// attack-suppressed objects removed.
  std::vector<Detection> sense(const std::vector<TruthObject>& truth);

  // --- attack hooks ----------------------------------------------------------
  /// LIDAR/radar spoofing: inject a ghost object every frame.
  void inject_ghost(std::optional<Detection> ghost) { ghost_ = ghost; }
  /// Saturation/blinding: all returns suppressed.
  void set_blinded(bool on) { blinded_ = on; }

 private:
  Config cfg_;
  util::Rng rng_;
  std::optional<Detection> ghost_;
  bool blinded_ = false;
};

/// MEMS inertial sensor with acoustic-resonance injection [13]: an attacker
/// playing the resonant frequency adds a controlled bias to the output.
class MemsAccelerometer {
 public:
  MemsAccelerometer(double noise_mps2, std::uint64_t seed);

  double sense(double true_accel_mps2);

  void set_acoustic_attack(double bias_mps2) { acoustic_bias_ = bias_mps2; }

 private:
  double noise_;
  util::Rng rng_;
  double acoustic_bias_ = 0;
};

/// Wheel-speed sensor (ground truth anchor; hard to spoof remotely).
class WheelSpeedSensor {
 public:
  WheelSpeedSensor(double noise_frac, std::uint64_t seed);
  double sense(double true_speed_mps);

 private:
  double noise_frac_;
  util::Rng rng_;
};

/// TPMS receiver: unauthenticated RF -> trivially spoofable [11].
class TpmsReceiver {
 public:
  explicit TpmsReceiver(double nominal_kpa = 240) : nominal_(nominal_kpa) {}
  double sense() const { return spoofed_ ? *spoofed_ : nominal_; }
  void spoof(std::optional<double> kpa) { spoofed_ = kpa; }
  double nominal() const { return nominal_; }

 private:
  double nominal_;
  std::optional<double> spoofed_;
};

}  // namespace aseck::adas
