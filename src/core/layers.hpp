#pragma once
// The 4+1-layer security assurance architecture (paper Section 7), bound
// together by the policy engine: one LayerManager owns the mapping from the
// central SecurityPolicy to the concrete configuration of
//   L1 Secure Interfaces  (V2X verification policy, pseudonym rotation)
//   L2 Secure Gateway     (firewall rules, rate limits)
//   L3 Secure Networks    (SecOC parameters, MAC suite, IDS sensitivity)
//   L4 Secure Processing  (SHE usage flags are ECU-local; latency budget here)
//   +1 Vehicle Access     (PKES distance-bounding budget)
// and re-applies it whenever a signed policy update is accepted in-field.

#include <memory>
#include <optional>
#include <vector>

#include "access/pkes.hpp"
#include "core/modes.hpp"
#include "core/policy.hpp"
#include "core/registry.hpp"
#include "gateway/gateway.hpp"
#include "ivn/secoc.hpp"
#include "v2x/net.hpp"

namespace aseck::core {

/// Policy compiled into typed per-layer configuration.
struct CompiledConfig {
  // L1
  v2x::VerifyPolicy v2x_policy;
  util::SimTime pseudonym_period = util::SimTime::from_s(60);
  // L2
  std::vector<gateway::FirewallRule> firewall_rules;
  double gateway_rate_limit_fps = 0;  // 0 = unlimited
  bool gateway_default_deny = false;
  // L3
  ivn::SecOcConfig secoc;
  std::string mac_suite = "cmac-aes128";
  double ids_sensitivity = 4.0;
  // +1
  double pkes_rtt_limit_us = 0;
};

/// Compiles a policy document into typed configuration. Unknown keys are
/// ignored here but preserved in the policy (forward compatibility).
CompiledConfig compile_policy(const SecurityPolicy& policy);

class LayerManager {
 public:
  explicit LayerManager(SuiteRegistry registry = SuiteRegistry::with_builtins());

  // --- component registration (any subset) ---------------------------------
  void bind_gateway(gateway::SecurityGateway* gw,
                    std::vector<std::string> external_domains);
  void bind_vehicle(v2x::VehicleNode* v);
  void bind_pkes(access::PkesCar* car);

  /// Applies a policy to every bound component; returns the compiled form.
  const CompiledConfig& apply(const SecurityPolicy& policy);

  const CompiledConfig& config() const { return config_; }
  std::uint32_t applications() const { return applications_; }

  /// L3: creates a SecOC channel honoring the active policy.
  ivn::SecOcChannel make_secoc_channel(util::BytesView key) const;
  /// L3: creates the active MAC suite for application-level authentication.
  std::unique_ptr<MacSuite> make_mac_suite(util::BytesView key) const;
  const SuiteRegistry& registry() const { return registry_; }
  SuiteRegistry& registry() { return registry_; }

  TradeoffController& tradeoff() { return tradeoff_; }

 private:
  SuiteRegistry registry_;
  CompiledConfig config_;
  gateway::SecurityGateway* gateway_ = nullptr;
  std::vector<std::string> external_domains_;
  std::vector<v2x::VehicleNode*> vehicles_;
  access::PkesCar* pkes_ = nullptr;
  TradeoffController tradeoff_;
  std::uint32_t applications_ = 0;
};

}  // namespace aseck::core
