#pragma once
// VehiclePlatform: top-level assembly of the 4+1 architecture. Builds the
// domain buses, the central gateway, provisioned ECUs, and the policy
// engine from a declarative description — the "disciplined architecture"
// entry point a vehicle program would start from.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/layers.hpp"
#include "core/policy.hpp"
#include "ecu/ecu.hpp"
#include "gateway/gateway.hpp"
#include "sim/telemetry.hpp"

namespace aseck::core {

/// Declarative description of a vehicle E/E architecture.
struct VehicleSpec {
  struct DomainSpec {
    std::string name;
    std::uint64_t bitrate_bps = 500000;
    bool external = true;  // faces the outside world (policed by policy)
  };
  struct EcuSpec {
    std::string name;
    std::string domain;
    std::uint32_t fw_version = 1;
    std::size_t fw_size = 1024;
  };
  struct RouteSpec {
    std::uint32_t can_id;
    std::string from, to;
  };

  std::string name = "vehicle";
  std::vector<DomainSpec> domains;
  std::vector<EcuSpec> ecus;
  std::vector<RouteSpec> routes;

  /// A sensible reference architecture: powertrain/chassis/body internal,
  /// telematics/infotainment external, 6 ECUs, diagnostics routes.
  static VehicleSpec reference();
};

class VehiclePlatform {
 public:
  /// Builds and provisions everything; ECUs are powered off until boot().
  VehiclePlatform(sim::Scheduler& sched, VehicleSpec spec,
                  const crypto::EcdsaPublicKey& policy_authority,
                  SecurityPolicy initial_policy, std::uint64_t seed = 1);

  /// Secure-boots every ECU; returns the number that reached operational.
  std::size_t boot_all();

  // Accessors.
  ivn::CanBus& bus(const std::string& domain);
  ecu::Ecu& ecu(const std::string& name);
  gateway::SecurityGateway& gateway() { return *gateway_; }
  LayerManager& layers() { return layers_; }
  PolicyStore& policy() { return *policy_store_; }
  const VehicleSpec& spec() const { return spec_; }

  /// The vehicle-wide telemetry plane: every bus and the gateway share this
  /// trace bus and metrics registry, so cross-layer incidents (spoof on a
  /// domain bus, drop at the gateway, IDS alert) land on one causally
  /// ordered timeline. Externally built components (IDS, OTA clients, V2X
  /// nodes) can join via their own bind_telemetry(telemetry()).
  const sim::Telemetry& telemetry() const { return telemetry_; }
  sim::TraceBus& trace_bus() { return *telemetry_.bus; }
  sim::MetricsRegistry& metrics() { return *telemetry_.metrics; }

  /// SecOC channel under the active policy, bound to the vehicle SecOC key.
  ivn::SecOcChannel secoc_channel() const;

  /// Vehicle-wide security posture summary.
  struct Posture {
    std::size_t ecus_operational = 0;
    std::size_t ecus_degraded = 0;
    std::uint32_t policy_version = 0;
    std::uint64_t gateway_drops = 0;
    std::size_t quarantined_domains = 0;
  };
  Posture posture() const;

 private:
  sim::Scheduler& sched_;
  VehicleSpec spec_;
  sim::Telemetry telemetry_;
  std::map<std::string, std::unique_ptr<ivn::CanBus>> buses_;
  std::unique_ptr<gateway::SecurityGateway> gateway_;
  std::map<std::string, std::unique_ptr<ecu::Ecu>> ecus_;
  LayerManager layers_;
  std::unique_ptr<PolicyStore> policy_store_;
  crypto::Block secoc_key_{};
};

}  // namespace aseck::core
