#include "core/modes.hpp"

#include <algorithm>
#include <stdexcept>

namespace aseck::core {

const char* environment_name(Environment e) {
  switch (e) {
    case Environment::kParked: return "parked";
    case Environment::kHighway: return "highway";
    case Environment::kUrban: return "urban";
    case Environment::kIntersection: return "intersection";
  }
  return "?";
}

double SecurityMode::security_index() const {
  // Equal-weight blend of verification coverage, IDS strictness (4.0
  // baseline -> 1.0 at k=2), MAC strength (16 bytes = 1.0), and analytics.
  const double ids = std::clamp((6.0 - ids_sensitivity) / 4.0, 0.0, 1.0);
  const double mac = std::min(1.0, static_cast<double>(secoc_mac_bytes) / 16.0);
  const double analytics = static_cast<double>(analytics_level) / 3.0;
  return 0.25 * (v2x_verify_fraction + ids + mac + analytics);
}

TradeoffController::TradeoffController() {
  // Sensible defaults; policy can replace them.
  SecurityMode parked{"parked", 0.2, 5.0, 2, 0, 50};
  SecurityMode highway{"highway", 0.5, 4.5, 4, 1, 100};
  SecurityMode urban{"urban", 0.9, 3.5, 4, 2, 400};
  SecurityMode intersection{"intersection", 1.0, 3.0, 8, 3, 800};
  table_[Environment::kParked] = parked;
  table_[Environment::kHighway] = highway;
  table_[Environment::kUrban] = urban;
  table_[Environment::kIntersection] = intersection;
  strict_ = SecurityMode{"lockdown", 1.0, 2.0, 16, 3, 1000};
  current_ = highway;
}

void TradeoffController::set_mode(Environment env, SecurityMode mode) {
  table_[env] = std::move(mode);
}

const SecurityMode& TradeoffController::mode_for(Environment env) const {
  const auto it = table_.find(env);
  if (it == table_.end()) {
    throw std::invalid_argument("TradeoffController: no mode for environment");
  }
  return it->second;
}

const SecurityMode& TradeoffController::update(Environment env,
                                               double threat_level,
                                               util::SimTime now) {
  const SecurityMode& want =
      threat_level >= threat_escalation_threshold ? strict_ : mode_for(env);
  if (!baseline_set_) {
    // First observation establishes the dwell baseline.
    baseline_set_ = true;
    last_change_ = now;
    if (want.name != current_.name) {
      current_ = want;
      ++transitions_;
    }
    return current_;
  }
  if (want.name != current_.name) {
    // Hysteresis: do not thrash between modes faster than min_dwell, except
    // escalations which apply immediately.
    const bool escalation = want.security_index() > current_.security_index();
    if (escalation || now - last_change_ >= min_dwell_) {
      current_ = want;
      last_change_ = now;
      ++transitions_;
    }
  }
  return current_;
}

}  // namespace aseck::core
