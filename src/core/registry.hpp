#pragma once
// Extensibility registry: runtime-pluggable security mechanisms.
//
// This is the crypto-agility answer to the paper's "long in-field lifetime"
// driver (Section 5): the hardware ships with *generic* MAC/secure-channel
// interfaces; the concrete algorithm is resolved by name from the registry
// under policy control. Migrating the fleet off a weakened algorithm is a
// policy update (E9 measures this against a fixed-function redeploy).

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crypto/cmac.hpp"
#include "crypto/hmac.hpp"
#include "util/bytes.hpp"

namespace aseck::core {

/// Generic MAC interface all in-vehicle authentication goes through.
class MacSuite {
 public:
  virtual ~MacSuite() = default;
  virtual std::string name() const = 0;
  virtual std::size_t tag_bytes() const = 0;
  virtual util::Bytes tag(util::BytesView msg) const = 0;
  virtual bool verify(util::BytesView msg, util::BytesView tag) const = 0;
  /// Relative compute cost (1.0 = AES-CMAC-128 baseline) for latency models.
  virtual double cost_factor() const { return 1.0; }
};

/// AES-CMAC with configurable truncation.
class CmacSuite : public MacSuite {
 public:
  CmacSuite(util::BytesView key, std::size_t tag_bytes);
  std::string name() const override { return "cmac-aes128"; }
  std::size_t tag_bytes() const override { return tag_bytes_; }
  util::Bytes tag(util::BytesView msg) const override;
  bool verify(util::BytesView msg, util::BytesView tag) const override;

 private:
  crypto::Cmac cmac_;
  std::size_t tag_bytes_;
};

/// HMAC-SHA256 with configurable truncation (the "migration target" suite).
class HmacSuite : public MacSuite {
 public:
  HmacSuite(util::BytesView key, std::size_t tag_bytes);
  std::string name() const override { return "hmac-sha256"; }
  std::size_t tag_bytes() const override { return tag_bytes_; }
  util::Bytes tag(util::BytesView msg) const override;
  bool verify(util::BytesView msg, util::BytesView tag) const override;
  double cost_factor() const override { return 2.2; }

 private:
  util::Bytes key_;
  std::size_t tag_bytes_;
};

/// Factory registry keyed by suite name. New mechanisms register at runtime
/// — including ones that did not exist when the vehicle shipped.
class SuiteRegistry {
 public:
  using Factory = std::function<std::unique_ptr<MacSuite>(
      util::BytesView key, std::size_t tag_bytes)>;

  /// Registers (or replaces) a factory. Returns false if replacing.
  bool register_suite(const std::string& name, Factory f);
  bool known(const std::string& name) const { return factories_.count(name) > 0; }
  std::vector<std::string> names() const;

  /// Instantiates a suite; nullptr for unknown names.
  std::unique_ptr<MacSuite> create(const std::string& name, util::BytesView key,
                                   std::size_t tag_bytes) const;

  /// Registry preloaded with the built-in suites.
  static SuiteRegistry with_builtins();

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace aseck::core
