#include "core/registry.hpp"

#include <stdexcept>

namespace aseck::core {

CmacSuite::CmacSuite(util::BytesView key, std::size_t tag_bytes)
    : cmac_(key), tag_bytes_(tag_bytes) {
  if (tag_bytes_ == 0 || tag_bytes_ > 16) {
    throw std::invalid_argument("CmacSuite: tag_bytes must be 1..16");
  }
}

util::Bytes CmacSuite::tag(util::BytesView msg) const {
  return cmac_.tag_truncated(msg, tag_bytes_);
}

bool CmacSuite::verify(util::BytesView msg, util::BytesView tag) const {
  return tag.size() == tag_bytes_ && cmac_.verify(msg, tag);
}

HmacSuite::HmacSuite(util::BytesView key, std::size_t tag_bytes)
    : key_(key.begin(), key.end()), tag_bytes_(tag_bytes) {
  if (tag_bytes_ == 0 || tag_bytes_ > 32) {
    throw std::invalid_argument("HmacSuite: tag_bytes must be 1..32");
  }
}

util::Bytes HmacSuite::tag(util::BytesView msg) const {
  const crypto::Digest d = crypto::hmac_sha256(key_, msg);
  return util::Bytes(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(tag_bytes_));
}

bool HmacSuite::verify(util::BytesView msg, util::BytesView tag) const {
  if (tag.size() != tag_bytes_) return false;
  const crypto::Digest d = crypto::hmac_sha256(key_, msg);
  return util::ct_equal(util::BytesView(d.data(), tag_bytes_), tag);
}

bool SuiteRegistry::register_suite(const std::string& name, Factory f) {
  const bool fresh = factories_.count(name) == 0;
  factories_[name] = std::move(f);
  return fresh;
}

std::vector<std::string> SuiteRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, f] : factories_) out.push_back(name);
  return out;
}

std::unique_ptr<MacSuite> SuiteRegistry::create(const std::string& name,
                                                util::BytesView key,
                                                std::size_t tag_bytes) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  return it->second(key, tag_bytes);
}

SuiteRegistry SuiteRegistry::with_builtins() {
  SuiteRegistry reg;
  reg.register_suite("cmac-aes128",
                     [](util::BytesView key, std::size_t tag_bytes) {
                       return std::make_unique<CmacSuite>(key, tag_bytes);
                     });
  reg.register_suite("hmac-sha256",
                     [](util::BytesView key, std::size_t tag_bytes) {
                       return std::make_unique<HmacSuite>(key, tag_bytes);
                     });
  return reg;
}

}  // namespace aseck::core
