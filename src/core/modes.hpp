#pragma once
// Dynamic security/performance trade-off controller (paper Section 5,
// "Dynamic Trade-offs between Security, Smartness, Communication").
//
// A car on an empty highway needs less analytics and V2X verification than
// one in a dense city; threat escalations (IDS alerts) demand more checking
// regardless. The controller maps (environment, threat level) to a security
// mode; the layer manager pushes the mode's parameters into the stack.
// Experiment E10 measures the bandwidth/latency/security-index envelope.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace aseck::core {

enum class Environment { kParked, kHighway, kUrban, kIntersection };
const char* environment_name(Environment e);

/// A named operating point of the security stack.
struct SecurityMode {
  std::string name;
  double v2x_verify_fraction = 1.0;   // fraction of received SPDUs verified
  double ids_sensitivity = 4.0;       // frequency-detector k (lower = stricter)
  std::size_t secoc_mac_bytes = 4;
  std::uint32_t analytics_level = 2;  // 0..3 sensor-fusion depth
  double cloud_bandwidth_kbps = 200;

  /// Composite security index in [0,1]: how much of the maximum checking
  /// this mode performs (used as the E10 y-axis).
  double security_index() const;
  /// Estimated per-message verification cost factor (1.0 = verify all).
  double verify_cost_factor() const { return v2x_verify_fraction; }
};

/// Hysteresis-based controller.
class TradeoffController {
 public:
  TradeoffController();

  /// Replaces the mode table (policy-driven).
  void set_mode(Environment env, SecurityMode mode);
  const SecurityMode& mode_for(Environment env) const;

  /// Feeds context; returns the selected mode. Threat level in [0,1]
  /// (e.g. normalized IDS alert rate); above `threat_escalation_threshold`
  /// the controller overrides with the strictest mode.
  const SecurityMode& update(Environment env, double threat_level,
                             util::SimTime now);

  const SecurityMode& current() const { return current_; }
  std::uint32_t transitions() const { return transitions_; }
  double threat_escalation_threshold = 0.5;

 private:
  std::map<Environment, SecurityMode> table_;
  SecurityMode strict_;
  SecurityMode current_;
  util::SimTime last_change_ = util::SimTime::zero();
  bool baseline_set_ = false;
  util::SimTime min_dwell_ = util::SimTime::from_s(2);
  std::uint32_t transitions_ = 0;
};

}  // namespace aseck::core
