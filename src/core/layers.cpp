#include "core/layers.hpp"

namespace aseck::core {

CompiledConfig compile_policy(const SecurityPolicy& policy) {
  CompiledConfig cfg;
  cfg.v2x_policy.max_age = util::SimTime::from_ms(static_cast<std::uint64_t>(
      policy.get_int(keys::kV2xMaxAgeMs, 500)));
  cfg.v2x_policy.max_relevance_m = policy.get_double(keys::kV2xRelevanceM, 1000.0);
  cfg.pseudonym_period = util::SimTime::from_s(static_cast<std::uint64_t>(
      policy.get_int(keys::kPseudonymPeriodS, 60)));

  cfg.firewall_rules = policy.firewall_rules;
  cfg.gateway_default_deny = policy.get_bool(keys::kGatewayDefaultDeny, false);
  cfg.gateway_rate_limit_fps = policy.get_double(keys::kGatewayRateLimit, 0.0);

  cfg.secoc.mac_bytes = static_cast<std::size_t>(
      policy.get_int(keys::kSecocMacBytes, 4));
  cfg.secoc.freshness_bytes = static_cast<std::size_t>(
      policy.get_int(keys::kSecocFreshnessBytes, 1));
  cfg.mac_suite = policy.get_string(keys::kSecocSuite, "cmac-aes128");
  cfg.ids_sensitivity = policy.get_double(keys::kIdsSensitivity, 4.0);

  cfg.pkes_rtt_limit_us = policy.get_double(keys::kPkesRttLimitUs, 0.0);
  return cfg;
}

LayerManager::LayerManager(SuiteRegistry registry)
    : registry_(std::move(registry)) {}

void LayerManager::bind_gateway(gateway::SecurityGateway* gw,
                                std::vector<std::string> external_domains) {
  gateway_ = gw;
  external_domains_ = std::move(external_domains);
}

void LayerManager::bind_vehicle(v2x::VehicleNode* v) { vehicles_.push_back(v); }

void LayerManager::bind_pkes(access::PkesCar* car) { pkes_ = car; }

const CompiledConfig& LayerManager::apply(const SecurityPolicy& policy) {
  config_ = compile_policy(policy);
  ++applications_;

  if (gateway_) {
    for (const auto& rule : config_.firewall_rules) gateway_->add_rule(rule);
    if (config_.gateway_default_deny) {
      gateway::FirewallRule deny_all;
      deny_all.allow = false;
      gateway_->add_rule(deny_all);
    }
    if (config_.gateway_rate_limit_fps > 0) {
      for (const auto& domain : external_domains_) {
        gateway_->set_domain_rate_limit(
            domain, gateway::RateLimit{config_.gateway_rate_limit_fps, 10.0});
      }
    }
  }
  for (v2x::VehicleNode* v : vehicles_) {
    v->set_verify_policy(config_.v2x_policy);
  }
  if (pkes_) pkes_->set_rtt_limit(config_.pkes_rtt_limit_us);
  return config_;
}

ivn::SecOcChannel LayerManager::make_secoc_channel(util::BytesView key) const {
  return ivn::SecOcChannel(key, config_.secoc);
}

std::unique_ptr<MacSuite> LayerManager::make_mac_suite(util::BytesView key) const {
  auto suite = registry_.create(config_.mac_suite, key, config_.secoc.mac_bytes);
  if (!suite) {
    // Unknown suite in policy (e.g. not yet deployed on this ECU): fall
    // back to the baseline rather than failing open/closed ambiguously.
    suite = registry_.create("cmac-aes128", key, config_.secoc.mac_bytes);
  }
  return suite;
}

}  // namespace aseck::core
