#include "core/verification.hpp"

#include <algorithm>
#include <set>

namespace aseck::core {

namespace {
/// (param_i, value_i, param_j, value_j) with param_i < param_j.
struct Pair {
  std::size_t pi, vi, pj, vj;
  auto operator<=>(const Pair&) const = default;
};
}  // namespace

std::uint64_t ConfigSpace::exhaustive_count() const {
  std::uint64_t total = 1;
  for (const auto& p : params_) {
    if (p.cardinality == 0) return 0;
    if (total > (1ULL << 60) / p.cardinality) return 1ULL << 60;  // saturate
    total *= p.cardinality;
  }
  return total;
}

std::uint64_t ConfigSpace::reduced_count() const {
  std::uint64_t cross = 1;
  std::uint64_t isolated = 0;
  for (const auto& p : params_) {
    if (p.cardinality == 0) return 0;
    if (p.reducible) {
      isolated += p.cardinality;
    } else {
      if (cross > (1ULL << 60) / p.cardinality) return 1ULL << 60;
      cross *= p.cardinality;
    }
  }
  return cross + isolated;
}

std::vector<std::vector<std::size_t>> ConfigSpace::pairwise_array(
    std::uint64_t seed) const {
  std::vector<std::vector<std::size_t>> rows;
  const std::size_t n = params_.size();
  if (n == 0) return rows;
  if (n == 1) {
    for (std::size_t v = 0; v < params_[0].cardinality; ++v) rows.push_back({v});
    return rows;
  }

  // Enumerate all uncovered pairs.
  std::set<Pair> uncovered;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      for (std::size_t vi = 0; vi < params_[i].cardinality; ++vi) {
        for (std::size_t vj = 0; vj < params_[j].cardinality; ++vj) {
          uncovered.insert(Pair{i, vi, j, vj});
        }
      }
    }
  }

  util::Rng rng(seed);
  while (!uncovered.empty()) {
    // AETG-style: several random greedy candidates, keep the best.
    std::vector<std::size_t> best_row;
    std::size_t best_cover = 0;
    for (int cand = 0; cand < 8; ++cand) {
      std::vector<std::size_t> row(n, SIZE_MAX);
      // Seed with one uncovered pair (pick pseudo-randomly).
      auto it = uncovered.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.uniform(std::min<std::uint64_t>(uncovered.size(), 50))));
      const Pair seed_pair = *it;
      row[seed_pair.pi] = seed_pair.vi;
      row[seed_pair.pj] = seed_pair.vj;
      // Fill remaining params greedily.
      std::vector<std::size_t> order;
      for (std::size_t k = 0; k < n; ++k) {
        if (row[k] == SIZE_MAX) order.push_back(k);
      }
      rng.shuffle(order);
      for (std::size_t k : order) {
        std::size_t best_v = 0, best_gain = 0;
        for (std::size_t v = 0; v < params_[k].cardinality; ++v) {
          std::size_t gain = 0;
          for (std::size_t m = 0; m < n; ++m) {
            if (m == k || row[m] == SIZE_MAX) continue;
            const Pair p = m < k ? Pair{m, row[m], k, v} : Pair{k, v, m, row[m]};
            if (uncovered.count(p)) ++gain;
          }
          if (gain > best_gain || (gain == best_gain && v == 0)) {
            best_gain = gain;
            best_v = v;
          }
        }
        row[k] = best_v;
      }
      // Count coverage of the complete row.
      std::size_t cover = 0;
      for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
          if (uncovered.count(Pair{a, row[a], b, row[b]})) ++cover;
        }
      }
      if (cover > best_cover || best_row.empty()) {
        best_cover = cover;
        best_row = row;
      }
    }
    // Mark covered.
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        uncovered.erase(Pair{a, best_row[a], b, best_row[b]});
      }
    }
    rows.push_back(std::move(best_row));
  }
  return rows;
}

bool ConfigSpace::covers_all_pairs(
    const std::vector<std::vector<std::size_t>>& rows) const {
  const std::size_t n = params_.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      for (std::size_t vi = 0; vi < params_[i].cardinality; ++vi) {
        for (std::size_t vj = 0; vj < params_[j].cardinality; ++vj) {
          bool found = false;
          for (const auto& row : rows) {
            if (row[i] == vi && row[j] == vj) {
              found = true;
              break;
            }
          }
          if (!found) return false;
        }
      }
    }
  }
  return true;
}

}  // namespace aseck::core
