#include "core/platform.hpp"

#include <stdexcept>

namespace aseck::core {

VehicleSpec VehicleSpec::reference() {
  VehicleSpec spec;
  spec.name = "reference-vehicle";
  spec.domains = {
      {"powertrain", 500000, false}, {"chassis", 500000, false},
      {"body", 125000, false},       {"telematics", 500000, true},
      {"infotainment", 500000, true},
  };
  spec.ecus = {
      {"engine", "powertrain", 1, 4096}, {"transmission", "powertrain", 1, 2048},
      {"brake", "chassis", 1, 4096},     {"steering", "chassis", 1, 4096},
      {"bcm", "body", 1, 2048},          {"tcu", "telematics", 1, 8192},
  };
  spec.routes = {
      {0x7DF, "telematics", "powertrain"},  // diagnostics broadcast
      {0x7DF, "telematics", "chassis"},
      {0x7DF, "telematics", "body"},
      {0x300, "powertrain", "infotainment"},  // telltale data for display
  };
  return spec;
}

VehiclePlatform::VehiclePlatform(sim::Scheduler& sched, VehicleSpec spec,
                                 const crypto::EcdsaPublicKey& policy_authority,
                                 SecurityPolicy initial_policy,
                                 std::uint64_t seed)
    : sched_(sched), spec_(std::move(spec)) {
  gateway_ = std::make_unique<gateway::SecurityGateway>(sched_,
                                                        spec_.name + "-cgw");
  gateway_->bind_telemetry(telemetry_);
  std::vector<std::string> external;
  for (const auto& d : spec_.domains) {
    auto bus = std::make_unique<ivn::CanBus>(sched_, d.name, d.bitrate_bps);
    bus->bind_telemetry(telemetry_);
    gateway_->add_domain(d.name, bus.get());
    if (d.external) external.push_back(d.name);
    buses_[d.name] = std::move(bus);
  }
  for (const auto& r : spec_.routes) {
    gateway_->add_route(r.can_id, r.from, r.to);
  }

  // Per-vehicle key material derived from the seed (factory provisioning).
  crypto::Drbg key_rng(seed ^ 0xFAC7021ULL);
  crypto::Block master, boot;
  key_rng.generate(master.data(), 16);
  key_rng.generate(boot.data(), 16);
  key_rng.generate(secoc_key_.data(), 16);

  std::uint64_t ecu_seed = seed;
  for (const auto& e : spec_.ecus) {
    const auto bit = buses_.find(e.domain);
    if (bit == buses_.end()) {
      throw std::invalid_argument("VehiclePlatform: ECU references unknown domain " +
                                  e.domain);
    }
    auto unit = std::make_unique<ecu::Ecu>(sched_, e.name, ++ecu_seed);
    unit->provision(
        ecu::FirmwareImage{e.name + "-fw", e.fw_version,
                           util::Bytes(e.fw_size, static_cast<std::uint8_t>(
                                                      ecu_seed & 0xff))},
        master, boot, secoc_key_);
    unit->attach_to(bit->second.get());
    ecus_[e.name] = std::move(unit);
  }

  layers_.bind_gateway(gateway_.get(), external);
  policy_store_ =
      std::make_unique<PolicyStore>(policy_authority, std::move(initial_policy));
  policy_store_->subscribe(
      [this](const SecurityPolicy& p) { layers_.apply(p); });
  layers_.apply(policy_store_->active());
}

std::size_t VehiclePlatform::boot_all() {
  std::size_t ok = 0;
  for (auto& [name, unit] : ecus_) {
    if (unit->boot() == ecu::EcuState::kOperational) ++ok;
  }
  return ok;
}

ivn::CanBus& VehiclePlatform::bus(const std::string& domain) {
  const auto it = buses_.find(domain);
  if (it == buses_.end()) {
    throw std::invalid_argument("VehiclePlatform: unknown domain " + domain);
  }
  return *it->second;
}

ecu::Ecu& VehiclePlatform::ecu(const std::string& name) {
  const auto it = ecus_.find(name);
  if (it == ecus_.end()) {
    throw std::invalid_argument("VehiclePlatform: unknown ECU " + name);
  }
  return *it->second;
}

ivn::SecOcChannel VehiclePlatform::secoc_channel() const {
  return layers_.make_secoc_channel(
      util::BytesView(secoc_key_.data(), secoc_key_.size()));
}

VehiclePlatform::Posture VehiclePlatform::posture() const {
  Posture p;
  for (const auto& [name, unit] : ecus_) {
    if (unit->state() == ecu::EcuState::kOperational) {
      ++p.ecus_operational;
    } else if (unit->state() == ecu::EcuState::kDegraded) {
      ++p.ecus_degraded;
    }
  }
  p.policy_version = policy_store_->active().version;
  p.gateway_drops = gateway_->stats().total_drops();
  for (const auto& d : spec_.domains) {
    if (gateway_->quarantined(d.name)) ++p.quarantined_domains;
  }
  return p;
}

}  // namespace aseck::core
