#pragma once
// Verification-space modeling (paper Sections 5/6: "verification needs" and
// the burden extensibility adds). An extensible architecture multiplies the
// configuration space; exhaustive verification is infeasible, so coverage
// strategies matter:
//   * exhaustive        — product of all parameter domains
//   * pairwise (AETG-style greedy covering array) — covers every value PAIR
//   * extensibility-aware reduction — parameters proven composition-safe
//     ("reducible") are verified once per value in isolation, not crossed.
// Experiment E12 compares the three as parameters/configurations grow.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace aseck::core {

struct ConfigParam {
  std::string name;
  std::size_t cardinality = 2;  // number of values
  /// True if verification results for this parameter compose (can be
  /// verified in isolation thanks to an architectural isolation argument).
  bool reducible = false;
};

class ConfigSpace {
 public:
  void add(ConfigParam p) { params_.push_back(std::move(p)); }
  const std::vector<ConfigParam>& params() const { return params_; }

  /// |full cross product| (saturating at ~1e18).
  std::uint64_t exhaustive_count() const;

  /// Rows of a greedy pairwise covering array (every pair of values of every
  /// two parameters appears in some row).
  std::vector<std::vector<std::size_t>> pairwise_array(std::uint64_t seed) const;
  std::uint64_t pairwise_count(std::uint64_t seed) const {
    return pairwise_array(seed).size();
  }

  /// Extensibility-aware count: cross product over non-reducible parameters
  /// plus per-value isolated runs for reducible ones.
  std::uint64_t reduced_count() const;

  /// True if `rows` covers all value pairs (validation of the array).
  bool covers_all_pairs(const std::vector<std::vector<std::size_t>>& rows) const;

 private:
  std::vector<ConfigParam> params_;
};

}  // namespace aseck::core
