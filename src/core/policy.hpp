#pragma once
// Centralized, declarative security policy — the flexible architecture the
// paper points to (refs [20], [3], [4]): security requirements are specified
// once, centrally, and compiled into per-layer configurations; policies are
// versioned, signed by the OEM security authority, and updatable in-field
// over the OTA channel. This is the mechanism that makes the 4+1
// architecture *extensible*: new countermeasures and parameter changes ship
// as policy updates instead of ECU firmware rewrites.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/ecdsa.hpp"
#include "gateway/gateway.hpp"
#include "util/time.hpp"

namespace aseck::core {

using util::SimTime;

/// Typed policy values.
class PolicyValue {
 public:
  PolicyValue() : kind_(Kind::kInt), i_(0) {}
  PolicyValue(std::int64_t v) : kind_(Kind::kInt), i_(v) {}
  PolicyValue(double v) : kind_(Kind::kDouble), d_(v) {}
  PolicyValue(std::string v) : kind_(Kind::kString), s_(std::move(v)) {}
  PolicyValue(bool v) : kind_(Kind::kBool), b_(v) {}

  std::optional<std::int64_t> as_int() const;
  std::optional<double> as_double() const;
  std::optional<std::string> as_string() const;
  std::optional<bool> as_bool() const;

  util::Bytes serialize() const;

 private:
  enum class Kind : std::uint8_t { kInt, kDouble, kString, kBool };
  Kind kind_;
  std::int64_t i_ = 0;
  double d_ = 0;
  std::string s_;
  bool b_ = false;
};

/// Well-known policy keys (extensible: unknown keys are carried through for
/// future consumers — the "reserved for future use" configurations whose
/// verification burden Section 6 discusses).
namespace keys {
inline constexpr const char* kSecocMacBytes = "network.secoc.mac_bytes";
inline constexpr const char* kSecocFreshnessBytes = "network.secoc.freshness_bytes";
inline constexpr const char* kSecocSuite = "network.secoc.suite";
inline constexpr const char* kIdsSensitivity = "network.ids.sensitivity";
inline constexpr const char* kGatewayDefaultDeny = "gateway.default_deny";
inline constexpr const char* kGatewayRateLimit = "gateway.rate_limit_fps";
inline constexpr const char* kV2xMaxAgeMs = "interfaces.v2x.max_age_ms";
inline constexpr const char* kV2xRelevanceM = "interfaces.v2x.relevance_m";
inline constexpr const char* kPseudonymPeriodS = "interfaces.v2x.pseudonym_period_s";
inline constexpr const char* kPkesRttLimitUs = "access.pkes.rtt_limit_us";
inline constexpr const char* kModeTable = "modes.active_profile";
}  // namespace keys

/// The policy document.
struct SecurityPolicy {
  std::uint32_t version = 1;
  std::string name = "default";
  std::map<std::string, PolicyValue> values;
  std::vector<gateway::FirewallRule> firewall_rules;

  util::Bytes serialize() const;

  /// Typed getters with defaults.
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  std::string get_string(const std::string& key, std::string def) const;
  bool get_bool(const std::string& key, bool def) const;
};

/// Signed policy envelope for in-field distribution.
struct SignedPolicy {
  SecurityPolicy policy;
  crypto::EcdsaSignature signature;

  static SignedPolicy sign(SecurityPolicy p, const crypto::EcdsaPrivateKey& key);
};

/// Device-side policy store: verifies signature + version monotonicity
/// before accepting an update (the OTA-delivered policy path).
class PolicyStore {
 public:
  explicit PolicyStore(crypto::EcdsaPublicKey authority, SecurityPolicy initial);

  enum class UpdateResult { kAccepted, kBadSignature, kVersionRollback };
  UpdateResult apply_update(const SignedPolicy& update);

  const SecurityPolicy& active() const { return active_; }
  std::uint32_t updates_accepted() const { return accepted_; }
  std::uint32_t updates_rejected() const { return rejected_; }

  /// Observers notified on accepted updates (the layer manager hooks here).
  using Listener = std::function<void(const SecurityPolicy&)>;
  void subscribe(Listener l) { listeners_.push_back(std::move(l)); }

 private:
  crypto::EcdsaPublicKey authority_;
  SecurityPolicy active_;
  std::uint32_t accepted_ = 0;
  std::uint32_t rejected_ = 0;
  std::vector<Listener> listeners_;
};

}  // namespace aseck::core
