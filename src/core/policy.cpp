#include "core/policy.hpp"

#include <cstring>

namespace aseck::core {

std::optional<std::int64_t> PolicyValue::as_int() const {
  if (kind_ == Kind::kInt) return i_;
  return std::nullopt;
}
std::optional<double> PolicyValue::as_double() const {
  if (kind_ == Kind::kDouble) return d_;
  if (kind_ == Kind::kInt) return static_cast<double>(i_);
  return std::nullopt;
}
std::optional<std::string> PolicyValue::as_string() const {
  if (kind_ == Kind::kString) return s_;
  return std::nullopt;
}
std::optional<bool> PolicyValue::as_bool() const {
  if (kind_ == Kind::kBool) return b_;
  return std::nullopt;
}

util::Bytes PolicyValue::serialize() const {
  util::Bytes out;
  out.reserve(10 + (kind_ == Kind::kString ? s_.size() : 0));
  out.push_back(static_cast<std::uint8_t>(kind_));
  switch (kind_) {
    case Kind::kInt:
      util::append_be(out, static_cast<std::uint64_t>(i_), 8);
      break;
    case Kind::kDouble: {
      std::uint64_t bits;
      std::memcpy(&bits, &d_, 8);
      util::append_be(out, bits, 8);
      break;
    }
    case Kind::kString:
      out.insert(out.end(), s_.begin(), s_.end());
      out.push_back(0);
      break;
    case Kind::kBool:
      out.push_back(b_ ? 1 : 0);
      break;
  }
  return out;
}

util::Bytes SecurityPolicy::serialize() const {
  util::Bytes out;
  util::append_be(out, version, 4);
  out.insert(out.end(), name.begin(), name.end());
  out.push_back(0);
  for (const auto& [key, value] : values) {
    out.insert(out.end(), key.begin(), key.end());
    out.push_back(0);
    const util::Bytes vb = value.serialize();
    out.insert(out.end(), vb.begin(), vb.end());
  }
  for (const auto& rule : firewall_rules) {
    out.insert(out.end(), rule.from_domain.begin(), rule.from_domain.end());
    out.push_back(0);
    out.insert(out.end(), rule.to_domain.begin(), rule.to_domain.end());
    out.push_back(0);
    util::append_be(out, rule.id_min, 4);
    util::append_be(out, rule.id_max, 4);
    out.push_back(rule.allow ? 1 : 0);
    util::append_be(out, rule.max_dlc ? (*rule.max_dlc + 1) : 0, 2);
  }
  return out;
}

std::int64_t SecurityPolicy::get_int(const std::string& key,
                                     std::int64_t def) const {
  const auto it = values.find(key);
  if (it == values.end()) return def;
  return it->second.as_int().value_or(def);
}
double SecurityPolicy::get_double(const std::string& key, double def) const {
  const auto it = values.find(key);
  if (it == values.end()) return def;
  return it->second.as_double().value_or(def);
}
std::string SecurityPolicy::get_string(const std::string& key,
                                       std::string def) const {
  const auto it = values.find(key);
  if (it == values.end()) return def;
  return it->second.as_string().value_or(def);
}
bool SecurityPolicy::get_bool(const std::string& key, bool def) const {
  const auto it = values.find(key);
  if (it == values.end()) return def;
  return it->second.as_bool().value_or(def);
}

SignedPolicy SignedPolicy::sign(SecurityPolicy p,
                                const crypto::EcdsaPrivateKey& key) {
  SignedPolicy sp;
  sp.signature = key.sign(p.serialize());
  sp.policy = std::move(p);
  return sp;
}

PolicyStore::PolicyStore(crypto::EcdsaPublicKey authority,
                         SecurityPolicy initial)
    : authority_(std::move(authority)), active_(std::move(initial)) {}

PolicyStore::UpdateResult PolicyStore::apply_update(const SignedPolicy& update) {
  if (!crypto::ecdsa_verify(authority_, update.policy.serialize(),
                            update.signature)) {
    ++rejected_;
    return UpdateResult::kBadSignature;
  }
  if (update.policy.version <= active_.version) {
    ++rejected_;
    return UpdateResult::kVersionRollback;
  }
  active_ = update.policy;
  ++accepted_;
  for (const auto& l : listeners_) l(active_);
  return UpdateResult::kAccepted;
}

}  // namespace aseck::core
