#include "crypto/cmac.hpp"

#include <cstring>
#include <stdexcept>

namespace aseck::crypto {

namespace {
/// Doubling in GF(2^128) with the CMAC polynomial (Rb = 0x87).
Block gf128_double(const Block& in) {
  Block out{};
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    const std::uint8_t b = in[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((b << 1) | carry);
    carry = b >> 7;
  }
  if (carry) out[15] ^= 0x87;
  return out;
}
}  // namespace

Cmac::Cmac(util::BytesView key) : aes_(key) {
  Block zero{};
  const Block l = aes_.encrypt(zero);
  k1_ = gf128_double(l);
  k2_ = gf128_double(k1_);
}

Block Cmac::tag(util::BytesView msg) const {
  const std::size_t n = msg.size();
  const std::size_t full_blocks = (n == 0) ? 0 : (n - 1) / kAesBlockSize;
  Block x{};
  for (std::size_t b = 0; b < full_blocks; ++b) {
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      x[i] ^= msg[b * kAesBlockSize + i];
    }
    x = aes_.encrypt(x);
  }
  // Last block: complete -> XOR K1; incomplete -> pad 10..0 and XOR K2.
  Block last{};
  const std::size_t rem = n - full_blocks * kAesBlockSize;
  if (n != 0 && rem == kAesBlockSize) {
    std::memcpy(last.data(), &msg[full_blocks * kAesBlockSize], kAesBlockSize);
    for (std::size_t i = 0; i < kAesBlockSize; ++i) last[i] ^= k1_[i];
  } else {
    if (rem) std::memcpy(last.data(), &msg[full_blocks * kAesBlockSize], rem);
    last[rem] = 0x80;
    for (std::size_t i = 0; i < kAesBlockSize; ++i) last[i] ^= k2_[i];
  }
  for (std::size_t i = 0; i < kAesBlockSize; ++i) x[i] ^= last[i];
  return aes_.encrypt(x);
}

util::Bytes Cmac::tag_truncated(util::BytesView msg, std::size_t len) const {
  if (len == 0 || len > kAesBlockSize) {
    throw std::invalid_argument("Cmac::tag_truncated: len must be 1..16");
  }
  const Block t = tag(msg);
  return util::Bytes(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(len));
}

bool Cmac::verify(util::BytesView msg, util::BytesView expected_tag) const {
  if (expected_tag.empty() || expected_tag.size() > kAesBlockSize) return false;
  const Block t = tag(msg);
  return util::ct_equal(
      util::BytesView(t.data(), expected_tag.size()), expected_tag);
}

Block aes_cmac(util::BytesView key, util::BytesView msg) {
  return Cmac(key).tag(msg);
}

}  // namespace aseck::crypto
