#pragma once
// DST40-like transponder cipher for the immobilizer model.
//
// The real DST40 (TI Digital Signature Transponder) keystream function is
// proprietary; what matters for reproducing the Bono et al. (USENIX Sec'05)
// attack is its *parameters*: a 40-bit key, a 40-bit challenge, and a 24-bit
// response, which puts exhaustive key search within reach of modest hardware.
// We implement a small balanced Feistel network with those parameters. The
// access-security module cracks it by brute force over a configurable key
// subspace (src/attacks/key_crack.hpp), demonstrating the same "weak
// proprietary cipher + short key" failure mode.

#include <cstdint>

namespace aseck::crypto {

class Dst40 {
 public:
  /// Key is 40 bits (low 40 bits of the argument are used).
  explicit Dst40(std::uint64_t key40);

  /// 24-bit response to a 40-bit challenge.
  std::uint32_t respond(std::uint64_t challenge40) const;

  std::uint64_t key() const { return key_; }

  static constexpr std::uint64_t kKeyMask = (1ULL << 40) - 1;
  static constexpr std::uint64_t kChallengeMask = (1ULL << 40) - 1;
  static constexpr std::uint32_t kResponseMask = (1u << 24) - 1;

 private:
  std::uint64_t key_;
};

}  // namespace aseck::crypto
