#include "crypto/hmac.hpp"

#include <stdexcept>

namespace aseck::crypto {

Digest hmac_sha256(util::BytesView key, util::BytesView msg) {
  std::array<std::uint8_t, 64> k{};
  if (key.size() > 64) {
    const Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  std::array<std::uint8_t, 64> ipad, opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  Sha256 inner;
  inner.update(util::BytesView(ipad.data(), ipad.size()));
  inner.update(msg);
  const Digest inner_digest = inner.finalize();
  Sha256 outer;
  outer.update(util::BytesView(opad.data(), opad.size()));
  outer.update(util::BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finalize();
}

bool hmac_verify(util::BytesView key, util::BytesView msg, util::BytesView tag) {
  if (tag.size() < 8 || tag.size() > kSha256DigestSize) return false;
  const Digest full = hmac_sha256(key, msg);
  return util::ct_equal(util::BytesView(full.data(), tag.size()), tag);
}

Digest hkdf_extract(util::BytesView salt, util::BytesView ikm) {
  return hmac_sha256(salt, ikm);
}

util::Bytes hkdf_expand(util::BytesView prk, util::BytesView info, std::size_t len) {
  if (len > 255 * kSha256DigestSize) {
    throw std::invalid_argument("hkdf_expand: length too large");
  }
  util::Bytes out;
  out.reserve(len);
  util::Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < len) {
    util::Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    const Digest d = hmac_sha256(prk, block);
    t.assign(d.begin(), d.end());
    const std::size_t take = std::min(t.size(), len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

util::Bytes hkdf(util::BytesView salt, util::BytesView ikm, util::BytesView info,
                 std::size_t len) {
  const Digest prk = hkdf_extract(salt, ikm);
  return hkdf_expand(util::BytesView(prk.data(), prk.size()), info, len);
}

}  // namespace aseck::crypto
