#include "crypto/gcm.hpp"

#include <cstring>
#include <stdexcept>

namespace aseck::crypto {

namespace {

struct U128 {
  std::uint64_t hi = 0, lo = 0;
};

U128 load_u128(const std::uint8_t* p) {
  return U128{util::load_be64(p), util::load_be64(p + 8)};
}

void store_u128(std::uint8_t* p, U128 v) {
  util::store_be64(p, v.hi);
  util::store_be64(p + 8, v.lo);
}

/// GF(2^128) multiplication per SP 800-38D (bit-reflected convention),
/// simple shift-and-add; adequate for simulation throughput.
U128 ghash_mul(U128 x, U128 y) {
  U128 z{};
  U128 v = y;
  for (int i = 0; i < 128; ++i) {
    const std::uint64_t bit =
        (i < 64) ? (x.hi >> (63 - i)) & 1 : (x.lo >> (127 - i)) & 1;
    if (bit) {
      z.hi ^= v.hi;
      z.lo ^= v.lo;
    }
    const bool lsb = v.lo & 1;
    v.lo = (v.lo >> 1) | (v.hi << 63);
    v.hi >>= 1;
    if (lsb) v.hi ^= 0xe100000000000000ULL;
  }
  return z;
}

class Ghash {
 public:
  explicit Ghash(U128 h) : h_(h) {}

  void update(util::BytesView data) {
    for (std::size_t off = 0; off < data.size(); off += 16) {
      std::uint8_t blk[16] = {};
      const std::size_t n = std::min<std::size_t>(16, data.size() - off);
      std::memcpy(blk, data.data() + off, n);
      const U128 x = load_u128(blk);
      y_.hi ^= x.hi;
      y_.lo ^= x.lo;
      y_ = ghash_mul(y_, h_);
    }
  }

  void update_length_block(std::uint64_t aad_bits, std::uint64_t ct_bits) {
    std::uint8_t blk[16];
    util::store_be64(blk, aad_bits);
    util::store_be64(blk + 8, ct_bits);
    update(util::BytesView(blk, 16));
  }

  U128 digest() const { return y_; }

 private:
  U128 h_;
  U128 y_{};
};

Block make_j0(util::BytesView iv96) {
  if (iv96.size() != 12) {
    throw std::invalid_argument("aes_gcm: IV must be 96 bits");
  }
  Block j0{};
  std::memcpy(j0.data(), iv96.data(), 12);
  j0[15] = 1;
  return j0;
}

Block inc32(Block b) {
  for (int i = 15; i >= 12; --i) {
    if (++b[static_cast<std::size_t>(i)] != 0) break;
  }
  return b;
}

}  // namespace

GcmResult aes_gcm_encrypt(const Aes& aes, util::BytesView iv96,
                          util::BytesView aad, util::BytesView plain) {
  Block zero{};
  const Block hb = aes.encrypt(zero);
  const U128 h = load_u128(hb.data());
  const Block j0 = make_j0(iv96);

  GcmResult out;
  out.ciphertext = aes_ctr(aes, inc32(j0), plain);

  Ghash gh(h);
  gh.update(aad);
  gh.update(out.ciphertext);
  gh.update_length_block(aad.size() * 8, out.ciphertext.size() * 8);

  Block s;
  store_u128(s.data(), gh.digest());
  const Block ek_j0 = aes.encrypt(j0);
  for (std::size_t i = 0; i < 16; ++i) {
    out.tag[i] = static_cast<std::uint8_t>(s[i] ^ ek_j0[i]);
  }
  return out;
}

std::optional<util::Bytes> aes_gcm_decrypt(const Aes& aes, util::BytesView iv96,
                                           util::BytesView aad,
                                           util::BytesView cipher,
                                           util::BytesView tag) {
  if (tag.size() < 12 || tag.size() > 16) return std::nullopt;
  Block zero{};
  const Block hb = aes.encrypt(zero);
  const U128 h = load_u128(hb.data());
  const Block j0 = make_j0(iv96);

  Ghash gh(h);
  gh.update(aad);
  gh.update(cipher);
  gh.update_length_block(aad.size() * 8, cipher.size() * 8);

  Block s;
  store_u128(s.data(), gh.digest());
  const Block ek_j0 = aes.encrypt(j0);
  Block expect;
  for (std::size_t i = 0; i < 16; ++i) {
    expect[i] = static_cast<std::uint8_t>(s[i] ^ ek_j0[i]);
  }
  if (!util::ct_equal(util::BytesView(expect.data(), tag.size()), tag)) {
    return std::nullopt;
  }
  return aes_ctr(aes, inc32(j0), cipher);
}

}  // namespace aseck::crypto
