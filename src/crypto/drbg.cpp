#include "crypto/drbg.hpp"

#include <cstring>

#include "crypto/sha256.hpp"

namespace aseck::crypto {

namespace {
inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}
}  // namespace

void chacha20_block(const std::array<std::uint32_t, 8>& key, std::uint32_t counter,
                    const std::array<std::uint32_t, 3>& nonce, std::uint8_t out[64]) {
  std::uint32_t st[16] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
                          key[0], key[1], key[2], key[3],
                          key[4], key[5], key[6], key[7],
                          counter, nonce[0], nonce[1], nonce[2]};
  std::uint32_t x[16];
  std::memcpy(x, st, sizeof st);
  for (int i = 0; i < 10; ++i) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + st[i];
    out[4 * i + 0] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

Drbg::Drbg(util::BytesView seed) {
  const Digest d = sha256(seed);
  for (int i = 0; i < 8; ++i) {
    key_[static_cast<std::size_t>(i)] = util::load_be32(&d[4 * static_cast<std::size_t>(i)]);
  }
}

Drbg::Drbg(std::uint64_t seed) {
  std::uint8_t b[8];
  util::store_be64(b, seed);
  const Digest d = sha256(util::BytesView(b, 8));
  for (int i = 0; i < 8; ++i) {
    key_[static_cast<std::size_t>(i)] = util::load_be32(&d[4 * static_cast<std::size_t>(i)]);
  }
}

void Drbg::refill() {
  chacha20_block(key_, counter_++, nonce_, block_.data());
  pos_ = 0;
  if (counter_ == 0) ++nonce_[0];  // 2^32 blocks: roll the nonce
}

void Drbg::generate(std::uint8_t* out, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    if (pos_ == 64) refill();
    const std::size_t take = std::min(n - off, 64 - pos_);
    std::memcpy(out + off, block_.data() + pos_, take);
    pos_ += take;
    off += take;
  }
}

util::Bytes Drbg::bytes(std::size_t n) {
  util::Bytes out(n);
  generate(out.data(), n);
  return out;
}

std::uint64_t Drbg::next_u64() {
  std::uint8_t b[8];
  generate(b, 8);
  return util::load_be64(b);
}

std::uint64_t Drbg::uniform(std::uint64_t bound) {
  if (bound == 0) return 0;
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound) - 1;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v > limit);
  return v % bound;
}

void Drbg::reseed(util::BytesView entropy) {
  util::Bytes mix;
  mix.reserve(32 + entropy.size());
  for (auto k : key_) util::append_be(mix, k, 4);
  mix.insert(mix.end(), entropy.begin(), entropy.end());
  const Digest d = sha256(mix);
  for (int i = 0; i < 8; ++i) {
    key_[static_cast<std::size_t>(i)] = util::load_be32(&d[4 * static_cast<std::size_t>(i)]);
  }
  counter_ = 0;
  pos_ = 64;
}

}  // namespace aseck::crypto
