#pragma once
// SHE-specification key derivation: AES-128 Miyaguchi–Preneel compression
// over padded input, exactly as used by the SHE memory-update protocol
// (KDF(K, C) = MP-compress(K || C)).

#include "crypto/aes.hpp"
#include "util/bytes.hpp"

namespace aseck::crypto {

/// Miyaguchi–Preneel compression with AES-128-ECB:
///   H_{i+1} = E(H_i, M_i) XOR H_i XOR M_i,  H_0 = 0.
/// Input is padded per SHE (append 0x80... then 40-bit bit-length in the
/// final block) when `she_padding` is true, else must be block-aligned.
Block mp_compress(util::BytesView msg, bool she_padding = true);

/// SHE KDF: derives a 128-bit key from `key` and a domain-separation
/// constant `c` (16 bytes each), KDF(K, C) = MP(K || C).
Block she_kdf(const Block& key, const Block& c);

/// SHE update constants (SHE spec 1.1, section "Memory Update Protocol").
const Block& she_key_update_enc_c();   // KEY_UPDATE_ENC_C
const Block& she_key_update_mac_c();   // KEY_UPDATE_MAC_C
const Block& she_debug_key_c();        // DEBUG_KEY_C
const Block& she_prng_key_c();         // PRNG_KEY_C

}  // namespace aseck::crypto
