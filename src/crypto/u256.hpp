#pragma once
// Fixed-width 256-bit unsigned integers (8 x 32-bit limbs, little-endian
// limb order) plus the 512-bit product type. This is the arithmetic base for
// the P-256 implementation; it favors clarity and testability over speed.

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace aseck::crypto {

struct U512;

struct U256 {
  std::array<std::uint32_t, 8> w{};  // w[0] least significant

  static U256 zero() { return U256{}; }
  static U256 one() {
    U256 r;
    r.w[0] = 1;
    return r;
  }
  static U256 from_u64(std::uint64_t v) {
    U256 r;
    r.w[0] = static_cast<std::uint32_t>(v);
    r.w[1] = static_cast<std::uint32_t>(v >> 32);
    return r;
  }
  /// Parses a big-endian hex string of <= 64 digits.
  static U256 from_hex(std::string_view hex);
  /// Big-endian 32-byte decoding; shorter inputs are left-padded with zero.
  static U256 from_bytes(util::BytesView be);

  util::Bytes to_bytes() const;  // 32 bytes big-endian
  std::string to_hex() const;

  bool is_zero() const;
  bool bit(unsigned i) const { return (w[i / 32] >> (i % 32)) & 1u; }
  /// Index of the highest set bit, or -1 if zero.
  int top_bit() const;
  bool is_odd() const { return w[0] & 1u; }

  friend bool operator==(const U256&, const U256&) = default;
};

/// -1 / 0 / +1 three-way compare.
int cmp(const U256& a, const U256& b);
bool operator<(const U256& a, const U256& b);

/// a + b; returns the carry-out (0/1).
std::uint32_t add(U256& out, const U256& a, const U256& b);
/// a - b; returns the borrow-out (0/1).
std::uint32_t sub(U256& out, const U256& a, const U256& b);
/// Logical shift left/right by 1 bit; shl returns the bit shifted out.
std::uint32_t shl1(U256& v);
void shr1(U256& v);

struct U512 {
  std::array<std::uint32_t, 16> w{};
};

/// Full 256x256 -> 512-bit product.
U512 mul(const U256& a, const U256& b);

/// Generic x mod m via binary long division. m must be nonzero; no special
/// form assumed. Used for the P-256 group order n.
U256 mod_generic(const U512& x, const U256& m);
U256 mod_generic(const U256& x, const U256& m);

/// (a + b) mod m, inputs already reduced.
U256 add_mod(const U256& a, const U256& b, const U256& m);
/// (a - b) mod m, inputs already reduced.
U256 sub_mod(const U256& a, const U256& b, const U256& m);
/// (a * b) mod m via mod_generic (slow path; P-256 field uses fast reduce).
U256 mul_mod(const U256& a, const U256& b, const U256& m);
/// a^e mod m by square-and-multiply.
U256 pow_mod(const U256& a, const U256& e, const U256& m);
/// Modular inverse for prime modulus (Fermat). Precondition: a != 0 mod m.
U256 inv_mod_prime(const U256& a, const U256& m);

}  // namespace aseck::crypto
