#include "crypto/aes.hpp"

#include <cstring>
#include <stdexcept>

namespace aseck::crypto {

namespace {

std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a >> 7) * 0x1b));
}

struct Tables {
  std::array<std::uint8_t, 256> sbox{};
  std::array<std::uint8_t, 256> inv_sbox{};

  Tables() {
    // Build the S-box from multiplicative inverses in GF(2^8) followed by
    // the affine transform, using the standard generator-walk trick:
    // 3 generates GF(2^8)*, so inv(3^i) = 3^(255-i).
    std::array<std::uint8_t, 256> pow3{};
    std::array<std::uint8_t, 256> log3{};
    std::uint8_t p = 1;
    for (int i = 0; i < 255; ++i) {
      pow3[i] = p;
      log3[p] = static_cast<std::uint8_t>(i);
      // multiply by 3 = x + 1
      p = static_cast<std::uint8_t>(p ^ xtime(p));
    }
    for (int x = 0; x < 256; ++x) {
      std::uint8_t inv =
          (x == 0) ? 0 : pow3[(255 - log3[static_cast<std::uint8_t>(x)]) % 255];
      // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
      auto rotl8 = [](std::uint8_t v, int n) {
        return static_cast<std::uint8_t>((v << n) | (v >> (8 - n)));
      };
      std::uint8_t s = static_cast<std::uint8_t>(
          inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^ rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63);
      sbox[x] = s;
      inv_sbox[s] = static_cast<std::uint8_t>(x);
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

void add_round_key(std::uint8_t st[16], const std::uint8_t rk[16]) {
  for (int i = 0; i < 16; ++i) st[i] ^= rk[i];
}

void sub_bytes(std::uint8_t st[16]) {
  const auto& t = tables();
  for (int i = 0; i < 16; ++i) st[i] = t.sbox[st[i]];
}

void inv_sub_bytes(std::uint8_t st[16]) {
  const auto& t = tables();
  for (int i = 0; i < 16; ++i) st[i] = t.inv_sbox[st[i]];
}

// State layout: st[4*c + r] is row r, column c (column-major as in FIPS 197).
void shift_rows(std::uint8_t st[16]) {
  std::uint8_t tmp;
  // row 1: shift left by 1
  tmp = st[1];
  st[1] = st[5];
  st[5] = st[9];
  st[9] = st[13];
  st[13] = tmp;
  // row 2: shift left by 2
  std::swap(st[2], st[10]);
  std::swap(st[6], st[14]);
  // row 3: shift left by 3 (= right by 1)
  tmp = st[15];
  st[15] = st[11];
  st[11] = st[7];
  st[7] = st[3];
  st[3] = tmp;
}

void inv_shift_rows(std::uint8_t st[16]) {
  std::uint8_t tmp;
  // row 1: shift right by 1
  tmp = st[13];
  st[13] = st[9];
  st[9] = st[5];
  st[5] = st[1];
  st[1] = tmp;
  // row 2
  std::swap(st[2], st[10]);
  std::swap(st[6], st[14]);
  // row 3: shift right by 3 (= left by 1)
  tmp = st[3];
  st[3] = st[7];
  st[7] = st[11];
  st[11] = st[15];
  st[15] = tmp;
}

void mix_columns(std::uint8_t st[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = st + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    const std::uint8_t all = static_cast<std::uint8_t>(a0 ^ a1 ^ a2 ^ a3);
    col[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(static_cast<std::uint8_t>(a0 ^ a1)));
    col[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(static_cast<std::uint8_t>(a1 ^ a2)));
    col[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(static_cast<std::uint8_t>(a2 ^ a3)));
    col[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(static_cast<std::uint8_t>(a3 ^ a0)));
  }
}

void inv_mix_columns(std::uint8_t st[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = st + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gf_mul(a0, 14) ^ gf_mul(a1, 11) ^
                                       gf_mul(a2, 13) ^ gf_mul(a3, 9));
    col[1] = static_cast<std::uint8_t>(gf_mul(a0, 9) ^ gf_mul(a1, 14) ^
                                       gf_mul(a2, 11) ^ gf_mul(a3, 13));
    col[2] = static_cast<std::uint8_t>(gf_mul(a0, 13) ^ gf_mul(a1, 9) ^
                                       gf_mul(a2, 14) ^ gf_mul(a3, 11));
    col[3] = static_cast<std::uint8_t>(gf_mul(a0, 11) ^ gf_mul(a1, 13) ^
                                       gf_mul(a2, 9) ^ gf_mul(a3, 14));
  }
}

}  // namespace

std::uint8_t aes_sbox(std::uint8_t x) { return tables().sbox[x]; }
std::uint8_t aes_inv_sbox(std::uint8_t x) { return tables().inv_sbox[x]; }

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t r = 0;
  while (b) {
    if (b & 1) r ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return r;
}

Aes::Aes(util::BytesView key) {
  const std::size_t nk = key.size() / 4;  // key words
  switch (key.size()) {
    case 16: rounds_ = 10; break;
    case 24: rounds_ = 12; break;
    case 32: rounds_ = 14; break;
    default: throw std::invalid_argument("Aes: key must be 16/24/32 bytes");
  }
  const auto& t = tables();
  const std::size_t total_words = 4 * (rounds_ + 1);
  // Word i is rk_[4*i .. 4*i+3].
  std::memcpy(rk_.data(), key.data(), key.size());
  std::uint8_t rcon = 1;
  for (std::size_t i = nk; i < total_words; ++i) {
    std::uint8_t w[4];
    std::memcpy(w, &rk_[4 * (i - 1)], 4);
    if (i % nk == 0) {
      // RotWord + SubWord + Rcon
      const std::uint8_t tmp = w[0];
      w[0] = static_cast<std::uint8_t>(t.sbox[w[1]] ^ rcon);
      w[1] = t.sbox[w[2]];
      w[2] = t.sbox[w[3]];
      w[3] = t.sbox[tmp];
      rcon = xtime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      for (auto& b : w) b = t.sbox[b];
    }
    for (int j = 0; j < 4; ++j) {
      rk_[4 * i + j] = static_cast<std::uint8_t>(rk_[4 * (i - nk) + j] ^ w[j]);
    }
  }
  // Equivalent-inverse-cipher decryption round keys: reverse order,
  // InvMixColumns on the middle ones.
  for (int r = 0; r <= rounds_; ++r) {
    std::memcpy(&drk_[16 * r], &rk_[16 * (rounds_ - r)], 16);
    if (r != 0 && r != rounds_) inv_mix_columns(&drk_[16 * r]);
  }
}

void Aes::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  std::uint8_t st[16];
  std::memcpy(st, in, 16);
  add_round_key(st, round_key(0));
  for (int r = 1; r < rounds_; ++r) {
    sub_bytes(st);
    shift_rows(st);
    mix_columns(st);
    add_round_key(st, round_key(r));
  }
  sub_bytes(st);
  shift_rows(st);
  add_round_key(st, round_key(rounds_));
  std::memcpy(out, st, 16);
}

void Aes::decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  std::uint8_t st[16];
  std::memcpy(st, in, 16);
  add_round_key(st, &drk_[0]);
  for (int r = 1; r < rounds_; ++r) {
    inv_sub_bytes(st);
    inv_shift_rows(st);
    inv_mix_columns(st);
    add_round_key(st, &drk_[16 * r]);
  }
  inv_sub_bytes(st);
  inv_shift_rows(st);
  add_round_key(st, &drk_[16 * rounds_]);
  std::memcpy(out, st, 16);
}

Block Aes::encrypt(const Block& in) const {
  Block out;
  encrypt_block(in.data(), out.data());
  return out;
}

Block Aes::decrypt(const Block& in) const {
  Block out;
  decrypt_block(in.data(), out.data());
  return out;
}

util::Bytes aes_ctr(const Aes& aes, const Block& iv, util::BytesView data) {
  util::Bytes out(data.size());
  Block counter = iv;
  Block keystream;
  std::size_t off = 0;
  while (off < data.size()) {
    aes.encrypt_block(counter.data(), keystream.data());
    const std::size_t n = std::min(kAesBlockSize, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) {
      out[off + i] = static_cast<std::uint8_t>(data[off + i] ^ keystream[i]);
    }
    off += n;
    // Increment low 32 bits big-endian.
    for (int i = 15; i >= 12; --i) {
      if (++counter[static_cast<std::size_t>(i)] != 0) break;
    }
  }
  return out;
}

util::Bytes aes_cbc_encrypt(const Aes& aes, const Block& iv, util::BytesView plain) {
  const std::size_t pad = kAesBlockSize - plain.size() % kAesBlockSize;
  util::Bytes padded(plain.begin(), plain.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));
  util::Bytes out(padded.size());
  Block prev = iv;
  for (std::size_t off = 0; off < padded.size(); off += kAesBlockSize) {
    Block blk;
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      blk[i] = static_cast<std::uint8_t>(padded[off + i] ^ prev[i]);
    }
    aes.encrypt_block(blk.data(), &out[off]);
    std::memcpy(prev.data(), &out[off], kAesBlockSize);
  }
  return out;
}

util::Bytes aes_cbc_decrypt(const Aes& aes, const Block& iv, util::BytesView cipher) {
  if (cipher.empty() || cipher.size() % kAesBlockSize != 0) {
    throw std::invalid_argument("aes_cbc_decrypt: length not a block multiple");
  }
  util::Bytes out(cipher.size());
  Block prev = iv;
  for (std::size_t off = 0; off < cipher.size(); off += kAesBlockSize) {
    Block plain;
    aes.decrypt_block(&cipher[off], plain.data());
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      out[off + i] = static_cast<std::uint8_t>(plain[i] ^ prev[i]);
    }
    std::memcpy(prev.data(), &cipher[off], kAesBlockSize);
  }
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > kAesBlockSize || pad > out.size()) {
    throw std::invalid_argument("aes_cbc_decrypt: bad padding");
  }
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) throw std::invalid_argument("aes_cbc_decrypt: bad padding");
  }
  out.resize(out.size() - pad);
  return out;
}

Block aes_ecb_encrypt_block(util::BytesView key, const Block& in) {
  return Aes(key).encrypt(in);
}

}  // namespace aseck::crypto
