#pragma once
// Multi-producer verify queue + deterministic worker pool (ROADMAP O2).
//
// VerifyQueue: one FIFO per producer. push(p, job) touches only producer
// p's buffer, so concurrent producers never contend (the lock-free
// multi-producer shape reduced to its deterministic core: exclusive
// per-producer lanes). drain() concatenates in (producer, FIFO) order — a
// canonical order independent of arrival interleaving.
//
// VerifyPool: drains the queue, partitions jobs into a FIXED number of
// lanes by message-digest content (not by thread!), and runs one
// VerifyEngine per lane under sim::ThreadPool::parallel_for. Because lane
// assignment, per-lane job order, and per-lane metrics are all functions of
// the job stream only, verdicts AND merged metrics are bit-identical for
// any thread count — the same epoch/merge-order contract the sharded world
// uses. Identical (digest, key, sig) triples land in the same lane, so the
// per-lane LRU caches still dedup the V2X flood pattern.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crypto/verify_engine.hpp"
#include "sim/telemetry.hpp"
#include "sim/threadpool.hpp"

namespace aseck::crypto {

struct VerifyJob {
  const EcdsaPublicKey* pub = nullptr;
  Digest digest{};
  const EcdsaSignature* sig = nullptr;
  std::uint64_t tag = 0;  // caller correlation id, returned with the verdict
};

struct VerifyOutcome {
  std::uint64_t tag = 0;
  bool ok = false;
};

class VerifyQueue {
 public:
  explicit VerifyQueue(std::size_t producers = 1)
      : fifos_(producers == 0 ? 1 : producers) {}

  std::size_t producers() const { return fifos_.size(); }
  /// Registers one more producer FIFO (single-threaded setup phase only).
  std::size_t add_producer() {
    fifos_.emplace_back();
    return fifos_.size() - 1;
  }

  /// Safe to call concurrently for DISTINCT producers; each producer index
  /// must be owned by one thread at a time. Not concurrent with drain().
  void push(std::size_t producer, const VerifyJob& job) {
    fifos_[producer].push_back(job);
  }

  /// Jobs across all producers (quiescent callers only).
  std::size_t pending() const {
    std::size_t n = 0;
    for (const auto& f : fifos_) n += f.size();
    return n;
  }

  /// Concatenates all FIFOs in (producer, FIFO) order and empties them.
  std::vector<VerifyJob> drain() {
    std::vector<VerifyJob> out;
    out.reserve(pending());
    for (auto& f : fifos_) {
      out.insert(out.end(), f.begin(), f.end());
      f.clear();
    }
    return out;
  }

 private:
  std::vector<std::vector<VerifyJob>> fifos_;
};

struct VerifyPoolConfig {
  unsigned threads = 1;
  std::size_t producers = 1;
  /// Determinism granularity: fixed per run, NOT tied to thread count.
  std::size_t lanes = 8;
  /// Target RLC batch per engine burst; chunks larger bursts.
  std::size_t batch_size = 64;
  std::size_t cache_capacity = VerifyEngine::kDefaultCacheCapacity;
  bool batch_kernel = true;
  util::Bytes salt{};
};

class VerifyPool {
 public:
  explicit VerifyPool(VerifyPoolConfig cfg = {});

  VerifyQueue& queue() { return queue_; }
  std::size_t lanes() const { return lanes_.size(); }
  unsigned threads() const { return pool_.threads(); }
  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t jobs_done() const { return jobs_; }

  /// Drains the queue, verifies everything (lanes in parallel), and returns
  /// outcomes in submission (drain) order. Bit-identical for any `threads`.
  std::vector<VerifyOutcome> flush();

  const VerifyEngine& lane_engine(std::size_t lane) const {
    return lanes_[lane]->engine;
  }

  /// Per-lane registries merged in ascending lane order, plus the pool's
  /// own crypto.pool.{flushes,jobs} counters.
  void merge_metrics_into(sim::MetricsRegistry& out) const;
  std::string metrics_json() const;

 private:
  static std::size_t lane_of(const VerifyJob& job, std::size_t lanes) {
    // Content-keyed: the same message digest always lands in the same lane
    // (cache locality for duplicates), whatever the producer or thread.
    return (static_cast<std::size_t>(job.digest[0]) |
            (static_cast<std::size_t>(job.digest[1]) << 8)) %
           lanes;
  }

  struct Lane {
    VerifyEngine engine;
    sim::MetricsRegistry metrics;
    std::vector<std::size_t> slots;           // verdict indices, drain order
    std::vector<VerifyEngine::BatchItem> items;
  };

  VerifyPoolConfig cfg_;
  VerifyQueue queue_;
  sim::ThreadPool pool_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::uint64_t flushes_ = 0;
  std::uint64_t jobs_ = 0;
};

}  // namespace aseck::crypto
