#include "crypto/service.hpp"

namespace aseck::crypto {

const char* service_status_name(ServiceStatus s) {
  switch (s) {
    case ServiceStatus::kOk: return "ok";
    case ServiceStatus::kBadHandle: return "bad_handle";
    case ServiceStatus::kNotOwner: return "not_owner";
    case ServiceStatus::kUsageDenied: return "usage_denied";
    case ServiceStatus::kSealed: return "sealed";
    case ServiceStatus::kBootLocked: return "boot_locked";
    case ServiceStatus::kBadState: return "bad_state";
    case ServiceStatus::kWrongAlgo: return "wrong_algo";
  }
  return "?";
}

const char* CryptoService::state_name(State s) {
  switch (s) {
    case State::kProvisioning: return "provisioning";
    case State::kSealed: return "sealed";
    case State::kOperational: return "operational";
    case State::kFailedBoot: return "failed_boot";
  }
  return "?";
}

CryptoService::CryptoService(std::string name) : name_(std::move(name)) {}

CryptoService::State CryptoService::state() const {
  std::lock_guard<std::mutex> lk(mu_);
  return state_;
}

PartitionId CryptoService::register_partition(std::string name) {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ != State::kProvisioning) return 0;
  partitions_.push_back(std::move(name));
  return static_cast<PartitionId>(partitions_.size());
}

const std::string& CryptoService::partition_name(PartitionId p) const {
  static const std::string kUnknown = "?";
  std::lock_guard<std::mutex> lk(mu_);
  if (p == 0 || p > partitions_.size()) return kUnknown;
  return partitions_[p - 1];
}

KeyHandle CryptoService::insert_locked(RawKey k) {
  const std::uint32_t id = next_id_++;
  keys_.emplace(id, std::move(k));
  return KeyHandle(id);
}

KeyHandle CryptoService::import_ecdsa(PartitionId owner,
                                      util::BytesView secret32,
                                      KeyPolicy policy) {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ != State::kProvisioning || owner == 0 ||
      owner > partitions_.size() || secret32.size() != 32) {
    count(ServiceStatus::kBadState);
    return KeyHandle{};
  }
  RawKey k;
  k.algo = RawKey::Algo::kEcdsaP256;
  k.owner = owner;
  k.policy = policy;
  k.ecdsa = EcdsaPrivateKey::from_secret(secret32);
  return insert_locked(std::move(k));
}

KeyHandle CryptoService::generate_ecdsa(PartitionId owner, Drbg& rng,
                                        KeyPolicy policy) {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ != State::kProvisioning || owner == 0 ||
      owner > partitions_.size()) {
    count(ServiceStatus::kBadState);
    return KeyHandle{};
  }
  RawKey k;
  k.algo = RawKey::Algo::kEcdsaP256;
  k.owner = owner;
  k.policy = policy;
  k.ecdsa = EcdsaPrivateKey::generate(rng);
  return insert_locked(std::move(k));
}

KeyHandle CryptoService::import_mac(PartitionId owner, const Block& key,
                                    KeyPolicy policy) {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ != State::kProvisioning || owner == 0 ||
      owner > partitions_.size()) {
    count(ServiceStatus::kBadState);
    return KeyHandle{};
  }
  RawKey k;
  k.algo = RawKey::Algo::kAesCmac;
  k.owner = owner;
  k.policy = policy;
  k.mac_key = key;
  return insert_locked(std::move(k));
}

ServiceStatus CryptoService::destroy(PartitionId caller, KeyHandle h) {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ != State::kProvisioning) {
    count(ServiceStatus::kBadState);
    return ServiceStatus::kBadState;
  }
  const auto it = keys_.find(h.id_);
  if (!h.valid() || it == keys_.end()) {
    count(ServiceStatus::kBadHandle);
    return ServiceStatus::kBadHandle;
  }
  if (it->second.owner != caller) {
    count(ServiceStatus::kNotOwner);
    return ServiceStatus::kNotOwner;
  }
  keys_.erase(it);
  ++ops_;
  return ServiceStatus::kOk;
}

void CryptoService::seal() {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ == State::kProvisioning) state_ = State::kSealed;
}

void CryptoService::on_measurement(bool passed) {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ != State::kSealed) return;
  state_ = passed ? State::kOperational : State::kFailedBoot;
}

void CryptoService::relock() {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ == State::kOperational || state_ == State::kFailedBoot) {
    state_ = State::kSealed;
  }
}

void CryptoService::count(ServiceStatus s) const {
  if (s != ServiceStatus::kOk) ++denials_[static_cast<std::uint8_t>(s)];
}

ServiceStatus CryptoService::check_locked(PartitionId caller, KeyHandle h,
                                          std::uint32_t usage,
                                          const RawKey** out) const {
  *out = nullptr;
  if (state_ == State::kSealed) return ServiceStatus::kSealed;
  const auto it = keys_.find(h.id_);
  if (!h.valid() || it == keys_.end()) return ServiceStatus::kBadHandle;
  const RawKey& k = it->second;
  if (k.owner != caller) return ServiceStatus::kNotOwner;
  if ((k.policy.usage & usage) != usage) return ServiceStatus::kUsageDenied;
  // SHE semantics: a failed measurement keeps boot-protected keys locked;
  // everything else keeps working (limp-home still needs diag MACs).
  if (k.policy.boot_protected && state_ == State::kFailedBoot) {
    return ServiceStatus::kBootLocked;
  }
  *out = &k;
  return ServiceStatus::kOk;
}

ServiceStatus CryptoService::sign(PartitionId caller, KeyHandle h,
                                  util::BytesView msg,
                                  EcdsaSignature* out) const {
  return sign_digest(caller, h, sha256(msg), out);
}

ServiceStatus CryptoService::sign_digest(PartitionId caller, KeyHandle h,
                                         const Digest& digest,
                                         EcdsaSignature* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  const RawKey* k = nullptr;
  ServiceStatus st = check_locked(caller, h, kUsageSign, &k);
  if (st == ServiceStatus::kOk && k->algo != RawKey::Algo::kEcdsaP256) {
    st = ServiceStatus::kWrongAlgo;
  }
  if (st != ServiceStatus::kOk) {
    count(st);
    return st;
  }
  *out = k->ecdsa->sign_digest(digest);
  ++ops_;
  return ServiceStatus::kOk;
}

ServiceStatus CryptoService::mac(PartitionId caller, KeyHandle h,
                                 util::BytesView msg, Block* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  const RawKey* k = nullptr;
  ServiceStatus st = check_locked(caller, h, kUsageMac, &k);
  if (st == ServiceStatus::kOk && k->algo != RawKey::Algo::kAesCmac) {
    st = ServiceStatus::kWrongAlgo;
  }
  if (st != ServiceStatus::kOk) {
    count(st);
    return st;
  }
  *out = aes_cmac(util::BytesView(k->mac_key.data(), k->mac_key.size()), msg);
  ++ops_;
  return ServiceStatus::kOk;
}

ServiceStatus CryptoService::export_public(KeyHandle h,
                                           EcdsaPublicKey* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = keys_.find(h.id_);
  if (!h.valid() || it == keys_.end()) {
    count(ServiceStatus::kBadHandle);
    return ServiceStatus::kBadHandle;
  }
  if (it->second.algo != RawKey::Algo::kEcdsaP256) {
    count(ServiceStatus::kWrongAlgo);
    return ServiceStatus::kWrongAlgo;
  }
  *out = it->second.ecdsa->public_key();
  ++ops_;
  return ServiceStatus::kOk;
}

ServiceStatus CryptoService::export_secret(PartitionId caller, KeyHandle h,
                                           util::Bytes* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  const RawKey* k = nullptr;
  const ServiceStatus st = check_locked(caller, h, kUsageExport, &k);
  if (st != ServiceStatus::kOk) {
    count(st);
    return st;
  }
  if (k->algo == RawKey::Algo::kEcdsaP256) {
    *out = k->ecdsa->scalar().to_bytes();
  } else {
    out->assign(k->mac_key.begin(), k->mac_key.end());
  }
  ++ops_;
  return ServiceStatus::kOk;
}

ServiceStatus CryptoService::probe(PartitionId caller, KeyHandle h,
                                   std::uint32_t usage) const {
  std::lock_guard<std::mutex> lk(mu_);
  const RawKey* k = nullptr;
  return check_locked(caller, h, usage, &k);
}

std::size_t CryptoService::key_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return keys_.size();
}

std::uint64_t CryptoService::ops() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ops_;
}

std::uint64_t CryptoService::denials() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t n = 0;
  for (const auto& [st, c] : denials_) n += c;
  return n;
}

std::uint64_t CryptoService::denials(ServiceStatus s) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = denials_.find(static_cast<std::uint8_t>(s));
  return it == denials_.end() ? 0 : it->second;
}

std::string CryptoService::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\"service\":\"" + name_ + "\",\"state\":\"" +
                    state_name(state_) + "\",\"partitions\":[";
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    if (i) out += ",";
    out += "\"" + partitions_[i] + "\"";
  }
  out += "],\"keys\":" + std::to_string(keys_.size()) +
         ",\"ops\":" + std::to_string(ops_) + ",\"denials\":{";
  bool first = true;
  for (const auto& [st, c] : denials_) {
    if (!first) out += ",";
    first = false;
    out += "\"" +
           std::string(service_status_name(static_cast<ServiceStatus>(st))) +
           "\":" + std::to_string(c);
  }
  out += "}}";
  return out;
}

}  // namespace aseck::crypto
