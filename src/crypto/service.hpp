#pragma once
// PSA-style crypto service boundary (ROADMAP O4): all long-lived key
// material lives INSIDE this service, behind opaque `KeyHandle`s with
// per-caller-partition usage policies — mirroring the TF-M reference split
// where the non-secure image reaches crypto only through the PSA IPC
// boundary and never touches a key byte.
//
// The isolation is enforced at compile time, not by convention: the only
// type that stores raw key material (`CryptoService::RawKey`) is declared in
// the service's private section, so code outside the service cannot even
// name it, let alone construct one. `KeyHandle`'s id constructor is private
// to the service too, so handles cannot be forged from integers — a caller
// owns exactly the handles the service returned to it at provisioning time
// (tests/boot_test.cpp pins both properties with static_asserts).
//
// Lifecycle mirrors SHE/measured-boot semantics end to end:
//
//   kProvisioning --seal()--> kSealed --on_measurement(ok)--> kOperational
//                                     \--on_measurement(!ok)-> kFailedBoot
//
//   * keys and partitions can only be created while kProvisioning;
//   * a sealed service performs NO private-key operations until the boot
//     chain reports its measurement (ecu::BootChain calls on_measurement);
//   * after a FAILED measurement, boot-protected keys stay locked forever
//     (until relock() + a passing re-measurement) while non-protected keys
//     keep working — exactly SHE's boot_protection flag, lifted to the
//     service boundary;
//   * relock() models a reboot: back to kSealed, awaiting measurement.
//
// Backend HSMs (the Uptane repository, V2X CAs) simply never seal: a
// kProvisioning service performs all operations, so factory/backend code
// keeps full agility (key rotation) while device-side services seal at the
// end of provisioning.
//
// Every operation and every denial is counted per status, deterministically
// (`to_json()` has no wall-clock content). All entry points take the mutex,
// so a service shared across VerifyPool producer threads is data-race-free
// (the tsan boot_test exercises exactly that).

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/cmac.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace aseck::crypto {

/// Caller identity at the service boundary; 0 = invalid. Partitions are
/// registered at provisioning time (e.g. "boot", "ota", "v2x").
using PartitionId = std::uint16_t;

/// PSA-style key usage flags (KeyPolicy::usage bitmask).
enum KeyUsage : std::uint32_t {
  kUsageSign = 1u << 0,    // ECDSA sign / sign_digest
  kUsageMac = 1u << 1,     // AES-CMAC generate/verify
  kUsageExport = 1u << 2,  // export_secret (PSA_KEY_USAGE_EXPORT)
};

/// Per-key policy fixed at creation (PSA: policies are immutable post-create).
struct KeyPolicy {
  std::uint32_t usage = 0;
  /// SHE boot_protection lifted to the service: unusable unless the measured
  /// boot chain reported a PASSING measurement.
  bool boot_protected = false;
};

/// Status of one service call (denials are counted per status).
enum class ServiceStatus : std::uint8_t {
  kOk = 0,
  kBadHandle,     // unknown/invalid handle
  kNotOwner,      // caller partition does not own the key
  kUsageDenied,   // policy lacks the requested usage bit
  kSealed,        // service sealed, measurement not yet reported
  kBootLocked,    // boot-protected key after a FAILED measurement
  kBadState,      // creation attempted outside kProvisioning
  kWrongAlgo,     // MAC op on an ECDSA key or vice versa
};
const char* service_status_name(ServiceStatus s);

/// Opaque reference to a key inside the service. Cannot be constructed from
/// an id by callers (the ctor is private to CryptoService) — a handle is
/// only ever obtained from the service that owns the key.
class KeyHandle {
 public:
  KeyHandle() = default;
  bool valid() const { return id_ != 0; }
  friend bool operator==(const KeyHandle& a, const KeyHandle& b) {
    return a.id_ == b.id_;
  }
  friend bool operator<(const KeyHandle& a, const KeyHandle& b) {
    return a.id_ < b.id_;
  }

 private:
  friend class CryptoService;
  explicit KeyHandle(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = 0;
};

class CryptoService {
 public:
  enum class State : std::uint8_t {
    kProvisioning,  // factory: partitions/keys may be created, ops allowed
    kSealed,        // device sealed; everything locked until measurement
    kOperational,   // measurement passed; policy-gated ops allowed
    kFailedBoot,    // measurement failed; boot-protected keys stay locked
  };
  static const char* state_name(State s);

  explicit CryptoService(std::string name = "crypto");
  CryptoService(const CryptoService&) = delete;
  CryptoService& operator=(const CryptoService&) = delete;

  const std::string& name() const { return name_; }
  State state() const;

  // --- provisioning (kProvisioning only) ------------------------------------
  /// Registers a caller partition; returns its id (0 outside provisioning).
  PartitionId register_partition(std::string name);
  const std::string& partition_name(PartitionId p) const;

  /// Imports an ECDSA P-256 key from a 32-byte secret scalar.
  KeyHandle import_ecdsa(PartitionId owner, util::BytesView secret32,
                         KeyPolicy policy);
  /// Generates a fresh ECDSA key from the caller's DRBG (same draw sequence
  /// as EcdsaPrivateKey::generate, so migrating a call site is bit-compatible).
  KeyHandle generate_ecdsa(PartitionId owner, Drbg& rng, KeyPolicy policy);
  /// Imports a 128-bit AES-CMAC key.
  KeyHandle import_mac(PartitionId owner, const Block& key, KeyPolicy policy);
  /// Destroys a key (PSA psa_destroy_key; provisioning-state only — field
  /// rotation replaces key material via a fresh provisioning session).
  ServiceStatus destroy(PartitionId caller, KeyHandle h);

  // --- lifecycle -------------------------------------------------------------
  /// Ends provisioning; the service refuses everything until a measurement.
  void seal();
  /// Boot chain verdict: kSealed -> kOperational (passed) / kFailedBoot.
  /// Ignored unless sealed — a service cannot be talked into unlocking twice.
  void on_measurement(bool passed);
  /// Models a reboot: back to kSealed awaiting the next measurement.
  void relock();

  // --- operations ------------------------------------------------------------
  /// ECDSA sign over a message (SHA-256 internally). Needs kUsageSign.
  ServiceStatus sign(PartitionId caller, KeyHandle h, util::BytesView msg,
                     EcdsaSignature* out) const;
  /// ECDSA sign over a precomputed digest. Needs kUsageSign.
  ServiceStatus sign_digest(PartitionId caller, KeyHandle h,
                            const Digest& digest, EcdsaSignature* out) const;
  /// AES-CMAC over a message. Needs kUsageMac.
  ServiceStatus mac(PartitionId caller, KeyHandle h, util::BytesView msg,
                    Block* out) const;
  /// Public half of an ECDSA key. Public keys are not secret: allowed in any
  /// state, any partition — only the handle must be valid.
  ServiceStatus export_public(KeyHandle h, EcdsaPublicKey* out) const;
  /// Raw secret export — the PSA_KEY_USAGE_EXPORT escape hatch that the E5
  /// key-compromise experiments rely on. Needs kUsageExport AND ownership.
  ServiceStatus export_secret(PartitionId caller, KeyHandle h,
                              util::Bytes* out) const;

  /// Non-mutating policy probe: would `usage` be allowed right now?
  ServiceStatus probe(PartitionId caller, KeyHandle h,
                      std::uint32_t usage) const;

  // --- observation -----------------------------------------------------------
  std::size_t key_count() const;
  std::uint64_t ops() const;       // successful operations
  std::uint64_t denials() const;   // denied operations (any status)
  std::uint64_t denials(ServiceStatus s) const;
  /// Deterministic export (state, partitions, op/denial counters).
  std::string to_json() const;

 private:
  // The ONLY type in the codebase that stores raw key material. Nested in
  // the private section: non-service code cannot name CryptoService::RawKey,
  // which is the compile-time isolation boundary O4 asks for.
  struct RawKey {
    enum class Algo : std::uint8_t { kEcdsaP256, kAesCmac };
    Algo algo = Algo::kEcdsaP256;
    PartitionId owner = 0;
    KeyPolicy policy;
    std::optional<EcdsaPrivateKey> ecdsa;
    Block mac_key{};
  };

  /// Locates the key and checks state + ownership + usage. Caller holds mu_.
  ServiceStatus check_locked(PartitionId caller, KeyHandle h,
                             std::uint32_t usage, const RawKey** out) const;
  KeyHandle insert_locked(RawKey k);
  void count(ServiceStatus s) const;

  mutable std::mutex mu_;
  std::string name_;
  State state_ = State::kProvisioning;
  std::vector<std::string> partitions_;  // id = index + 1
  std::map<std::uint32_t, RawKey> keys_;
  std::uint32_t next_id_ = 1;
  mutable std::uint64_t ops_ = 0;
  mutable std::map<std::uint8_t, std::uint64_t> denials_;  // status -> count
};

}  // namespace aseck::crypto
