#pragma once
// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869). Used for the TLS-like cloud
// channel, V2X key derivation, and Uptane metadata signing-key derivation in
// symmetric deployments.

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace aseck::crypto {

/// HMAC-SHA256 tag.
Digest hmac_sha256(util::BytesView key, util::BytesView msg);

/// Constant-time HMAC verification (tag may be truncated to >= 8 bytes).
bool hmac_verify(util::BytesView key, util::BytesView msg, util::BytesView tag);

/// HKDF-Extract.
Digest hkdf_extract(util::BytesView salt, util::BytesView ikm);

/// HKDF-Expand; len <= 255 * 32.
util::Bytes hkdf_expand(util::BytesView prk, util::BytesView info, std::size_t len);

/// Combined extract-then-expand.
util::Bytes hkdf(util::BytesView salt, util::BytesView ikm, util::BytesView info,
                 std::size_t len);

}  // namespace aseck::crypto
