#pragma once
// AES-128/192/256 block cipher (FIPS 197), byte-oriented software
// implementation. The S-box is derived from the GF(2^8) inversion + affine
// map at static-init time rather than transcribed, and the whole cipher is
// validated against FIPS/NIST known-answer vectors in tests.
//
// The side-channel module reuses `sbox()` and `AesKeySchedule` to model a
// leaky first round; see src/sidechannel/power_model.hpp.

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace aseck::crypto {

inline constexpr std::size_t kAesBlockSize = 16;

using Block = std::array<std::uint8_t, kAesBlockSize>;

/// Forward S-box lookup.
std::uint8_t aes_sbox(std::uint8_t x);
/// Inverse S-box lookup.
std::uint8_t aes_inv_sbox(std::uint8_t x);
/// GF(2^8) multiply with the AES polynomial x^8+x^4+x^3+x+1.
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);

/// Expanded key schedule for a fixed key.
class Aes {
 public:
  /// Key must be 16, 24 or 32 bytes.
  explicit Aes(util::BytesView key);

  int rounds() const { return rounds_; }

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

  Block encrypt(const Block& in) const;
  Block decrypt(const Block& in) const;

  /// Round keys as 16-byte blocks, index 0..rounds(). Exposed for the
  /// side-channel power model and masking countermeasure.
  const std::uint8_t* round_key(int round) const { return &rk_[round * 16]; }

 private:
  int rounds_ = 0;
  std::array<std::uint8_t, 16 * 15> rk_{};   // up to AES-256: 14 rounds + 1
  std::array<std::uint8_t, 16 * 15> drk_{};  // decryption keys (equivalent inverse)
};

// --- Block modes -----------------------------------------------------------

/// CTR keystream encryption/decryption (symmetric). `iv` is the initial
/// 16-byte counter block; the low 32 bits increment big-endian.
util::Bytes aes_ctr(const Aes& aes, const Block& iv, util::BytesView data);

/// CBC with PKCS#7 padding.
util::Bytes aes_cbc_encrypt(const Aes& aes, const Block& iv, util::BytesView plain);
/// Throws std::invalid_argument on bad padding or non-block-multiple input.
util::Bytes aes_cbc_decrypt(const Aes& aes, const Block& iv, util::BytesView cipher);

/// Single-block ECB helpers (used by SHE and the Miyaguchi–Preneel KDF).
Block aes_ecb_encrypt_block(util::BytesView key, const Block& in);

}  // namespace aseck::crypto
