#include "crypto/ecdsa.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"

namespace aseck::crypto {

namespace {

using detail::digest_to_scalar;

/// Retry budget for nonce derivation. Each candidate is zero mod n with
/// probability ~2^-256, so exhausting this means the HMAC itself is broken —
/// fail loudly rather than looping (or, as the former std::uint8_t counter
/// did, silently wrapping and re-offering the same 256 candidates forever).
constexpr std::uint32_t kMaxNonceRetries = 1024;

/// Deterministic nonce: k = nonce_candidate(d, digest, counter) retried
/// until valid. Simplified RFC 6979 construction.
U256 derive_nonce(const U256& d, const Digest& digest) {
  for (std::uint32_t counter = 0; counter < kMaxNonceRetries; ++counter) {
    const U256 k = detail::nonce_candidate(d, digest, counter);
    if (!k.is_zero()) return k;
  }
  throw std::runtime_error(
      "derive_nonce: retry budget exhausted (HMAC stream degenerate)");
}

}  // namespace

namespace detail {

U256 nonce_candidate(const U256& d, const Digest& digest,
                     std::uint32_t counter) {
  const util::Bytes key = d.to_bytes();
  util::Bytes msg(digest.begin(), digest.end());
  if (counter < 0x100) {
    // Single-byte encoding: keeps signatures byte-identical to the original
    // scheme for the (overwhelmingly common) low-retry region.
    msg.push_back(static_cast<std::uint8_t>(counter));
  } else {
    // Beyond the old std::uint8_t range, widen the encoding so candidate
    // streams never repeat (the former counter wrapped 256 -> 0 here).
    msg.push_back(0xff);
    util::append_be(msg, counter, 4);
  }
  const Digest h = hmac_sha256(key, msg);
  return mod_generic(U256::from_bytes(util::BytesView(h.data(), h.size())),
                     p256::N());
}

U256 digest_to_scalar(const Digest& d) {
  // Leftmost-bits rule; for SHA-256 and P-256 both are 256 bits, so this is
  // just a reduction mod n.
  const U256 z = U256::from_bytes(util::BytesView(d.data(), d.size()));
  return mod_generic(z, p256::N());
}

}  // namespace detail

util::Bytes EcdsaSignature::to_bytes() const {
  util::Bytes out = r.to_bytes();
  const util::Bytes sb = s.to_bytes();
  out.insert(out.end(), sb.begin(), sb.end());
  return out;
}

std::optional<EcdsaSignature> EcdsaSignature::from_bytes(util::BytesView b) {
  if (b.size() != 64) return std::nullopt;
  EcdsaSignature sig;
  sig.r = U256::from_bytes(b.subspan(0, 32));
  sig.s = U256::from_bytes(b.subspan(32, 32));
  return sig;
}

util::Bytes EcdsaPublicKey::to_bytes() const {
  util::Bytes out{0x04};
  const util::Bytes xb = point.x.to_bytes();
  const util::Bytes yb = point.y.to_bytes();
  out.insert(out.end(), xb.begin(), xb.end());
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

std::optional<EcdsaPublicKey> EcdsaPublicKey::from_bytes(util::BytesView b) {
  if (b.size() != 65 || b[0] != 0x04) return std::nullopt;
  EcdsaPublicKey pub;
  pub.point.x = U256::from_bytes(b.subspan(1, 32));
  pub.point.y = U256::from_bytes(b.subspan(33, 32));
  pub.point.infinity = false;
  if (!p256::on_curve(pub.point)) return std::nullopt;
  return pub;
}

EcdsaPrivateKey::EcdsaPrivateKey(U256 d) : d_(d) {
  pub_.point = p256::to_affine(p256::scalar_mult_base(d_));
}

EcdsaPrivateKey EcdsaPrivateKey::generate(Drbg& rng) {
  for (;;) {
    const util::Bytes raw = rng.bytes(32);
    const U256 d = mod_generic(U256::from_bytes(raw), p256::N());
    if (!d.is_zero()) return EcdsaPrivateKey(d);
  }
}

EcdsaPrivateKey EcdsaPrivateKey::from_secret(util::BytesView secret32) {
  const U256 d = mod_generic(U256::from_bytes(secret32), p256::N());
  if (d.is_zero()) {
    throw std::invalid_argument("EcdsaPrivateKey: secret reduces to zero");
  }
  return EcdsaPrivateKey(d);
}

EcdsaSignature EcdsaPrivateKey::sign(util::BytesView msg) const {
  return sign_digest(sha256(msg));
}

EcdsaSignature EcdsaPrivateKey::sign_digest(const Digest& digest) const {
  const U256& n = p256::N();
  const U256 z = digest_to_scalar(digest);
  Digest attempt_digest = digest;
  for (;;) {
    const U256 k = derive_nonce(d_, attempt_digest);
    const p256::AffinePoint R = p256::to_affine(p256::scalar_mult_base(k));
    const U256 r = mod_generic(R.x, n);
    if (r.is_zero()) {
      attempt_digest[0] ^= 0x5a;  // perturb and retry (never expected)
      continue;
    }
    const U256 kinv = inv_mod_prime(k, n);
    const U256 rd = mul_mod(r, d_, n);
    const U256 s = mul_mod(kinv, add_mod(z, rd, n), n);
    if (s.is_zero()) {
      attempt_digest[0] ^= 0xa5;
      continue;
    }
    EcdsaSignature sig{r, s};
    // Attach the 1609.2-style compressed-y hint, but only when R.x < n so r
    // names R.x unambiguously (for r in [0, p - n) the point could also have
    // had x = r + n; skipping the hint there keeps it trustworthy-or-absent).
    if (cmp(R.x, n) < 0) sig.r_parity = R.y.is_odd() ? 1 : 0;
    return sig;
  }
}

bool ecdsa_verify(const EcdsaPublicKey& pub, util::BytesView msg,
                  const EcdsaSignature& sig) {
  return ecdsa_verify_digest(pub, sha256(msg), sig);
}

namespace {

/// Shared verification skeleton; `shamir` selects the reference 1-bit
/// double-scalar path instead of the wNAF fast path.
bool verify_digest_impl(const EcdsaPublicKey& pub, const Digest& digest,
                        const EcdsaSignature& sig, bool shamir) {
  const U256& n = p256::N();
  if (sig.r.is_zero() || sig.s.is_zero()) return false;
  if (cmp(sig.r, n) >= 0 || cmp(sig.s, n) >= 0) return false;
  if (!pub.valid()) return false;
  const U256 z = digest_to_scalar(digest);
  const U256 w = inv_mod_prime(sig.s, n);
  const U256 u1 = mul_mod(z, w, n);
  const U256 u2 = mul_mod(sig.r, w, n);
  if (shamir) {
    // Reference path: full affine conversion, x reduced mod n (the seed's
    // exact final step).
    const p256::JacobianPoint X =
        p256::double_scalar_mult_shamir(u1, u2, pub.point);
    if (X.is_infinity()) return false;
    const p256::AffinePoint Xa = p256::to_affine(X);
    return mod_generic(Xa.x, n) == sig.r;
  }
  // Fast path: compare in Jacobian coordinates, skipping the inversion.
  return p256::x_equals_mod_n(p256::double_scalar_mult(u1, u2, pub.point),
                              sig.r);
}

}  // namespace

bool ecdsa_verify_digest(const EcdsaPublicKey& pub, const Digest& digest,
                         const EcdsaSignature& sig) {
  return verify_digest_impl(pub, digest, sig, /*shamir=*/false);
}

bool ecdsa_verify_digest_slow(const EcdsaPublicKey& pub, const Digest& digest,
                              const EcdsaSignature& sig) {
  return verify_digest_impl(pub, digest, sig, /*shamir=*/true);
}

std::optional<util::Bytes> ecdh_shared(const EcdsaPrivateKey& mine,
                                       const EcdsaPublicKey& peer,
                                       util::BytesView info, std::size_t len) {
  if (!peer.valid()) return std::nullopt;
  const p256::JacobianPoint s = p256::scalar_mult(mine.scalar(), peer.point);
  if (s.is_infinity()) return std::nullopt;
  const p256::AffinePoint sa = p256::to_affine(s);
  const util::Bytes x = sa.x.to_bytes();
  return hkdf(util::Bytes{}, x, info, len);
}

}  // namespace aseck::crypto
