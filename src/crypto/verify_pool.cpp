#include "crypto/verify_pool.hpp"

#include <algorithm>

namespace aseck::crypto {

VerifyPool::VerifyPool(VerifyPoolConfig cfg)
    : cfg_(cfg),
      queue_(cfg.producers),
      pool_(cfg.threads == 0 ? 1 : cfg.threads) {
  if (cfg_.lanes == 0) cfg_.lanes = 1;
  if (cfg_.batch_size == 0) cfg_.batch_size = 1;
  lanes_.reserve(cfg_.lanes);
  for (std::size_t l = 0; l < cfg_.lanes; ++l) {
    auto lane = std::make_unique<Lane>();
    lane->engine.set_cache_capacity(cfg_.cache_capacity);
    lane->engine.set_batch_kernel(cfg_.batch_kernel);
    lane->engine.set_batch_salt(cfg_.salt);
    lane->engine.bind_metrics(lane->metrics);
    lanes_.push_back(std::move(lane));
  }
}

std::vector<VerifyOutcome> VerifyPool::flush() {
  const std::vector<VerifyJob> jobs = queue_.drain();
  ++flushes_;
  jobs_ += jobs.size();

  std::vector<char> verdicts(jobs.size(), 0);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Lane& lane = *lanes_[lane_of(jobs[i], lanes_.size())];
    lane.slots.push_back(i);
    lane.items.push_back({jobs[i].pub, jobs[i].digest, jobs[i].sig});
  }

  // Each lane is touched by exactly one parallel_for index, and lanes only
  // write disjoint verdict slots — no cross-lane state, so the thread-to-
  // lane assignment can never affect results.
  pool_.parallel_for(lanes_.size(), [&](std::size_t l) {
    Lane& lane = *lanes_[l];
    for (std::size_t off = 0; off < lane.items.size();
         off += cfg_.batch_size) {
      const std::size_t end =
          std::min(off + cfg_.batch_size, lane.items.size());
      const std::vector<VerifyEngine::BatchItem> chunk(
          lane.items.begin() + static_cast<std::ptrdiff_t>(off),
          lane.items.begin() + static_cast<std::ptrdiff_t>(end));
      const std::vector<bool> ok = lane.engine.verify_batch(chunk);
      for (std::size_t k = 0; k < ok.size(); ++k) {
        verdicts[lane.slots[off + k]] = ok[k] ? 1 : 0;
      }
    }
    lane.slots.clear();
    lane.items.clear();
  });

  std::vector<VerifyOutcome> out;
  out.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.push_back({jobs[i].tag, verdicts[i] != 0});
  }
  return out;
}

void VerifyPool::merge_metrics_into(sim::MetricsRegistry& out) const {
  for (const auto& lane : lanes_) out.merge_from(lane->metrics);
  sim::Counter& f = out.counter("crypto.pool.flushes");
  if (flushes_ > f.value()) f.inc(flushes_ - f.value());
  sim::Counter& j = out.counter("crypto.pool.jobs");
  if (jobs_ > j.value()) j.inc(jobs_ - j.value());
}

std::string VerifyPool::metrics_json() const {
  sim::MetricsRegistry merged;
  merge_metrics_into(merged);
  return merged.to_json();
}

}  // namespace aseck::crypto
