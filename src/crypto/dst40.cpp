#include "crypto/dst40.hpp"

namespace aseck::crypto {

namespace {
/// 20-bit round function: key-dependent nonlinear mix. Chosen for decent
/// diffusion in a handful of rounds; NOT the proprietary DST40 f-box.
std::uint32_t round_f(std::uint32_t half20, std::uint32_t subkey20) {
  std::uint32_t x = (half20 ^ subkey20) & 0xfffff;
  x = (x * 0x9e37u + 0x79b9u) & 0xfffff;
  x ^= x >> 7;
  x = (x * 0x85ebu + 0xca6bu) & 0xfffff;
  x ^= x >> 11;
  return x & 0xfffff;
}
}  // namespace

Dst40::Dst40(std::uint64_t key40) : key_(key40 & kKeyMask) {}

std::uint32_t Dst40::respond(std::uint64_t challenge40) const {
  challenge40 &= kChallengeMask;
  std::uint32_t left = static_cast<std::uint32_t>(challenge40 >> 20) & 0xfffff;
  std::uint32_t right = static_cast<std::uint32_t>(challenge40) & 0xfffff;
  // 8 Feistel rounds with rotating 20-bit subkeys derived from the 40-bit key.
  for (int r = 0; r < 8; ++r) {
    const std::uint32_t subkey = static_cast<std::uint32_t>(
        (key_ >> ((r * 5) % 40)) ^ (key_ << ((40 - (r * 5) % 40) % 40))) &
        0xfffff;
    const std::uint32_t tmp = right;
    right = (left ^ round_f(right, subkey ^ static_cast<std::uint32_t>(r * 0x11111))) & 0xfffff;
    left = tmp;
  }
  // 24-bit response: mix the two halves down.
  const std::uint32_t mixed = ((left << 4) ^ right ^ (left >> 9)) & kResponseMask;
  return mixed;
}

}  // namespace aseck::crypto
