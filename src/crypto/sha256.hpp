#pragma once
// SHA-256 (FIPS 180-4), incremental API plus one-shot helper. Used for OTA
// image digests, Uptane metadata hashing, certificate digests, and HMAC.

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace aseck::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(util::BytesView data);
  /// Finalizes and returns the digest; the object must be reset() before
  /// further use.
  Digest finalize();

 private:
  void process_block(const std::uint8_t* p);

  std::array<std::uint32_t, 8> h_{};
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot digest.
Digest sha256(util::BytesView data);
/// Digest as Bytes (convenience for serialization).
util::Bytes sha256_bytes(util::BytesView data);

}  // namespace aseck::crypto
