#pragma once
// AES-CMAC (RFC 4493 / NIST SP 800-38B). This is the MAC mandated by the
// SHE specification and used by AUTOSAR SecOC; truncation to t bytes is a
// first-class operation because SecOC transmits truncated MACs.

#include "crypto/aes.hpp"
#include "util/bytes.hpp"

namespace aseck::crypto {

class Cmac {
 public:
  explicit Cmac(util::BytesView key);

  /// Full 16-byte tag.
  Block tag(util::BytesView msg) const;

  /// Truncated tag (most-significant `len` bytes, 1..16).
  util::Bytes tag_truncated(util::BytesView msg, std::size_t len) const;

  /// Constant-time verification of a (possibly truncated) tag.
  bool verify(util::BytesView msg, util::BytesView expected_tag) const;

 private:
  Aes aes_;
  Block k1_{};
  Block k2_{};
};

/// One-shot helper.
Block aes_cmac(util::BytesView key, util::BytesView msg);

}  // namespace aseck::crypto
