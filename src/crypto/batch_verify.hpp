#pragma once
// True batch ECDSA-P256 verification (ROADMAP O2).
//
// The per-signature verification equation, multiplied through by s to avoid
// the per-item modular inversion of s, is
//
//     s_i * R_i  ==  z_i * G  +  r_i * Q_i
//
// where R_i is the signer's nonce point. A batch of N signatures is checked
// with ONE random-linear-combination (RLC) evaluation:
//
//     (sum_i a_i * z_i) * G  +  sum_i (a_i * r_i) * Q_i
//                            +  sum_i (a_i * s_i) * (-R_i)  ==  O
//
// with per-item 64-bit coefficients a_i. All 2N+1 scalar terms share one
// 256-step doubling chain (p256::multi_scalar_mult) and one Montgomery batch
// inversion for the precomputed tables — that amortization is the whole
// speedup. A failing check bisects: each half is re-checked recursively, and
// singleton leaves fall back to the standard per-item ecdsa_verify_digest,
// so per-item verdicts always match the sequential verifier bit-for-bit.
//
// R_i is recovered from (r_i, r_parity hint) by curve-point decompression;
// signatures without a usable hint (wire round trips strip it) are verified
// per-item — a perf cost, never a correctness one. A tampered hint
// decompresses to the wrong point, fails the RLC, and the leaf fallback
// still returns the true verdict.
//
// Determinism: the a_i are derived from a SHA-256 transcript of the batch
// contents plus a caller salt, so identical batches give identical work —
// the repo-wide bit-reproducibility contract. The flip side is that an
// adversary who can predict the transcript could in principle craft
// cancelling invalid pairs; callers holding long-lived engines can fold
// run-unique entropy into `salt` when that matters (the simulations prefer
// reproducibility).

#include <cstdint>
#include <vector>

#include "crypto/ecdsa.hpp"

namespace aseck::crypto {

struct BatchVerifyItem {
  const EcdsaPublicKey* pub = nullptr;
  Digest digest{};
  const EcdsaSignature* sig = nullptr;
};

/// Work accounting for benches/metrics (not part of the verdict).
struct BatchVerifyStats {
  std::uint64_t items = 0;          // total items seen
  std::uint64_t rlc_checks = 0;     // random-linear-combination evaluations
  std::uint64_t rlc_items = 0;      // items covered by those evaluations
  std::uint64_t bisections = 0;     // failed checks split in half
  std::uint64_t single_checks = 0;  // per-item fallback verifications
};

/// Verifies every item, returning per-item verdicts in order. Bit-identical
/// to calling ecdsa_verify_digest per item (differentially tested against
/// ecdsa_verify_digest_slow). Null pub/sig verdicts are false.
std::vector<bool> ecdsa_verify_batch(const std::vector<BatchVerifyItem>& items,
                                     util::BytesView salt = {},
                                     BatchVerifyStats* stats = nullptr);

}  // namespace aseck::crypto
