#include "crypto/batch_verify.hpp"

#include "crypto/sha256.hpp"

namespace aseck::crypto {

namespace {

/// One batch-eligible signature with its precomputed scalars and the
/// decompressed (negated) nonce point.
struct Prepared {
  std::size_t index;         // slot in the caller's item/verdict vectors
  U256 z;                    // digest scalar mod n
  U256 a;                    // RLC randomizer (64-bit, nonzero)
  Digest digest;             // kept for the singleton-leaf fallback
  const EcdsaPublicKey* pub;
  const EcdsaSignature* sig;
  p256::AffinePoint neg_r;   // -R_i
};

/// a_i = H(transcript || i), truncated to 64 bits and forced nonzero. The
/// transcript commits to the whole batch (and the caller salt), so the
/// coefficients are fixed before any of them is used.
U256 randomizer(const Digest& transcript, std::uint64_t i) {
  Sha256 h;
  h.update(util::BytesView(transcript.data(), transcript.size()));
  util::Bytes idx;
  util::append_be(idx, i, 8);
  h.update(idx);
  const Digest d = h.finalize();
  std::uint64_t a = util::load_be64(d.data());
  if (a == 0) a = 1;
  return U256::from_u64(a);
}

/// Evaluates the combined RLC equation over `group`; true iff it sums to O.
bool rlc_check(const Prepared* group, std::size_t m, BatchVerifyStats& stats) {
  const U256& n = p256::N();
  U256 g_coeff{};  // sum a_i * z_i mod n
  std::vector<p256::MultiScalarTerm> terms;
  terms.reserve(2 * m);
  for (std::size_t i = 0; i < m; ++i) {
    const Prepared& p = group[i];
    g_coeff = add_mod(g_coeff, mul_mod(p.a, p.z, n), n);
    terms.push_back({mul_mod(p.a, p.sig->r, n), p.pub->point});
    terms.push_back({mul_mod(p.a, p.sig->s, n), p.neg_r});
  }
  ++stats.rlc_checks;
  stats.rlc_items += m;
  return p256::multi_scalar_mult(g_coeff, terms).is_infinity();
}

/// Bisection: a passing RLC accepts the whole group; a failing one splits.
/// Singleton leaves use the standard verifier — a single-item RLC failure is
/// not conclusive (the hint, not the signature, may be what is wrong).
void resolve(const Prepared* group, std::size_t m, std::vector<bool>& out,
             BatchVerifyStats& stats) {
  if (m == 0) return;
  if (m == 1) {
    ++stats.single_checks;
    out[group[0].index] =
        ecdsa_verify_digest(*group[0].pub, group[0].digest, *group[0].sig);
    return;
  }
  if (rlc_check(group, m, stats)) {
    for (std::size_t i = 0; i < m; ++i) out[group[i].index] = true;
    return;
  }
  ++stats.bisections;
  resolve(group, m / 2, out, stats);
  resolve(group + m / 2, m - m / 2, out, stats);
}

}  // namespace

std::vector<bool> ecdsa_verify_batch(const std::vector<BatchVerifyItem>& items,
                                     util::BytesView salt,
                                     BatchVerifyStats* stats) {
  BatchVerifyStats local;
  BatchVerifyStats& st = stats ? *stats : local;
  st.items += items.size();

  std::vector<bool> out(items.size(), false);
  const U256& n = p256::N();

  // Pre-pass: range/curve checks (the same rejects the per-item verifier
  // applies first), hint-based R recovery, and the batch transcript.
  std::vector<Prepared> prepared;
  std::vector<std::size_t> fallback;  // no usable hint: verify per-item
  prepared.reserve(items.size());
  Sha256 th;
  th.update(salt);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchVerifyItem& it = items[i];
    if (!it.pub || !it.sig) continue;  // verdict stays false
    th.update(it.sig->to_bytes());
    th.update(util::BytesView(it.digest.data(), it.digest.size()));
    th.update(it.pub->to_bytes());
    if (it.sig->r.is_zero() || it.sig->s.is_zero()) continue;
    if (cmp(it.sig->r, n) >= 0 || cmp(it.sig->s, n) >= 0) continue;
    if (!it.pub->valid()) continue;
    if (!it.sig->has_r_parity()) {
      fallback.push_back(i);
      continue;
    }
    // Hint contract: parity present => R.x == r (signers only hint when
    // R.x < n). Decompression failure means the hint is wrong — r could
    // still name x = r + n — so fall back rather than reject.
    const auto R = p256::decompress(it.sig->r, it.sig->r_parity == 1);
    if (!R) {
      fallback.push_back(i);
      continue;
    }
    U256 neg_y;
    sub(neg_y, p256::P(), R->y);  // no borrow: 0 < y < p
    Prepared p;
    p.index = i;
    p.z = detail::digest_to_scalar(it.digest);
    p.digest = it.digest;
    p.pub = it.pub;
    p.sig = it.sig;
    p.neg_r = p256::AffinePoint{R->x, neg_y, false};
    prepared.push_back(p);
  }

  const Digest transcript = th.finalize();
  for (std::size_t k = 0; k < prepared.size(); ++k) {
    prepared[k].a = randomizer(transcript, k);
  }

  resolve(prepared.data(), prepared.size(), out, st);
  for (const std::size_t i : fallback) {
    ++st.single_checks;
    out[i] = ecdsa_verify_digest(*items[i].pub, items[i].digest,
                                 *items[i].sig);
  }
  return out;
}

}  // namespace aseck::crypto
