#include "crypto/p256.hpp"

namespace aseck::crypto::p256 {

namespace {

const U256 kP = U256::from_hex(
    "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
const U256 kN = U256::from_hex(
    "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
const U256 kB = U256::from_hex(
    "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
const U256 kGx = U256::from_hex(
    "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
const U256 kGy = U256::from_hex(
    "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");

}  // namespace

const U256& P() { return kP; }
const U256& N() { return kN; }
const U256& B() { return kB; }
const U256& Gx() { return kGx; }
const U256& Gy() { return kGy; }

U256 reduce_p(const U512& x) {
  const auto& c = x.w;
  // NIST fast reduction for p256 (Hankerson-Menezes-Vanstone Alg. 2.29):
  // r = T + 2*S1 + 2*S2 + S3 + S4 - D1 - D2 - D3 - D4 mod p, with the
  // 32-bit word selections below (index 0 = least significant word).
  std::int64_t acc[8];
  auto set = [&](int i, std::int64_t v) { acc[i] = v; };
  set(0, (std::int64_t)c[0] + c[8] + c[9] - c[11] - c[12] - c[13] - c[14]);
  set(1, (std::int64_t)c[1] + c[9] + c[10] - c[12] - c[13] - c[14] - c[15]);
  set(2, (std::int64_t)c[2] + c[10] + c[11] - c[13] - c[14] - c[15]);
  set(3, (std::int64_t)c[3] + 2 * (std::int64_t)c[11] + 2 * (std::int64_t)c[12] +
             c[13] - c[15] - c[8] - c[9]);
  set(4, (std::int64_t)c[4] + 2 * (std::int64_t)c[12] + 2 * (std::int64_t)c[13] +
             c[14] - c[9] - c[10]);
  set(5, (std::int64_t)c[5] + 2 * (std::int64_t)c[13] + 2 * (std::int64_t)c[14] +
             c[15] - c[10] - c[11]);
  set(6, (std::int64_t)c[6] + 2 * (std::int64_t)c[14] + 2 * (std::int64_t)c[15] +
             c[14] + c[13] - c[8] - c[9]);
  set(7, (std::int64_t)c[7] + 2 * (std::int64_t)c[15] + c[15] + c[8] - c[10] -
             c[11] - c[12] - c[13]);

  // Carry-propagate the signed accumulators into a U256 plus signed overflow.
  U256 r;
  std::int64_t carry = 0;
  for (int i = 0; i < 8; ++i) {
    const std::int64_t t = acc[i] + carry;
    r.w[static_cast<std::size_t>(i)] =
        static_cast<std::uint32_t>(t & 0xffffffffLL);
    carry = t >> 32;  // arithmetic shift: floor division by 2^32
  }
  // Fold the +/- carry*2^256 term: 2^256 mod p == 2^256 - p.
  while (carry < 0) {
    carry += static_cast<std::int64_t>(add(r, r, kP));
  }
  while (carry > 0) {
    U256 t;
    const std::uint32_t borrow = sub(t, r, kP);
    r = t;
    carry -= static_cast<std::int64_t>(borrow);
  }
  while (cmp(r, kP) >= 0) {
    U256 t;
    sub(t, r, kP);
    r = t;
  }
  return r;
}

namespace {
std::uint64_t g_fieldops = 0;
}  // namespace

void reset_fieldop_count() { g_fieldops = 0; }
std::uint64_t fieldop_count() { return g_fieldops; }

U256 fadd(const U256& a, const U256& b) { return add_mod(a, b, kP); }
U256 fsub(const U256& a, const U256& b) { return sub_mod(a, b, kP); }
U256 fmul(const U256& a, const U256& b) {
  ++g_fieldops;
  return reduce_p(mul(a, b));
}
U256 fsqr(const U256& a) { return fmul(a, a); }
U256 finv(const U256& a) { return inv_mod_prime(a, kP); }

JacobianPoint JacobianPoint::from_affine(const AffinePoint& p) {
  if (p.infinity) return make_infinity();
  return JacobianPoint{p.x, p.y, U256::one()};
}

AffinePoint to_affine(const JacobianPoint& p) {
  if (p.is_infinity()) return AffinePoint::make_infinity();
  const U256 zinv = finv(p.z);
  const U256 zinv2 = fsqr(zinv);
  const U256 zinv3 = fmul(zinv2, zinv);
  return AffinePoint{fmul(p.x, zinv2), fmul(p.y, zinv3), false};
}

JacobianPoint dbl(const JacobianPoint& p) {
  if (p.is_infinity() || p.y.is_zero()) return JacobianPoint::make_infinity();
  // dbl-2001-b (a = -3):
  const U256 delta = fsqr(p.z);
  const U256 gamma = fsqr(p.y);
  const U256 beta = fmul(p.x, gamma);
  const U256 alpha =
      fmul(fadd(fadd(fsub(p.x, delta), fsub(p.x, delta)), fsub(p.x, delta)),
           fadd(p.x, delta));  // 3*(x-delta)*(x+delta)
  const U256 beta4 = fadd(fadd(beta, beta), fadd(beta, beta));
  const U256 beta8 = fadd(beta4, beta4);
  JacobianPoint r;
  r.x = fsub(fsqr(alpha), beta8);
  r.z = fsub(fsub(fsqr(fadd(p.y, p.z)), gamma), delta);
  const U256 gamma2 = fsqr(gamma);
  const U256 gamma2_8 =
      fadd(fadd(fadd(gamma2, gamma2), fadd(gamma2, gamma2)),
           fadd(fadd(gamma2, gamma2), fadd(gamma2, gamma2)));
  r.y = fsub(fmul(alpha, fsub(beta4, r.x)), gamma2_8);
  return r;
}

JacobianPoint add_mixed(const JacobianPoint& p, const AffinePoint& q) {
  if (q.infinity) return p;
  if (p.is_infinity()) return JacobianPoint::from_affine(q);
  const U256 z1z1 = fsqr(p.z);
  const U256 u2 = fmul(q.x, z1z1);
  const U256 s2 = fmul(fmul(q.y, p.z), z1z1);
  const U256 h = fsub(u2, p.x);
  const U256 r_ = fsub(s2, p.y);
  if (h.is_zero()) {
    if (r_.is_zero()) return dbl(p);
    return JacobianPoint::make_infinity();
  }
  const U256 h2 = fsqr(h);
  const U256 h3 = fmul(h2, h);
  const U256 x1h2 = fmul(p.x, h2);
  JacobianPoint out;
  out.x = fsub(fsub(fsqr(r_), h3), fadd(x1h2, x1h2));
  out.y = fsub(fmul(r_, fsub(x1h2, out.x)), fmul(p.y, h3));
  out.z = fmul(p.z, h);
  return out;
}

JacobianPoint add(const JacobianPoint& p, const JacobianPoint& q) {
  if (p.is_infinity()) return q;
  if (q.is_infinity()) return p;
  return add_mixed(p, to_affine(q));
}

JacobianPoint scalar_mult(const U256& k, const AffinePoint& p) {
  JacobianPoint r = JacobianPoint::make_infinity();
  const int top = k.top_bit();
  for (int i = top; i >= 0; --i) {
    r = dbl(r);
    if (k.bit(static_cast<unsigned>(i))) r = add_mixed(r, p);
  }
  return r;
}

JacobianPoint scalar_mult_ladder(const U256& k, const AffinePoint& p,
                                 unsigned bits) {
  // Classic X-then-add ladder over (R0, R1) with R1 - R0 = P invariant.
  // Every iteration performs exactly one dbl and one add regardless of the
  // key bit, so the op count (and thus time in a software model) is
  // independent of k. Note: the *selection* below is still data-dependent
  // branching at the C++ level; real hardened code uses constant-time swaps.
  JacobianPoint r0 = JacobianPoint::make_infinity();
  JacobianPoint r1 = JacobianPoint::from_affine(p);
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    const bool bit = k.bit(static_cast<unsigned>(i));
    if (bit) {
      r0 = add(r0, r1);
      r1 = dbl(r1);
    } else {
      r1 = add(r0, r1);
      r0 = dbl(r0);
    }
  }
  return r0;
}

JacobianPoint scalar_mult_base(const U256& k) {
  return scalar_mult(k, generator());
}

JacobianPoint double_scalar_mult(const U256& u1, const U256& u2,
                                 const AffinePoint& q) {
  // Shamir's trick: interleaved double-and-add with precomputed G+Q.
  const AffinePoint g = generator();
  const JacobianPoint gq_j = add_mixed(JacobianPoint::from_affine(g), q);
  const AffinePoint gq = to_affine(gq_j);
  JacobianPoint r = JacobianPoint::make_infinity();
  const int top = std::max(u1.top_bit(), u2.top_bit());
  for (int i = top; i >= 0; --i) {
    r = dbl(r);
    const bool b1 = i >= 0 && u1.bit(static_cast<unsigned>(i));
    const bool b2 = i >= 0 && u2.bit(static_cast<unsigned>(i));
    if (b1 && b2) {
      r = gq_j.is_infinity() ? r : add_mixed(r, gq);
    } else if (b1) {
      r = add_mixed(r, g);
    } else if (b2) {
      r = add_mixed(r, q);
    }
  }
  return r;
}

bool on_curve(const AffinePoint& p) {
  if (p.infinity) return false;
  if (cmp(p.x, kP) >= 0 || cmp(p.y, kP) >= 0) return false;
  // y^2 == x^3 - 3x + b
  const U256 lhs = fsqr(p.y);
  const U256 x3 = fmul(fsqr(p.x), p.x);
  const U256 three_x = fadd(fadd(p.x, p.x), p.x);
  const U256 rhs = fadd(fsub(x3, three_x), kB);
  return lhs == rhs;
}

AffinePoint generator() { return AffinePoint{kGx, kGy, false}; }

}  // namespace aseck::crypto::p256
