#include "crypto/p256.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace aseck::crypto::p256 {

namespace {

const U256 kP = U256::from_hex(
    "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
const U256 kN = U256::from_hex(
    "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
const U256 kB = U256::from_hex(
    "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
const U256 kGx = U256::from_hex(
    "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
const U256 kGy = U256::from_hex(
    "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");

}  // namespace

const U256& P() { return kP; }
const U256& N() { return kN; }
const U256& B() { return kB; }
const U256& Gx() { return kGx; }
const U256& Gy() { return kGy; }

namespace {

/// NIST fast-reduction core over the 16 32-bit words of a 512-bit product;
/// shared by reduce_p (U512 API) and the fused multiply/square paths below.
U256 reduce_words(const std::uint32_t* c) {
  // NIST fast reduction for p256 (Hankerson-Menezes-Vanstone Alg. 2.29):
  // r = T + 2*S1 + 2*S2 + S3 + S4 - D1 - D2 - D3 - D4 mod p, with the
  // 32-bit word selections below (index 0 = least significant word).
  std::int64_t acc[8];
  auto set = [&](int i, std::int64_t v) { acc[i] = v; };
  set(0, (std::int64_t)c[0] + c[8] + c[9] - c[11] - c[12] - c[13] - c[14]);
  set(1, (std::int64_t)c[1] + c[9] + c[10] - c[12] - c[13] - c[14] - c[15]);
  set(2, (std::int64_t)c[2] + c[10] + c[11] - c[13] - c[14] - c[15]);
  set(3, (std::int64_t)c[3] + 2 * (std::int64_t)c[11] + 2 * (std::int64_t)c[12] +
             c[13] - c[15] - c[8] - c[9]);
  set(4, (std::int64_t)c[4] + 2 * (std::int64_t)c[12] + 2 * (std::int64_t)c[13] +
             c[14] - c[9] - c[10]);
  set(5, (std::int64_t)c[5] + 2 * (std::int64_t)c[13] + 2 * (std::int64_t)c[14] +
             c[15] - c[10] - c[11]);
  set(6, (std::int64_t)c[6] + 2 * (std::int64_t)c[14] + 2 * (std::int64_t)c[15] +
             c[14] + c[13] - c[8] - c[9]);
  set(7, (std::int64_t)c[7] + 2 * (std::int64_t)c[15] + c[15] + c[8] - c[10] -
             c[11] - c[12] - c[13]);

  // Carry-propagate the signed accumulators into a U256 plus signed overflow.
  U256 r;
  std::int64_t carry = 0;
  for (int i = 0; i < 8; ++i) {
    const std::int64_t t = acc[i] + carry;
    r.w[static_cast<std::size_t>(i)] =
        static_cast<std::uint32_t>(t & 0xffffffffLL);
    carry = t >> 32;  // arithmetic shift: floor division by 2^32
  }
  // Fold the +/- carry*2^256 term: 2^256 mod p == 2^256 - p.
  while (carry < 0) {
    carry += static_cast<std::int64_t>(add(r, r, kP));
  }
  while (carry > 0) {
    U256 t;
    const std::uint32_t borrow = sub(t, r, kP);
    r = t;
    carry -= static_cast<std::int64_t>(borrow);
  }
  while (cmp(r, kP) >= 0) {
    U256 t;
    sub(t, r, kP);
    r = t;
  }
  return r;
}

/// Repacks a U256 into four 64-bit limbs (little-endian).
inline void load_limbs(std::uint64_t out[4], const U256& a) {
  for (std::size_t i = 0; i < 4; ++i) {
    out[i] = std::uint64_t{a.w[2 * i]} | (std::uint64_t{a.w[2 * i + 1]} << 32);
  }
}

/// Reduces an 8-limb (64-bit) product without the U512 round trip.
inline U256 reduce_limbs(const std::uint64_t rl[8]) {
  std::uint32_t c[16];
  for (std::size_t i = 0; i < 8; ++i) {
    c[2 * i] = static_cast<std::uint32_t>(rl[i]);
    c[2 * i + 1] = static_cast<std::uint32_t>(rl[i] >> 32);
  }
  return reduce_words(c);
}

std::uint64_t g_fieldops = 0;

}  // namespace

U256 reduce_p(const U512& x) { return reduce_words(x.w.data()); }

void reset_fieldop_count() { g_fieldops = 0; }
std::uint64_t fieldop_count() { return g_fieldops; }

U256 fadd(const U256& a, const U256& b) { return add_mod(a, b, kP); }
U256 fsub(const U256& a, const U256& b) { return sub_mod(a, b, kP); }

U256 fmul(const U256& a, const U256& b) {
  ++g_fieldops;
  // Fused schoolbook multiply (4x4 64-bit limbs, 16 wide products) + NIST
  // reduction, keeping the whole product in registers.
  std::uint64_t al[4], bl[4], rl[8] = {};
  load_limbs(al, a);
  load_limbs(bl, b);
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const __uint128_t t =
          static_cast<__uint128_t>(al[i]) * bl[j] + rl[i + j] + carry;
      rl[i + j] = static_cast<std::uint64_t>(t);
      carry = static_cast<std::uint64_t>(t >> 64);
    }
    rl[i + 4] = carry;
  }
  return reduce_limbs(rl);
}

U256 fsqr(const U256& a) {
  ++g_fieldops;
  // Dedicated squaring: the 6 cross products a_i*a_j (i < j) are computed
  // once and doubled, so only 10 wide multiplies instead of fmul's 16.
  std::uint64_t al[4], rl[8] = {};
  load_limbs(al, a);
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = i + 1; j < 4; ++j) {
      const __uint128_t t =
          static_cast<__uint128_t>(al[i]) * al[j] + rl[i + j] + carry;
      rl[i + j] = static_cast<std::uint64_t>(t);
      carry = static_cast<std::uint64_t>(t >> 64);
    }
    if (i < 3) rl[i + 4] = carry;
  }
  // Double the cross-term sum. It is at most the full square, so the shift
  // cannot carry out of limb 7.
  std::uint64_t carry = 0;
  for (std::size_t k = 1; k < 8; ++k) {
    const std::uint64_t hi = rl[k] >> 63;
    rl[k] = (rl[k] << 1) | carry;
    carry = hi;
  }
  // Add the diagonal squares a_i^2 at limb offset 2i.
  std::uint64_t c2 = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const __uint128_t s = static_cast<__uint128_t>(al[i]) * al[i];
    __uint128_t t = static_cast<__uint128_t>(rl[2 * i]) +
                    static_cast<std::uint64_t>(s) + c2;
    rl[2 * i] = static_cast<std::uint64_t>(t);
    c2 = static_cast<std::uint64_t>(t >> 64);
    t = static_cast<__uint128_t>(rl[2 * i + 1]) +
        static_cast<std::uint64_t>(s >> 64) + c2;
    rl[2 * i + 1] = static_cast<std::uint64_t>(t);
    c2 = static_cast<std::uint64_t>(t >> 64);
  }
  return reduce_limbs(rl);
}

U256 finv(const U256& a) { return inv_mod_prime(a, kP); }

JacobianPoint JacobianPoint::from_affine(const AffinePoint& p) {
  if (p.infinity) return make_infinity();
  return JacobianPoint{p.x, p.y, U256::one()};
}

AffinePoint to_affine(const JacobianPoint& p) {
  if (p.is_infinity()) return AffinePoint::make_infinity();
  const U256 zinv = finv(p.z);
  const U256 zinv2 = fsqr(zinv);
  const U256 zinv3 = fmul(zinv2, zinv);
  return AffinePoint{fmul(p.x, zinv2), fmul(p.y, zinv3), false};
}

bool x_equals_mod_n(const JacobianPoint& pt, const U256& r) {
  if (pt.is_infinity()) return false;
  // x = X / Z^2, so x == r  <=>  X == r * Z^2 (mod p), with no inversion.
  const U256 z2 = fsqr(pt.z);
  if (fmul(r, z2) == pt.x) return true;
  // p < 2n, so x = r + n is the only other field element with x mod n == r,
  // and only when it is actually < p, i.e. r < p - n.
  U256 p_minus_n;
  sub(p_minus_n, kP, kN);
  if (cmp(r, p_minus_n) < 0) {
    U256 rn;
    add(rn, r, kN);  // no carry: r + n < p < 2^256
    return fmul(rn, z2) == pt.x;
  }
  return false;
}

std::vector<AffinePoint> batch_to_affine(const std::vector<JacobianPoint>& in) {
  std::vector<AffinePoint> out(in.size(), AffinePoint::make_infinity());
  // prefix[k] = product of the z's of the first k finite points; a z == 0
  // (infinity) entry must never enter the chain or the whole batch degrades
  // to garbage after the single inversion.
  std::vector<U256> prefix;
  prefix.reserve(in.size());
  U256 acc = U256::one();
  for (const JacobianPoint& p : in) {
    if (p.is_infinity()) continue;
    prefix.push_back(acc);
    acc = fmul(acc, p.z);
  }
  if (prefix.empty()) return out;
  U256 inv = finv(acc);  // 1 / (z_1 * ... * z_m)
  std::size_t k = prefix.size();
  for (std::size_t i = in.size(); i-- > 0;) {
    const JacobianPoint& p = in[i];
    if (p.is_infinity()) continue;
    --k;
    const U256 zinv = fmul(inv, prefix[k]);
    inv = fmul(inv, p.z);
    const U256 zinv2 = fsqr(zinv);
    out[i] = AffinePoint{fmul(p.x, zinv2), fmul(p.y, fmul(zinv2, zinv)), false};
  }
  return out;
}

JacobianPoint dbl(const JacobianPoint& p) {
  if (p.is_infinity() || p.y.is_zero()) return JacobianPoint::make_infinity();
  // dbl-2001-b (a = -3):
  const U256 delta = fsqr(p.z);
  const U256 gamma = fsqr(p.y);
  const U256 beta = fmul(p.x, gamma);
  const U256 xmd = fsub(p.x, delta);
  const U256 alpha =
      fmul(fadd(fadd(xmd, xmd), xmd), fadd(p.x, delta));  // 3(x-d)(x+d)
  const U256 beta2 = fadd(beta, beta);
  const U256 beta4 = fadd(beta2, beta2);
  const U256 beta8 = fadd(beta4, beta4);
  JacobianPoint r;
  r.x = fsub(fsqr(alpha), beta8);
  r.z = fsub(fsub(fsqr(fadd(p.y, p.z)), gamma), delta);
  const U256 gamma2 = fsqr(gamma);
  const U256 gamma2_2 = fadd(gamma2, gamma2);
  const U256 gamma2_4 = fadd(gamma2_2, gamma2_2);
  const U256 gamma2_8 = fadd(gamma2_4, gamma2_4);
  r.y = fsub(fmul(alpha, fsub(beta4, r.x)), gamma2_8);
  return r;
}

JacobianPoint add_mixed(const JacobianPoint& p, const AffinePoint& q) {
  if (q.infinity) return p;
  if (p.is_infinity()) return JacobianPoint::from_affine(q);
  const U256 z1z1 = fsqr(p.z);
  const U256 u2 = fmul(q.x, z1z1);
  const U256 s2 = fmul(fmul(q.y, p.z), z1z1);
  const U256 h = fsub(u2, p.x);
  const U256 r_ = fsub(s2, p.y);
  if (h.is_zero()) {
    if (r_.is_zero()) return dbl(p);
    return JacobianPoint::make_infinity();
  }
  const U256 h2 = fsqr(h);
  const U256 h3 = fmul(h2, h);
  const U256 x1h2 = fmul(p.x, h2);
  JacobianPoint out;
  out.x = fsub(fsub(fsqr(r_), h3), fadd(x1h2, x1h2));
  out.y = fsub(fmul(r_, fsub(x1h2, out.x)), fmul(p.y, h3));
  out.z = fmul(p.z, h);
  return out;
}

JacobianPoint add(const JacobianPoint& p, const JacobianPoint& q) {
  if (p.is_infinity()) return q;
  if (q.is_infinity()) return p;
  return add_mixed(p, to_affine(q));
}

JacobianPoint scalar_mult(const U256& k, const AffinePoint& p) {
  JacobianPoint r = JacobianPoint::make_infinity();
  const int top = k.top_bit();
  for (int i = top; i >= 0; --i) {
    r = dbl(r);
    if (k.bit(static_cast<unsigned>(i))) r = add_mixed(r, p);
  }
  return r;
}

JacobianPoint scalar_mult_ladder(const U256& k, const AffinePoint& p,
                                 unsigned bits) {
  // Classic X-then-add ladder over (R0, R1) with R1 - R0 = P invariant.
  // Every iteration performs exactly one dbl and one add regardless of the
  // key bit, so the op count (and thus time in a software model) is
  // independent of k. Note: the *selection* below is still data-dependent
  // branching at the C++ level; real hardened code uses constant-time swaps.
  JacobianPoint r0 = JacobianPoint::make_infinity();
  JacobianPoint r1 = JacobianPoint::from_affine(p);
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    const bool bit = k.bit(static_cast<unsigned>(i));
    if (bit) {
      r0 = add(r0, r1);
      r1 = dbl(r1);
    } else {
      r1 = add(r0, r1);
      r0 = dbl(r0);
    }
  }
  return r0;
}

namespace {

// --- 64-bit limb field layer ------------------------------------------------
//
// The scalar-mult hot loops run on a 4x64-bit limb representation (Fe): no
// 32<->64 repacking per field op, fully inlined add/sub, and the same NIST
// reduction working directly on the 8-limb product. Values are canonical
// (< p). Conversions to/from U256 happen only at API boundaries.

// Field elements in the scalar-mult hot path live in Montgomery form:
// Fe holds x * 2^256 mod p on 64-bit limbs. p = -1 mod 2^64 makes the
// per-word Montgomery quotient the low word itself (n0' = 1), so the
// reduction needs no quotient multiply — it is ~1.5x faster than the
// 32-bit-lane NIST reduction the U256-facing fmul/fsqr use.
struct Fe {
  std::uint64_t l[4];  // little-endian 64-bit limbs, Montgomery domain
};

constexpr Fe kPFe{{0xffffffffffffffffULL, 0x00000000ffffffffULL, 0ULL,
                   0xffffffff00000001ULL}};
// 2^256 mod p: Montgomery representation of 1.
constexpr Fe kMontOne{{0x0000000000000001ULL, 0xffffffff00000000ULL,
                       0xffffffffffffffffULL, 0x00000000fffffffeULL}};
// 2^512 mod p: multiplying by it (with Montgomery reduction) converts a
// plain residue into the Montgomery domain.
constexpr Fe kMontRR{{0x0000000000000003ULL, 0xfffffffbffffffffULL,
                      0xfffffffffffffffeULL, 0x00000004fffffffdULL}};

inline Fe fe_zero() { return Fe{{0, 0, 0, 0}}; }
inline Fe fe_one() { return kMontOne; }

inline bool fe_is_zero(const Fe& a) {
  return (a.l[0] | a.l[1] | a.l[2] | a.l[3]) == 0;
}

/// Equality of canonical (< p) representatives; in the Montgomery domain
/// this is exactly value equality.
inline bool fe_eq(const Fe& a, const Fe& b) {
  return ((a.l[0] ^ b.l[0]) | (a.l[1] ^ b.l[1]) | (a.l[2] ^ b.l[2]) |
          (a.l[3] ^ b.l[3])) == 0;
}

inline std::uint64_t fe_add_raw(Fe& r, const Fe& a, const Fe& b) {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const __uint128_t t = static_cast<__uint128_t>(a.l[i]) + b.l[i] + carry;
    r.l[i] = static_cast<std::uint64_t>(t);
    carry = static_cast<std::uint64_t>(t >> 64);
  }
  return carry;
}

inline std::uint64_t fe_sub_raw(Fe& r, const Fe& a, const Fe& b) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const __uint128_t t =
        static_cast<__uint128_t>(a.l[i]) - b.l[i] - borrow;
    r.l[i] = static_cast<std::uint64_t>(t);
    borrow = static_cast<std::uint64_t>(t >> 64) & 1u;
  }
  return borrow;
}

inline bool fe_geq_p(const Fe& a) {
  for (int i = 3; i >= 0; --i) {
    if (a.l[i] != kPFe.l[i]) return a.l[i] > kPFe.l[i];
  }
  return true;
}

inline Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  const std::uint64_t carry = fe_add_raw(r, a, b);
  if (carry || fe_geq_p(r)) {
    Fe t;
    fe_sub_raw(t, r, kPFe);
    r = t;
  }
  return r;
}

inline Fe fe_sub(const Fe& a, const Fe& b) {
  Fe r;
  if (fe_sub_raw(r, a, b)) {
    Fe t;
    fe_add_raw(t, r, kPFe);
    r = t;
  }
  return r;
}

/// Montgomery reduction of an 8-limb product: returns t / 2^256 mod p.
/// Each round folds the low limb with quotient m = t[i] (n0' = 1) and adds
/// m * p shifted by i limbs; p[2] == 0 skips one multiply per round. The
/// input is bounded by p^2 < p * 2^256, so the pre-subtraction result is
/// < 2p and a single conditional subtract normalises it.
inline Fe mont_redc(const std::uint64_t rl[8]) {
  std::uint64_t t[9];
  std::memcpy(t, rl, sizeof(std::uint64_t) * 8);
  t[8] = 0;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t m = t[i];
    __uint128_t cc = static_cast<__uint128_t>(m) * kPFe.l[0] + t[i];
    cc >>= 64;  // low limb annihilated by construction
    cc += static_cast<__uint128_t>(m) * kPFe.l[1] + t[i + 1];
    t[i + 1] = static_cast<std::uint64_t>(cc);
    cc >>= 64;
    cc += t[i + 2];  // p[2] == 0
    t[i + 2] = static_cast<std::uint64_t>(cc);
    cc >>= 64;
    cc += static_cast<__uint128_t>(m) * kPFe.l[3] + t[i + 3];
    t[i + 3] = static_cast<std::uint64_t>(cc);
    cc >>= 64;
    cc += t[i + 4];
    t[i + 4] = static_cast<std::uint64_t>(cc);
    std::uint64_t carry = static_cast<std::uint64_t>(cc >> 64);
    for (int j = i + 5; carry && j < 9; ++j) {
      const __uint128_t s = static_cast<__uint128_t>(t[j]) + carry;
      t[j] = static_cast<std::uint64_t>(s);
      carry = static_cast<std::uint64_t>(s >> 64);
    }
  }
  Fe r{{t[4], t[5], t[6], t[7]}};
  if (t[8] || fe_geq_p(r)) {
    Fe s;
    fe_sub_raw(s, r, kPFe);
    r = s;
  }
  return r;
}

/// Fused Montgomery multiply (CIOS): each round adds a.l[i] * b into a
/// six-limb accumulator and immediately folds with m = t0 (n0' = 1),
/// shifting down one limb. Unlike a separate wide-product + mont_redc pass,
/// the accumulator has no dynamically indexed carry ripple, so it lives
/// entirely in registers — measured ~2x lower latency per multiply on the
/// dependent chains that dominate scalar multiplication.
inline Fe fe_mul(const Fe& a, const Fe& b) {
  ++g_fieldops;
  std::uint64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0, t4 = 0, t5 = 0;
#define ASECK_CIOS_ROUND(ai)                                                \
  {                                                                         \
    const std::uint64_t x = (ai);                                           \
    __uint128_t cc = static_cast<__uint128_t>(x) * b.l[0] + t0;             \
    t0 = static_cast<std::uint64_t>(cc); cc >>= 64;                         \
    cc += static_cast<__uint128_t>(x) * b.l[1] + t1;                        \
    t1 = static_cast<std::uint64_t>(cc); cc >>= 64;                         \
    cc += static_cast<__uint128_t>(x) * b.l[2] + t2;                        \
    t2 = static_cast<std::uint64_t>(cc); cc >>= 64;                         \
    cc += static_cast<__uint128_t>(x) * b.l[3] + t3;                        \
    t3 = static_cast<std::uint64_t>(cc); cc >>= 64;                         \
    cc += t4; t4 = static_cast<std::uint64_t>(cc);                          \
    t5 = static_cast<std::uint64_t>(cc >> 64);                              \
    const std::uint64_t m = t0;                                             \
    cc = static_cast<__uint128_t>(m) * kPFe.l[0] + t0; cc >>= 64;           \
    cc += static_cast<__uint128_t>(m) * kPFe.l[1] + t1;                     \
    t0 = static_cast<std::uint64_t>(cc); cc >>= 64;                         \
    cc += t2; /* p[2] == 0 */                                               \
    t1 = static_cast<std::uint64_t>(cc); cc >>= 64;                         \
    cc += static_cast<__uint128_t>(m) * kPFe.l[3] + t3;                     \
    t2 = static_cast<std::uint64_t>(cc); cc >>= 64;                         \
    cc += t4; t3 = static_cast<std::uint64_t>(cc);                          \
    t4 = t5 + static_cast<std::uint64_t>(cc >> 64);                         \
  }
  ASECK_CIOS_ROUND(a.l[0])
  ASECK_CIOS_ROUND(a.l[1])
  ASECK_CIOS_ROUND(a.l[2])
  ASECK_CIOS_ROUND(a.l[3])
#undef ASECK_CIOS_ROUND
  Fe r{{t0, t1, t2, t3}};
  if (t4 || fe_geq_p(r)) {
    Fe s;
    fe_sub_raw(s, r, kPFe);
    r = s;
  }
  return r;
}

/// Squaring reuses the CIOS multiply: the classic halve-the-cross-products
/// square needs a full-width shift-double pass whose carry chain costs more
/// than the duplicate multiplies save (measured: dedicated square 38 ns vs
/// CIOS a*a 30 ns on the dependent chain).
inline Fe fe_sqr(const Fe& a) { return fe_mul(a, a); }

/// U256 -> Montgomery domain: one Montgomery multiply by 2^512 mod p.
inline Fe fe_from(const U256& a) {
  Fe r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.l[i] = std::uint64_t{a.w[2 * i]} | (std::uint64_t{a.w[2 * i + 1]} << 32);
  }
  return fe_mul(r, kMontRR);
}

/// Montgomery domain -> U256: reduce [a, 0...] (i.e. multiply by 1/R).
inline U256 fe_to(const Fe& a) {
  const std::uint64_t wide[8] = {a.l[0], a.l[1], a.l[2], a.l[3], 0, 0, 0, 0};
  const Fe plain = mont_redc(wide);
  U256 r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.w[2 * i] = static_cast<std::uint32_t>(plain.l[i]);
    r.w[2 * i + 1] = static_cast<std::uint32_t>(plain.l[i] >> 32);
  }
  return r;
}

// --- point ops on Fe --------------------------------------------------------

struct AffFe {
  Fe x, y;
  bool inf;
};

struct JacFe {
  Fe x, y, z;  // z == 0 encodes infinity, same as JacobianPoint
};

inline JacFe jacfe_infinity() { return JacFe{fe_zero(), fe_zero(), fe_zero()}; }
inline bool jacfe_is_inf(const JacFe& p) { return fe_is_zero(p.z); }

inline JacFe jacfe_from_aff(const AffFe& q) {
  return JacFe{q.x, q.y, fe_one()};
}

inline AffFe afffe_from(const AffinePoint& p) {
  return AffFe{fe_from(p.x), fe_from(p.y), p.infinity};
}

inline JacobianPoint jacfe_to(const JacFe& p) {
  return JacobianPoint{fe_to(p.x), fe_to(p.y), fe_to(p.z)};
}

/// Negation of a finite affine point: (x, p - y). No P-256 point has y == 0
/// (the curve has prime order and b != 0), so p - y stays in [1, p).
inline AffFe afffe_neg(const AffFe& a) {
  return AffFe{a.x, fe_sub(fe_zero(), a.y), false};
}

/// dbl-2001-b (a = -3), mirroring dbl() above limb-for-limb.
JacFe dbl_fe(const JacFe& p) {
  if (jacfe_is_inf(p) || fe_is_zero(p.y)) return jacfe_infinity();
  const Fe delta = fe_sqr(p.z);
  const Fe gamma = fe_sqr(p.y);
  const Fe beta = fe_mul(p.x, gamma);
  const Fe xmd = fe_sub(p.x, delta);
  const Fe alpha = fe_mul(fe_add(fe_add(xmd, xmd), xmd), fe_add(p.x, delta));
  const Fe beta2 = fe_add(beta, beta);
  const Fe beta4 = fe_add(beta2, beta2);
  const Fe beta8 = fe_add(beta4, beta4);
  JacFe r;
  r.x = fe_sub(fe_sqr(alpha), beta8);
  r.z = fe_sub(fe_sub(fe_sqr(fe_add(p.y, p.z)), gamma), delta);
  const Fe gamma2 = fe_sqr(gamma);
  const Fe g2 = fe_add(gamma2, gamma2);
  const Fe g4 = fe_add(g2, g2);
  const Fe g8 = fe_add(g4, g4);
  r.y = fe_sub(fe_mul(alpha, fe_sub(beta4, r.x)), g8);
  return r;
}

/// Mixed addition, mirroring add_mixed() above limb-for-limb.
JacFe add_mixed_fe(const JacFe& p, const AffFe& q) {
  if (q.inf) return p;
  if (jacfe_is_inf(p)) return jacfe_from_aff(q);
  const Fe z1z1 = fe_sqr(p.z);
  const Fe u2 = fe_mul(q.x, z1z1);
  const Fe s2 = fe_mul(fe_mul(q.y, p.z), z1z1);
  const Fe h = fe_sub(u2, p.x);
  const Fe r_ = fe_sub(s2, p.y);
  if (fe_is_zero(h)) {
    if (fe_is_zero(r_)) return dbl_fe(p);
    return jacfe_infinity();
  }
  const Fe h2 = fe_sqr(h);
  const Fe h3 = fe_mul(h2, h);
  const Fe x1h2 = fe_mul(p.x, h2);
  JacFe out;
  out.x = fe_sub(fe_sub(fe_sqr(r_), h3), fe_add(x1h2, x1h2));
  out.y = fe_sub(fe_mul(r_, fe_sub(x1h2, out.x)), fe_mul(p.y, h3));
  out.z = fe_mul(p.z, h);
  return out;
}

/// General Jacobian + Jacobian addition (12M + 4S). Used to build odd-Q
/// multiples without an affine (inversion) step per entry.
JacFe add_fe(const JacFe& p, const JacFe& q) {
  if (jacfe_is_inf(p)) return q;
  if (jacfe_is_inf(q)) return p;
  const Fe z1z1 = fe_sqr(p.z);
  const Fe z2z2 = fe_sqr(q.z);
  const Fe u1 = fe_mul(p.x, z2z2);
  const Fe u2 = fe_mul(q.x, z1z1);
  const Fe s1 = fe_mul(fe_mul(p.y, q.z), z2z2);
  const Fe s2 = fe_mul(fe_mul(q.y, p.z), z1z1);
  const Fe h = fe_sub(u2, u1);
  const Fe r_ = fe_sub(s2, s1);
  if (fe_is_zero(h)) {
    if (fe_is_zero(r_)) return dbl_fe(p);
    return jacfe_infinity();
  }
  const Fe h2 = fe_sqr(h);
  const Fe h3 = fe_mul(h2, h);
  const Fe u1h2 = fe_mul(u1, h2);
  JacFe out;
  out.x = fe_sub(fe_sub(fe_sqr(r_), h3), fe_add(u1h2, u1h2));
  out.y = fe_sub(fe_mul(r_, fe_sub(u1h2, out.x)), fe_mul(s1, h3));
  out.z = fe_mul(fe_mul(p.z, q.z), h);
  return out;
}

/// Montgomery batch conversion of up to kBatchMax Jacobian points to affine
/// with a single field inversion; infinity entries are skipped (their z == 0
/// would poison the product chain).
constexpr int kBatchMax = 8;

void jacfe_batch_affine(const JacFe* in, AffFe* out, int m) {
  Fe prefix[kBatchMax];
  Fe acc = fe_one();
  for (int i = 0; i < m; ++i) {
    prefix[i] = acc;
    if (!jacfe_is_inf(in[i])) acc = fe_mul(acc, in[i].z);
  }
  Fe inv = fe_from(inv_mod_prime(fe_to(acc), kP));
  for (int i = m; i-- > 0;) {
    if (jacfe_is_inf(in[i])) {
      out[i] = AffFe{fe_zero(), fe_zero(), true};
      continue;
    }
    const Fe zinv = fe_mul(inv, prefix[i]);
    inv = fe_mul(inv, in[i].z);
    const Fe z2 = fe_sqr(zinv);
    out[i] = AffFe{fe_mul(in[i].x, z2), fe_mul(in[i].y, fe_mul(z2, zinv)),
                   false};
  }
}

/// Heap-buffered variant for arbitrarily sized batches: multi_scalar_mult
/// funnels the odd-multiple tables of every term in a verify set through
/// this one inversion.
void jacfe_batch_affine_n(const JacFe* in, AffFe* out, std::size_t m) {
  std::vector<Fe> prefix(m);
  Fe acc = fe_one();
  for (std::size_t i = 0; i < m; ++i) {
    prefix[i] = acc;
    if (!jacfe_is_inf(in[i])) acc = fe_mul(acc, in[i].z);
  }
  Fe inv = fe_from(inv_mod_prime(fe_to(acc), kP));
  for (std::size_t i = m; i-- > 0;) {
    if (jacfe_is_inf(in[i])) {
      out[i] = AffFe{fe_zero(), fe_zero(), true};
      continue;
    }
    const Fe zinv = fe_mul(inv, prefix[i]);
    inv = fe_mul(inv, in[i].z);
    const Fe z2 = fe_sqr(zinv);
    out[i] = AffFe{fe_mul(in[i].x, z2), fe_mul(in[i].y, fe_mul(z2, zinv)),
                   false};
  }
}

// --- Fixed-base tables for k*G ----------------------------------------------
//
// comb[i][j-1] = j * 2^(4i) * G (affine), i in [0, 64), j in [1, 16).
// Processing k one nibble at a time turns k*G into at most 64 mixed
// additions with zero doublings. odd_g[m] = (2m+1) * G feeds the width-8
// wNAF G-term of double_scalar_mult. ~100 KiB total, built lazily once.

constexpr int kCombWindows = 64;   // 256 bits / 4-bit teeth
constexpr int kCombEntries = 15;   // digits 1..15
constexpr int kOddG = 64;          // 1G, 3G, ..., 127G (width-8 wNAF)

struct FixedBaseTables {
  AffFe comb[kCombWindows][kCombEntries];
  AffFe odd_g[kOddG];
};

const FixedBaseTables& fixed_base() {
  static const FixedBaseTables tables = [] {
    FixedBaseTables t;
    // Window bases B_i = 2^(4i) * G, then one batch inversion.
    std::vector<JacobianPoint> bases;
    bases.reserve(kCombWindows);
    JacobianPoint b = JacobianPoint::from_affine(generator());
    for (int i = 0; i < kCombWindows; ++i) {
      bases.push_back(b);
      if (i + 1 < kCombWindows) {
        for (int d = 0; d < 4; ++d) b = dbl(b);
      }
    }
    const std::vector<AffinePoint> bases_aff = batch_to_affine(bases);
    // Entries j*B_i by chained mixed additions, then one batch inversion.
    std::vector<JacobianPoint> entries;
    entries.reserve(kCombWindows * kCombEntries);
    for (int i = 0; i < kCombWindows; ++i) {
      JacobianPoint acc = JacobianPoint::from_affine(bases_aff[i]);
      for (int j = 1; j <= kCombEntries; ++j) {
        entries.push_back(acc);
        if (j < kCombEntries) acc = add_mixed(acc, bases_aff[i]);
      }
    }
    const std::vector<AffinePoint> entries_aff = batch_to_affine(entries);
    for (int i = 0; i < kCombWindows; ++i) {
      for (int j = 0; j < kCombEntries; ++j) {
        t.comb[i][j] = afffe_from(
            entries_aff[static_cast<std::size_t>(i) * kCombEntries +
                        static_cast<std::size_t>(j)]);
      }
    }
    // Odd multiples 1G..63G: chained mixed additions of the affine 2G, one
    // batch inversion (all one-time build cost).
    const AffinePoint g2 =
        to_affine(dbl(JacobianPoint::from_affine(generator())));
    std::vector<JacobianPoint> odd;
    odd.reserve(kOddG);
    JacobianPoint oacc = JacobianPoint::from_affine(generator());
    for (int m = 0; m < kOddG; ++m) {
      odd.push_back(oacc);
      if (m + 1 < kOddG) oacc = add_mixed(oacc, g2);
    }
    const std::vector<AffinePoint> odd_aff = batch_to_affine(odd);
    for (int m = 0; m < kOddG; ++m) {
      t.odd_g[m] = afffe_from(odd_aff[static_cast<std::size_t>(m)]);
    }
    return t;
  }();
  return tables;
}

// --- wNAF expansion ---------------------------------------------------------

/// Width-w non-adjacent form, w in [2, 8]: digits[i] are 0 or odd with
/// |d| <= 2^(w-1) - 1, at most one nonzero digit per w-1 consecutive
/// positions. Returns the digit count (<= 258 for any 256-bit k; the buffer
/// is sized with headroom).
constexpr std::size_t kMaxWnafDigits = 260;

int wnaf(const U256& k, int width, std::int8_t* digits) {
  const std::uint32_t mask = (1u << width) - 1;
  const int half = 1 << (width - 1);
  U256 x = k;
  std::uint32_t overflow = 0;  // virtual bit 256 after a d < 0 correction
  int n = 0;
  while (!x.is_zero() || overflow) {
    int d = 0;
    if (x.is_odd()) {
      const int m = static_cast<int>(x.w[0] & mask);
      d = m >= half ? m - (1 << width) : m;
      U256 tmp;
      if (d > 0) {
        sub(tmp, x, U256::from_u64(static_cast<std::uint64_t>(d)));
      } else {
        overflow += add(tmp, x, U256::from_u64(static_cast<std::uint64_t>(-d)));
      }
      x = tmp;
    }
    digits[n++] = static_cast<std::int8_t>(d);
    shr1(x);
    if (overflow) {
      x.w[7] |= 0x80000000u;
      overflow = 0;
    }
  }
  return n;
}

}  // namespace

void init_fixed_base_tables() { (void)fixed_base(); }

JacobianPoint scalar_mult_base(const U256& k) {
  const FixedBaseTables& t = fixed_base();
  JacFe r = jacfe_infinity();
  for (int i = 0; i < kCombWindows; ++i) {
    const unsigned d = (k.w[static_cast<std::size_t>(i / 8)] >>
                        (4u * static_cast<unsigned>(i % 8))) &
                       0xfu;
    if (d) r = add_mixed_fe(r, t.comb[i][d - 1]);
  }
  return jacfe_to(r);
}

JacobianPoint double_scalar_mult(const U256& u1, const U256& u2,
                                 const AffinePoint& q) {
  std::int8_t d1[kMaxWnafDigits], d2[kMaxWnafDigits];
  // G gets width 8 (static 64-entry table); Q gets width 4 (its 4-entry odd
  // table is built per call). An infinite Q contributes nothing; skip its
  // expansion and table.
  const int n1 = wnaf(u1, 8, d1);
  const int n2 = q.infinity ? 0 : wnaf(u2, 4, d2);

  // Odd multiples of Q: 1Q, 3Q, 5Q, 7Q. 3Q..7Q are chained in Jacobian form
  // (one general addition each, no per-entry inversion), then converted with
  // a single batched inversion. The infinity guard in the batch keeps the
  // product chain sound even for adversarial q (e.g. 3Q = O cannot happen on
  // the prime-order curve, but nothing here relies on that).
  AffFe odd_q[4];
  if (n2 > 0) {
    const AffFe qa = afffe_from(q);
    const JacFe qj = jacfe_from_aff(qa);
    const JacFe q2 = dbl_fe(qj);
    JacFe mults[3];
    mults[0] = add_mixed_fe(q2, qa);           // 3Q
    mults[1] = add_fe(mults[0], q2);           // 5Q
    mults[2] = add_fe(mults[1], q2);           // 7Q
    AffFe aff[3];
    jacfe_batch_affine(mults, aff, 3);
    odd_q[0] = qa;
    for (int m = 0; m < 3; ++m) odd_q[m + 1] = aff[m];
  }

  const FixedBaseTables& t = fixed_base();
  JacFe r = jacfe_infinity();
  for (int i = std::max(n1, n2); i-- > 0;) {
    r = dbl_fe(r);
    if (i < n1 && d1[i] != 0) {
      const AffFe& m = t.odd_g[(d1[i] > 0 ? d1[i] : -d1[i]) / 2];
      r = add_mixed_fe(r, d1[i] > 0 ? m : afffe_neg(m));
    }
    if (i < n2 && d2[i] != 0) {
      const AffFe& m = odd_q[(d2[i] > 0 ? d2[i] : -d2[i]) / 2];
      if (!m.inf) r = add_mixed_fe(r, d2[i] > 0 ? m : afffe_neg(m));
    }
  }
  return jacfe_to(r);
}

std::optional<AffinePoint> decompress(const U256& x, bool y_odd) {
  if (cmp(x, kP) >= 0) return std::nullopt;
  const Fe xf = fe_from(x);
  // rhs = x^3 - 3x + b.
  static const Fe bf = fe_from(kB);
  const Fe x3 = fe_mul(fe_sqr(xf), xf);
  const Fe three_x = fe_add(fe_add(xf, xf), xf);
  const Fe rhs = fe_add(fe_sub(x3, three_x), bf);
  // p == 3 (mod 4): sqrt(a) = a^((p+1)/4) when a is a quadratic residue.
  static const U256 exp = [] {
    U256 e;
    add(e, kP, U256::one());  // p + 1 < 2^256, no carry out
    shr1(e);
    shr1(e);
    return e;
  }();
  Fe y = fe_one();
  for (int i = exp.top_bit(); i >= 0; --i) {
    y = fe_sqr(y);
    if (exp.bit(static_cast<unsigned>(i))) y = fe_mul(y, rhs);
  }
  if (!fe_eq(fe_sqr(y), rhs)) return std::nullopt;  // non-residue: no point
  U256 yu = fe_to(y);
  if (yu.is_odd() != y_odd) {
    y = fe_sub(fe_zero(), y);
    yu = fe_to(y);
    // Only y == 0 is parity-fixed under negation; no P-256 point has it
    // (b != 0, prime order), so a residual mismatch means no such point.
    if (yu.is_odd() != y_odd) return std::nullopt;
  }
  return AffinePoint{x, yu, false};
}

JacobianPoint multi_scalar_mult(const U256& g_scalar,
                                const std::vector<MultiScalarTerm>& terms) {
  // Width-5 wNAF for dynamic terms: odd multiples {1,3,...,15}P, 8 entries.
  constexpr int kTermEntries = 8;
  std::int8_t dg[kMaxWnafDigits];
  const int ng = g_scalar.is_zero() ? 0 : wnaf(g_scalar, 8, dg);

  const std::size_t nt = terms.size();
  std::vector<std::array<std::int8_t, kMaxWnafDigits>> digits(nt);
  std::vector<int> nd(nt, 0);
  int top = ng;
  for (std::size_t i = 0; i < nt; ++i) {
    if (terms[i].point.infinity || terms[i].scalar.is_zero()) continue;
    nd[i] = wnaf(terms[i].scalar, 5, digits[i].data());
    top = std::max(top, nd[i]);
  }

  // Per-term tables are chained in Jacobian form (one doubling + general
  // additions, no per-entry inversion); the entries of ALL terms are then
  // normalised to affine with one shared Montgomery batch inversion.
  std::vector<AffFe> table(nt * kTermEntries,
                           AffFe{fe_zero(), fe_zero(), true});
  std::vector<JacFe> jac;
  std::vector<std::size_t> jac_slot;
  jac.reserve(nt * (kTermEntries - 1));
  jac_slot.reserve(nt * (kTermEntries - 1));
  for (std::size_t i = 0; i < nt; ++i) {
    if (nd[i] == 0) continue;
    const AffFe base = afffe_from(terms[i].point);
    table[i * kTermEntries] = base;
    const JacFe p2 = dbl_fe(jacfe_from_aff(base));
    JacFe acc = add_mixed_fe(p2, base);  // 3P
    for (int e = 1; e < kTermEntries; ++e) {
      jac.push_back(acc);
      jac_slot.push_back(i * kTermEntries + static_cast<std::size_t>(e));
      if (e + 1 < kTermEntries) acc = add_fe(acc, p2);
    }
  }
  if (!jac.empty()) {
    std::vector<AffFe> aff(jac.size());
    jacfe_batch_affine_n(jac.data(), aff.data(), jac.size());
    for (std::size_t k = 0; k < jac.size(); ++k) table[jac_slot[k]] = aff[k];
  }

  // One shared doubling chain for every term (the Straus interleaving).
  const FixedBaseTables& t = fixed_base();
  JacFe r = jacfe_infinity();
  for (int i = top; i-- > 0;) {
    r = dbl_fe(r);
    if (i < ng && dg[i] != 0) {
      const AffFe& m = t.odd_g[(dg[i] > 0 ? dg[i] : -dg[i]) / 2];
      r = add_mixed_fe(r, dg[i] > 0 ? m : afffe_neg(m));
    }
    for (std::size_t j = 0; j < nt; ++j) {
      if (i >= nd[j]) continue;
      const int d = digits[j][static_cast<std::size_t>(i)];
      if (d == 0) continue;
      const AffFe& m = table[j * kTermEntries +
                             static_cast<std::size_t>((d > 0 ? d : -d) / 2)];
      if (!m.inf) r = add_mixed_fe(r, d > 0 ? m : afffe_neg(m));
    }
  }
  return jacfe_to(r);
}

namespace {

// --- Seed reference kernel --------------------------------------------------
//
// double_scalar_mult_shamir is the *seed's* verify kernel, preserved
// byte-for-byte in behaviour AND cost model: its field ops round-trip the
// full product through U512 + reduce_p and square via a general multiply,
// exactly as the seed did. It exists for bit-for-bit differential testing
// and as the honest baseline in the E17 slow-vs-fast sweep; keeping it on
// the modern fused field core would silently flatter the baseline.

U256 ref_fmul(const U256& a, const U256& b) {
  ++g_fieldops;
  return reduce_p(mul(a, b));
}
U256 ref_fsqr(const U256& a) { return ref_fmul(a, a); }

JacobianPoint ref_dbl(const JacobianPoint& p) {
  if (p.is_infinity() || p.y.is_zero()) return JacobianPoint::make_infinity();
  // dbl-2001-b (a = -3), spelled as in the seed:
  const U256 delta = ref_fsqr(p.z);
  const U256 gamma = ref_fsqr(p.y);
  const U256 beta = ref_fmul(p.x, gamma);
  const U256 alpha =
      ref_fmul(fadd(fadd(fsub(p.x, delta), fsub(p.x, delta)), fsub(p.x, delta)),
               fadd(p.x, delta));  // 3*(x-delta)*(x+delta)
  const U256 beta4 = fadd(fadd(beta, beta), fadd(beta, beta));
  const U256 beta8 = fadd(beta4, beta4);
  JacobianPoint r;
  r.x = fsub(ref_fsqr(alpha), beta8);
  r.z = fsub(fsub(ref_fsqr(fadd(p.y, p.z)), gamma), delta);
  const U256 gamma2 = ref_fsqr(gamma);
  const U256 gamma2_8 =
      fadd(fadd(fadd(gamma2, gamma2), fadd(gamma2, gamma2)),
           fadd(fadd(gamma2, gamma2), fadd(gamma2, gamma2)));
  r.y = fsub(ref_fmul(alpha, fsub(beta4, r.x)), gamma2_8);
  return r;
}

JacobianPoint ref_add_mixed(const JacobianPoint& p, const AffinePoint& q) {
  if (q.infinity) return p;
  if (p.is_infinity()) return JacobianPoint::from_affine(q);
  const U256 z1z1 = ref_fsqr(p.z);
  const U256 u2 = ref_fmul(q.x, z1z1);
  const U256 s2 = ref_fmul(ref_fmul(q.y, p.z), z1z1);
  const U256 h = fsub(u2, p.x);
  const U256 r_ = fsub(s2, p.y);
  if (h.is_zero()) {
    if (r_.is_zero()) return ref_dbl(p);
    return JacobianPoint::make_infinity();
  }
  const U256 h2 = ref_fsqr(h);
  const U256 h3 = ref_fmul(h2, h);
  const U256 x1h2 = ref_fmul(p.x, h2);
  JacobianPoint out;
  out.x = fsub(fsub(ref_fsqr(r_), h3), fadd(x1h2, x1h2));
  out.y = fsub(ref_fmul(r_, fsub(x1h2, out.x)), ref_fmul(p.y, h3));
  out.z = ref_fmul(p.z, h);
  return out;
}

}  // namespace

JacobianPoint double_scalar_mult_shamir(const U256& u1, const U256& u2,
                                        const AffinePoint& q) {
  // Shamir's trick: interleaved double-and-add with precomputed G+Q.
  const AffinePoint g = generator();
  const JacobianPoint gq_j = ref_add_mixed(JacobianPoint::from_affine(g), q);
  // G + Q is infinite when q == -G; the affine sum only exists when finite.
  const AffinePoint gq =
      gq_j.is_infinity() ? AffinePoint::make_infinity() : to_affine(gq_j);
  JacobianPoint r = JacobianPoint::make_infinity();
  const int top = std::max(u1.top_bit(), u2.top_bit());
  for (int i = top; i >= 0; --i) {
    r = ref_dbl(r);
    const bool b1 = i >= 0 && u1.bit(static_cast<unsigned>(i));
    const bool b2 = i >= 0 && u2.bit(static_cast<unsigned>(i));
    if (b1 && b2) {
      r = gq.infinity ? r : ref_add_mixed(r, gq);
    } else if (b1) {
      r = ref_add_mixed(r, g);
    } else if (b2) {
      r = ref_add_mixed(r, q);
    }
  }
  return r;
}

bool on_curve(const AffinePoint& p) {
  if (p.infinity) return false;
  if (cmp(p.x, kP) >= 0 || cmp(p.y, kP) >= 0) return false;
  // y^2 == x^3 - 3x + b
  const U256 lhs = fsqr(p.y);
  const U256 x3 = fmul(fsqr(p.x), p.x);
  const U256 three_x = fadd(fadd(p.x, p.x), p.x);
  const U256 rhs = fadd(fsub(x3, three_x), kB);
  return lhs == rhs;
}

AffinePoint generator() { return AffinePoint{kGx, kGy, false}; }

}  // namespace aseck::crypto::p256
