#include "crypto/verify_engine.hpp"

#include <map>

namespace aseck::crypto {

Digest VerifyEngine::cache_key(const EcdsaPublicKey& pub, const Digest& digest,
                               const EcdsaSignature& sig) {
  Sha256 h;
  h.update(util::BytesView(digest.data(), digest.size()));
  h.update(pub.to_bytes());
  h.update(sig.to_bytes());
  return h.finalize();
}

void VerifyEngine::sync_evictions() {
  if (c_evictions_ && cache_.evictions() != synced_evictions_) {
    c_evictions_->inc(cache_.evictions() - synced_evictions_);
    synced_evictions_ = cache_.evictions();
  }
}

bool VerifyEngine::verify_digest(const EcdsaPublicKey& pub,
                                 const Digest& digest,
                                 const EcdsaSignature& sig) {
  ++calls_;
  if (c_calls_) c_calls_->inc();
  const Digest key = cache_key(pub, digest, sig);
  if (const bool* cached = cache_.find(key)) {
    if (c_hits_) c_hits_->inc();
    return *cached;
  }
  const bool ok = ecdsa_verify_digest(pub, digest, sig);
  ++primitive_;
  if (c_primitive_) c_primitive_->inc();
  cache_.put(key, ok);
  sync_evictions();
  return ok;
}

bool VerifyEngine::verify(const EcdsaPublicKey& pub, util::BytesView msg,
                          const EcdsaSignature& sig) {
  return verify_digest(pub, sha256(msg), sig);
}

std::vector<bool> VerifyEngine::verify_batch(
    const std::vector<BatchItem>& items) {
  std::vector<bool> verdicts(items.size(), false);
  // Every item is a call — malformed (null-pointer) ones included, so call
  // and verdict counts always agree.
  calls_ += items.size();
  if (c_calls_) c_calls_->inc(items.size());

  // Cache probe pass. Duplicate triples inside one burst (the V2X flood
  // case: one beacon heard by many receivers) resolve against the first
  // occurrence instead of paying the kernel twice.
  struct Miss {
    std::size_t slot;  // verdict index of the first occurrence
    Digest key;
  };
  std::vector<Miss> misses;
  std::vector<std::pair<std::size_t, std::size_t>> aliases;  // slot -> slot
  std::map<Digest, std::size_t> pending;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& it = items[i];
    if (!it.pub || !it.sig) continue;  // verdict stays false
    const Digest key = cache_key(*it.pub, it.digest, *it.sig);
    if (const bool* cached = cache_.find(key)) {
      if (c_hits_) c_hits_->inc();
      verdicts[i] = *cached;
      continue;
    }
    const auto [at, inserted] = pending.emplace(key, i);
    if (!inserted) {
      ++alias_hits_;
      if (c_hits_) c_hits_->inc();
      aliases.emplace_back(i, at->second);
      continue;
    }
    misses.push_back({i, key});
  }

  // Resolve the misses: through the RLC batch kernel when enabled and the
  // burst is big enough to amortize, per-item otherwise. Verdicts are
  // bit-identical either way (the kernel is differentially tested).
  primitive_ += misses.size();
  if (c_primitive_) c_primitive_->inc(misses.size());
  if (batch_kernel_ && misses.size() >= batch_min_) {
    std::vector<BatchVerifyItem> work;
    work.reserve(misses.size());
    for (const Miss& m : misses) work.push_back(items[m.slot]);
    const std::vector<bool> ok = ecdsa_verify_batch(
        work, util::BytesView(salt_.data(), salt_.size()), &batch_stats_);
    batched_ += misses.size();
    if (c_batched_) c_batched_->inc(misses.size());
    if (h_batch_items_) {
      h_batch_items_->record(static_cast<double>(misses.size()));
    }
    for (std::size_t k = 0; k < misses.size(); ++k) {
      verdicts[misses[k].slot] = ok[k];
    }
  } else {
    for (const Miss& m : misses) {
      const BatchItem& it = items[m.slot];
      verdicts[m.slot] = ecdsa_verify_digest(*it.pub, it.digest, *it.sig);
    }
  }
  for (const Miss& m : misses) cache_.put(m.key, verdicts[m.slot]);
  sync_evictions();
  for (const auto& [slot, first] : aliases) verdicts[slot] = verdicts[first];
  return verdicts;
}

void VerifyEngine::bind_metrics(sim::MetricsRegistry& reg) {
  c_calls_ = &reg.counter("crypto.verify.calls");
  c_hits_ = &reg.counter("crypto.verify.cache_hits");
  c_evictions_ = &reg.counter("crypto.verify.evictions");
  c_primitive_ = &reg.counter("crypto.verify.primitive");
  c_batched_ = &reg.counter("crypto.verify.batched");
  h_batch_items_ =
      &reg.histogram("crypto.verify.batch_items", 0.0, 256.0, 32);
  // Carry pre-binding totals so the registry view matches the engine's —
  // the same rule for every counter (evictions used to carry only the
  // delta since the previous binding, under-reporting on fresh registries).
  const auto carry = [](sim::Counter* c, std::uint64_t total) {
    if (total > c->value()) c->inc(total - c->value());
  };
  carry(c_calls_, calls_);
  carry(c_hits_, cache_.hits() + alias_hits_);
  carry(c_evictions_, cache_.evictions());
  carry(c_primitive_, primitive_);
  carry(c_batched_, batched_);
  synced_evictions_ = cache_.evictions();
}

void VerifyEngine::set_cache_capacity(std::size_t cap) {
  cache_.set_capacity(cap);
  sync_evictions();
}

}  // namespace aseck::crypto
