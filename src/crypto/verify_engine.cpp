#include "crypto/verify_engine.hpp"

#include <chrono>

namespace aseck::crypto {

Digest VerifyEngine::cache_key(const EcdsaPublicKey& pub, const Digest& digest,
                               const EcdsaSignature& sig) {
  Sha256 h;
  h.update(util::BytesView(digest.data(), digest.size()));
  h.update(pub.to_bytes());
  h.update(sig.to_bytes());
  return h.finalize();
}

bool VerifyEngine::verify_digest(const EcdsaPublicKey& pub,
                                 const Digest& digest,
                                 const EcdsaSignature& sig) {
  ++calls_;
  if (c_calls_) c_calls_->inc();
  const Digest key = cache_key(pub, digest, sig);
  if (const bool* cached = cache_.find(key)) {
    if (c_hits_) c_hits_->inc();
    return *cached;
  }
  bool ok;
  if (h_latency_us_) {
    const auto t0 = std::chrono::steady_clock::now();
    ok = ecdsa_verify_digest(pub, digest, sig);
    const auto t1 = std::chrono::steady_clock::now();
    h_latency_us_->record(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  } else {
    ok = ecdsa_verify_digest(pub, digest, sig);
  }
  cache_.put(key, ok);
  if (c_evictions_ && cache_.evictions() != exported_evictions_) {
    c_evictions_->inc(cache_.evictions() - exported_evictions_);
    exported_evictions_ = cache_.evictions();
  }
  return ok;
}

bool VerifyEngine::verify(const EcdsaPublicKey& pub, util::BytesView msg,
                          const EcdsaSignature& sig) {
  return verify_digest(pub, sha256(msg), sig);
}

std::vector<bool> VerifyEngine::verify_batch(
    const std::vector<BatchItem>& items) {
  std::vector<bool> verdicts;
  verdicts.reserve(items.size());
  for (const BatchItem& it : items) {
    verdicts.push_back(it.pub && it.sig &&
                       verify_digest(*it.pub, it.digest, *it.sig));
  }
  return verdicts;
}

void VerifyEngine::bind_metrics(sim::MetricsRegistry& reg) {
  c_calls_ = &reg.counter("crypto.verify.calls");
  c_hits_ = &reg.counter("crypto.verify.cache_hits");
  c_evictions_ = &reg.counter("crypto.verify.evictions");
  h_latency_us_ = &reg.histogram("crypto.verify.latency_us", 0.0, 2000.0, 40);
  // Carry pre-binding totals so the registry view matches the engine's.
  if (calls_ > c_calls_->value()) c_calls_->inc(calls_ - c_calls_->value());
  if (cache_.hits() > c_hits_->value()) {
    c_hits_->inc(cache_.hits() - c_hits_->value());
  }
  if (cache_.evictions() > exported_evictions_) {
    c_evictions_->inc(cache_.evictions() - exported_evictions_);
  }
  exported_evictions_ = cache_.evictions();
}

void VerifyEngine::set_cache_capacity(std::size_t cap) {
  cache_.set_capacity(cap);
  if (c_evictions_ && cache_.evictions() != exported_evictions_) {
    c_evictions_->inc(cache_.evictions() - exported_evictions_);
    exported_evictions_ = cache_.evictions();
  }
}

}  // namespace aseck::crypto
