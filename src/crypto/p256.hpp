#pragma once
// NIST P-256 (secp256r1) elliptic curve arithmetic: fast NIST modular
// reduction for the field prime, Jacobian-coordinate point operations, and
// double-and-add scalar multiplication.
//
// NOTE: scalar multiplication here is *not* constant-time; timing leakage of
// long-lived keys is exactly one of the side-channel classes the paper
// discusses, and src/sidechannel models it explicitly. Production silicon
// would use a hardened ladder.

#include <optional>

#include "crypto/u256.hpp"

namespace aseck::crypto::p256 {

/// Field prime p, curve order n, and curve parameter b (a = -3).
const U256& P();
const U256& N();
const U256& B();
/// Base point (affine).
const U256& Gx();
const U256& Gy();

// --- Field arithmetic mod p -------------------------------------------------

U256 fadd(const U256& a, const U256& b);
U256 fsub(const U256& a, const U256& b);
/// Product with NIST P-256 fast reduction.
U256 fmul(const U256& a, const U256& b);
U256 fsqr(const U256& a);
U256 finv(const U256& a);
/// Reduces an arbitrary 512-bit value mod p (the fast reduction kernel).
U256 reduce_p(const U512& x);

// --- Points ------------------------------------------------------------------

/// Affine point; infinity encoded by `infinity == true`.
struct AffinePoint {
  U256 x, y;
  bool infinity = false;

  static AffinePoint make_infinity() { return AffinePoint{{}, {}, true}; }
  friend bool operator==(const AffinePoint&, const AffinePoint&) = default;
};

/// Jacobian point (X/Z^2, Y/Z^3); infinity encoded by Z == 0.
struct JacobianPoint {
  U256 x, y, z;

  static JacobianPoint make_infinity() { return JacobianPoint{}; }
  static JacobianPoint from_affine(const AffinePoint& p);
  bool is_infinity() const { return z.is_zero(); }
};

AffinePoint to_affine(const JacobianPoint& p);

JacobianPoint dbl(const JacobianPoint& p);
/// Mixed addition: Jacobian + affine.
JacobianPoint add_mixed(const JacobianPoint& p, const AffinePoint& q);
JacobianPoint add(const JacobianPoint& p, const JacobianPoint& q);

/// k * P for affine P. k is used as-is (callers reduce mod n when required).
JacobianPoint scalar_mult(const U256& k, const AffinePoint& p);
/// Montgomery-ladder scalar multiplication: performs the same point-
/// operation sequence for every k of a given bit length (the constant-time
/// countermeasure to the timing/SPA leakage of double-and-add). `bits`
/// fixes the ladder length (use 256 for secret scalars).
JacobianPoint scalar_mult_ladder(const U256& k, const AffinePoint& p,
                                 unsigned bits = 256);
/// Field-operation counters (mul+sqr) for the leakage demonstration; reset
/// and read around a scalar multiplication.
void reset_fieldop_count();
std::uint64_t fieldop_count();
/// k * G.
JacobianPoint scalar_mult_base(const U256& k);
/// u1*G + u2*Q (Shamir's trick), the ECDSA verification kernel.
JacobianPoint double_scalar_mult(const U256& u1, const U256& u2,
                                 const AffinePoint& q);

/// True iff (x, y) satisfies the curve equation and both coords < p.
bool on_curve(const AffinePoint& p);

/// Base point as affine.
AffinePoint generator();

}  // namespace aseck::crypto::p256
