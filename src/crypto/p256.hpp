#pragma once
// NIST P-256 (secp256r1) elliptic curve arithmetic: fast NIST modular
// reduction for the field prime, Jacobian-coordinate point operations, and
// scalar multiplication.
//
// Two multiplication tiers exist:
//  * the generic double-and-add / Montgomery-ladder routines (reference and
//    side-channel-model paths), and
//  * the verification fast path — a fixed-base 4-bit comb for k*G (precomputed
//    multiples of G built once, lazily, with Montgomery batch inversion) and a
//    4-bit-window wNAF interleaving for u1*G + u2*Q. These are what
//    ecdsa_verify/sign run on; the E17 bench measures the speedup.
//
// NOTE: scalar multiplication here is *not* constant-time; timing leakage of
// long-lived keys is exactly one of the side-channel classes the paper
// discusses, and src/sidechannel models it explicitly. Production silicon
// would use a hardened ladder.

#include <optional>
#include <vector>

#include "crypto/u256.hpp"

namespace aseck::crypto::p256 {

/// Field prime p, curve order n, and curve parameter b (a = -3).
const U256& P();
const U256& N();
const U256& B();
/// Base point (affine).
const U256& Gx();
const U256& Gy();

// --- Field arithmetic mod p -------------------------------------------------

U256 fadd(const U256& a, const U256& b);
U256 fsub(const U256& a, const U256& b);
/// Product with NIST P-256 fast reduction.
U256 fmul(const U256& a, const U256& b);
U256 fsqr(const U256& a);
U256 finv(const U256& a);
/// Reduces an arbitrary 512-bit value mod p (the fast reduction kernel).
U256 reduce_p(const U512& x);

// --- Points ------------------------------------------------------------------

/// Affine point; infinity encoded by `infinity == true`.
struct AffinePoint {
  U256 x, y;
  bool infinity = false;

  static AffinePoint make_infinity() { return AffinePoint{{}, {}, true}; }
  friend bool operator==(const AffinePoint&, const AffinePoint&) = default;
};

/// Jacobian point (X/Z^2, Y/Z^3); infinity encoded by Z == 0.
struct JacobianPoint {
  U256 x, y, z;

  static JacobianPoint make_infinity() { return JacobianPoint{}; }
  static JacobianPoint from_affine(const AffinePoint& p);
  bool is_infinity() const { return z.is_zero(); }
};

AffinePoint to_affine(const JacobianPoint& p);

/// Converts a batch of Jacobian points to affine with a single field
/// inversion (Montgomery's trick: prefix products, one finv, walk back).
/// Infinity entries are skipped — their z == 0 must never enter the product
/// chain — and map to affine infinity.
std::vector<AffinePoint> batch_to_affine(const std::vector<JacobianPoint>& in);

JacobianPoint dbl(const JacobianPoint& p);
/// Mixed addition: Jacobian + affine.
JacobianPoint add_mixed(const JacobianPoint& p, const AffinePoint& q);
JacobianPoint add(const JacobianPoint& p, const JacobianPoint& q);

/// k * P for affine P. k is used as-is (callers reduce mod n when required).
JacobianPoint scalar_mult(const U256& k, const AffinePoint& p);
/// Montgomery-ladder scalar multiplication: performs the same point-
/// operation sequence for every k of a given bit length (the constant-time
/// countermeasure to the timing/SPA leakage of double-and-add). `bits`
/// fixes the ladder length (use 256 for secret scalars).
JacobianPoint scalar_mult_ladder(const U256& k, const AffinePoint& p,
                                 unsigned bits = 256);
/// Field-operation counters (mul+sqr) for the leakage demonstration; reset
/// and read around a scalar multiplication.
void reset_fieldop_count();
std::uint64_t fieldop_count();
/// k * G via the fixed-base 4-bit comb table (64 windows x 15 odd/even
/// multiples of G, built once on first use).
JacobianPoint scalar_mult_base(const U256& k);
/// u1*G + u2*Q, the ECDSA verification kernel: wNAF expansions of u1
/// (width 8, static odd-G table) and u2 (width 4, per-call odd-Q table,
/// batch-inverted to affine) interleaved over one shared doubling chain.
JacobianPoint double_scalar_mult(const U256& u1, const U256& u2,
                                 const AffinePoint& q);
/// True iff pt's affine x-coordinate reduced mod the curve order equals r
/// (the final ECDSA verification comparison, 0 < r < n). Tests the
/// congruence X == r * Z^2 (mod p) — and the r + n second candidate —
/// instead of paying a field inversion for the affine conversion.
bool x_equals_mod_n(const JacobianPoint& pt, const U256& r);
/// Reference 1-bit interleaved Shamir double-and-add (the previous
/// double_scalar_mult). Kept as the slow path for bit-for-bit equivalence
/// tests and the E17 slow-vs-fast sweep.
JacobianPoint double_scalar_mult_shamir(const U256& u1, const U256& u2,
                                        const AffinePoint& q);

/// Recovers the affine point with the given x-coordinate and y-parity
/// (SEC1 compressed form). Returns nullopt when x >= p or x is not the
/// x-coordinate of any curve point. Since p == 3 (mod 4) the square root is
/// a single exponentiation by (p+1)/4.
std::optional<AffinePoint> decompress(const U256& x, bool y_odd);

/// One term of a multi-scalar multiplication: scalar * point.
struct MultiScalarTerm {
  U256 scalar;
  AffinePoint point;
};

/// g_scalar*G + sum_i terms[i].scalar * terms[i].point over ONE shared
/// doubling chain (Straus/interleaved wNAF): the G term reuses the static
/// width-8 odd-G table; each dynamic term gets a width-5 odd-multiple table
/// whose entries — across ALL terms — are normalised to affine with a single
/// shared Montgomery batch inversion. This is the batch-ECDSA kernel: the
/// 256 doublings and the inversion are paid once per batch instead of once
/// per signature.
JacobianPoint multi_scalar_mult(const U256& g_scalar,
                                const std::vector<MultiScalarTerm>& terms);
/// Forces construction of the lazy fixed-base tables (e.g. so benches can
/// exclude the one-time build from measurements). Idempotent.
void init_fixed_base_tables();

/// True iff (x, y) satisfies the curve equation and both coords < p.
bool on_curve(const AffinePoint& p);

/// Base point as affine.
AffinePoint generator();

}  // namespace aseck::crypto::p256
