#pragma once
// Deterministic random bit generator built on ChaCha20. All key material,
// nonces, and certificates in the library come from a Drbg so experiments
// are reproducible from a seed; a production build would seed it from a
// hardware TRNG (the SHE module models that entropy source).

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace aseck::crypto {

/// ChaCha20 block function (RFC 8439) exposed for tests.
void chacha20_block(const std::array<std::uint32_t, 8>& key, std::uint32_t counter,
                    const std::array<std::uint32_t, 3>& nonce, std::uint8_t out[64]);

class Drbg {
 public:
  /// Seeds from arbitrary bytes (hashed to the 256-bit ChaCha key).
  explicit Drbg(util::BytesView seed);
  explicit Drbg(std::uint64_t seed);

  /// Fills `out` with pseudorandom bytes.
  void generate(std::uint8_t* out, std::size_t n);
  util::Bytes bytes(std::size_t n);
  std::uint64_t next_u64();
  /// Uniform in [0, bound), rejection-sampled.
  std::uint64_t uniform(std::uint64_t bound);

  /// Mixes fresh entropy into the state (re-key).
  void reseed(util::BytesView entropy);

 private:
  void refill();
  std::array<std::uint32_t, 8> key_{};
  std::array<std::uint32_t, 3> nonce_{};
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, 64> block_{};
  std::size_t pos_ = 64;
};

}  // namespace aseck::crypto
