#include "crypto/u256.hpp"

#include <stdexcept>

namespace aseck::crypto {

U256 U256::from_hex(std::string_view hex) {
  if (hex.size() > 64) throw std::invalid_argument("U256::from_hex: too long");
  U256 r;
  // Process from the least-significant end.
  int limb = 0, shift = 0;
  for (auto it = hex.rbegin(); it != hex.rend(); ++it) {
    const char c = *it;
    std::uint32_t v;
    if (c >= '0' && c <= '9') v = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v = static_cast<std::uint32_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v = static_cast<std::uint32_t>(c - 'A' + 10);
    else throw std::invalid_argument("U256::from_hex: bad digit");
    r.w[static_cast<std::size_t>(limb)] |= v << shift;
    shift += 4;
    if (shift == 32) {
      shift = 0;
      ++limb;
    }
  }
  return r;
}

U256 U256::from_bytes(util::BytesView be) {
  if (be.size() > 32) throw std::invalid_argument("U256::from_bytes: too long");
  U256 r;
  std::size_t bit_pos = 0;
  for (std::size_t i = 0; i < be.size(); ++i) {
    const std::uint8_t byte = be[be.size() - 1 - i];
    r.w[bit_pos / 32] |= static_cast<std::uint32_t>(byte) << (bit_pos % 32);
    bit_pos += 8;
  }
  return r;
}

util::Bytes U256::to_bytes() const {
  util::Bytes out(32);
  for (std::size_t i = 0; i < 8; ++i) {
    util::store_be32(&out[4 * i], w[7 - i]);
  }
  return out;
}

std::string U256::to_hex() const { return util::to_hex(to_bytes()); }

bool U256::is_zero() const {
  for (auto v : w) {
    if (v) return false;
  }
  return true;
}

int U256::top_bit() const {
  for (int i = 7; i >= 0; --i) {
    if (w[static_cast<std::size_t>(i)]) {
      return 32 * i + 31 - __builtin_clz(w[static_cast<std::size_t>(i)]);
    }
  }
  return -1;
}

int cmp(const U256& a, const U256& b) {
  for (int i = 7; i >= 0; --i) {
    const auto ai = a.w[static_cast<std::size_t>(i)];
    const auto bi = b.w[static_cast<std::size_t>(i)];
    if (ai != bi) return ai < bi ? -1 : 1;
  }
  return 0;
}

bool operator<(const U256& a, const U256& b) { return cmp(a, b) < 0; }

std::uint32_t add(U256& out, const U256& a, const U256& b) {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint64_t t = std::uint64_t{a.w[i]} + b.w[i] + carry;
    out.w[i] = static_cast<std::uint32_t>(t);
    carry = t >> 32;
  }
  return static_cast<std::uint32_t>(carry);
}

std::uint32_t sub(U256& out, const U256& a, const U256& b) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint64_t t = std::uint64_t{a.w[i]} - b.w[i] - borrow;
    out.w[i] = static_cast<std::uint32_t>(t);
    borrow = (t >> 32) & 1;
  }
  return static_cast<std::uint32_t>(borrow);
}

std::uint32_t shl1(U256& v) {
  std::uint32_t carry = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint32_t next = v.w[i] >> 31;
    v.w[i] = (v.w[i] << 1) | carry;
    carry = next;
  }
  return carry;
}

void shr1(U256& v) {
  std::uint32_t carry = 0;
  for (int i = 7; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint32_t next = v.w[idx] & 1u;
    v.w[idx] = (v.w[idx] >> 1) | (carry << 31);
    carry = next;
  }
}

U512 mul(const U256& a, const U256& b) {
  // Schoolbook on 64-bit limbs with 128-bit partial products: 16 wide
  // multiplies instead of 64 narrow ones.
  std::uint64_t al[4], bl[4], rl[8] = {};
  for (std::size_t i = 0; i < 4; ++i) {
    al[i] = std::uint64_t{a.w[2 * i]} | (std::uint64_t{a.w[2 * i + 1]} << 32);
    bl[i] = std::uint64_t{b.w[2 * i]} | (std::uint64_t{b.w[2 * i + 1]} << 32);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const __uint128_t t = static_cast<__uint128_t>(al[i]) * bl[j] +
                            rl[i + j] + carry;
      rl[i + j] = static_cast<std::uint64_t>(t);
      carry = static_cast<std::uint64_t>(t >> 64);
    }
    rl[i + 4] = carry;
  }
  U512 r;
  for (std::size_t i = 0; i < 8; ++i) {
    r.w[2 * i] = static_cast<std::uint32_t>(rl[i]);
    r.w[2 * i + 1] = static_cast<std::uint32_t>(rl[i] >> 32);
  }
  return r;
}

U256 mod_generic(const U512& x, const U256& m) {
  if (m.is_zero()) throw std::invalid_argument("mod_generic: zero modulus");
  U256 r;  // remainder, always < m
  for (int bit = 511; bit >= 0; --bit) {
    const std::uint32_t carry = shl1(r);
    const std::uint32_t in =
        (x.w[static_cast<std::size_t>(bit / 32)] >> (bit % 32)) & 1u;
    r.w[0] |= in;
    // 2r+bit < 2m, so at most one subtraction restores r < m.
    if (carry || cmp(r, m) >= 0) {
      U256 t;
      sub(t, r, m);
      r = t;
    }
  }
  return r;
}

U256 mod_generic(const U256& x, const U256& m) {
  U512 wide;
  for (std::size_t i = 0; i < 8; ++i) wide.w[i] = x.w[i];
  return mod_generic(wide, m);
}

U256 add_mod(const U256& a, const U256& b, const U256& m) {
  U256 r;
  const std::uint32_t carry = add(r, a, b);
  if (carry || cmp(r, m) >= 0) {
    U256 t;
    sub(t, r, m);
    r = t;
  }
  return r;
}

U256 sub_mod(const U256& a, const U256& b, const U256& m) {
  U256 r;
  if (sub(r, a, b)) {
    U256 t;
    add(t, r, m);
    r = t;
  }
  return r;
}

U256 mul_mod(const U256& a, const U256& b, const U256& m) {
  return mod_generic(mul(a, b), m);
}

U256 pow_mod(const U256& a, const U256& e, const U256& m) {
  U256 result = U256::one();
  const int top = e.top_bit();
  if (top < 0) return mod_generic(result, m);
  U256 base = mod_generic(a, m);
  for (int i = top; i >= 0; --i) {
    if (i != top) result = mul_mod(result, result, m);
    if (e.bit(static_cast<unsigned>(i))) {
      result = (i == top) ? base : mul_mod(result, base, m);
    }
  }
  return result;
}

namespace {
/// x = x / 2 mod m for odd m: shift right, adding m first if x is odd.
void half_mod(U256& x, const U256& m) {
  std::uint32_t carry = 0;
  if (x.is_odd()) carry = add(x, x, m);
  shr1(x);
  if (carry) x.w[7] |= 0x80000000u;
}
}  // namespace

U256 inv_mod_prime(const U256& a, const U256& m) {
  // Binary extended GCD (m odd, gcd(a, m) = 1) — orders of magnitude faster
  // than Fermat exponentiation with generic reduction.
  U256 u = mod_generic(a, m);
  U256 v = m;
  U256 x1 = U256::one();
  U256 x2 = U256::zero();
  const U256 one = U256::one();
  while (!(u == one) && !(v == one)) {
    while (!u.is_odd()) {
      shr1(u);
      half_mod(x1, m);
    }
    while (!v.is_odd()) {
      shr1(v);
      half_mod(x2, m);
    }
    if (cmp(u, v) >= 0) {
      U256 t;
      sub(t, u, v);
      u = t;
      x1 = sub_mod(x1, x2, m);
    } else {
      U256 t;
      sub(t, v, u);
      v = t;
      x2 = sub_mod(x2, x1, m);
    }
  }
  return u == one ? x1 : x2;
}

}  // namespace aseck::crypto
