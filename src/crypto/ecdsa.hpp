#pragma once
// ECDSA over P-256 with SHA-256 (the signature suite of IEEE 1609.2 and the
// asymmetric option in Uptane), plus ECDH key agreement. Nonces are derived
// deterministically from (key, digest) in the spirit of RFC 6979 so that a
// given (key, message) pair always produces the same signature — this keeps
// simulations reproducible and eliminates nonce-reuse bugs by construction.

#include <optional>

#include "crypto/drbg.hpp"
#include "crypto/p256.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace aseck::crypto {

struct EcdsaSignature {
  U256 r, s;

  /// y-parity of the signer's nonce point R, when known — the IEEE 1609.2
  /// compressed-y signer hint. Signers set it only when R.x < n (so r
  /// identifies R.x unambiguously); it is absent after a bare r||s wire
  /// round trip. Purely an acceleration hint: batch verification uses it to
  /// decompress R without a per-item fallback, and a wrong or missing hint
  /// costs performance, never correctness. Equality ignores it.
  static constexpr std::uint8_t kNoRParity = 0xff;
  std::uint8_t r_parity = kNoRParity;
  bool has_r_parity() const { return r_parity <= 1; }

  /// 64-byte r||s serialization (the parity hint is not serialized).
  util::Bytes to_bytes() const;
  static std::optional<EcdsaSignature> from_bytes(util::BytesView b);
  friend bool operator==(const EcdsaSignature& a, const EcdsaSignature& b) {
    return a.r == b.r && a.s == b.s;
  }
};

struct EcdsaPublicKey {
  p256::AffinePoint point;

  /// Uncompressed SEC1 encoding: 0x04 || X || Y (65 bytes).
  util::Bytes to_bytes() const;
  static std::optional<EcdsaPublicKey> from_bytes(util::BytesView b);
  bool valid() const { return p256::on_curve(point); }
  friend bool operator==(const EcdsaPublicKey&, const EcdsaPublicKey&) = default;
};

class EcdsaPrivateKey {
 public:
  /// Generates a key from the DRBG.
  static EcdsaPrivateKey generate(Drbg& rng);
  /// Deterministic key from a 32-byte secret (reduced mod n; must be nonzero).
  static EcdsaPrivateKey from_secret(util::BytesView secret32);

  const U256& scalar() const { return d_; }
  const EcdsaPublicKey& public_key() const { return pub_; }

  /// Signs a message (hashes with SHA-256 internally).
  EcdsaSignature sign(util::BytesView msg) const;
  /// Signs a precomputed digest.
  EcdsaSignature sign_digest(const Digest& digest) const;

 private:
  EcdsaPrivateKey(U256 d);
  U256 d_;
  EcdsaPublicKey pub_;
};

/// Verifies signature over a message (SHA-256 internally).
bool ecdsa_verify(const EcdsaPublicKey& pub, util::BytesView msg,
                  const EcdsaSignature& sig);
bool ecdsa_verify_digest(const EcdsaPublicKey& pub, const Digest& digest,
                         const EcdsaSignature& sig);
/// Reference verification on the 1-bit Shamir double-scalar path. Must agree
/// bit-for-bit with ecdsa_verify_digest; kept for equivalence tests and the
/// E17 slow-vs-fast throughput sweep.
bool ecdsa_verify_digest_slow(const EcdsaPublicKey& pub, const Digest& digest,
                              const EcdsaSignature& sig);

namespace detail {
/// The counter-th deterministic nonce candidate for (d, digest), reduced mod
/// n. Exposed so tests can prove the candidate stream never repeats (the
/// former std::uint8_t retry counter wrapped at 256, silently re-offering
/// the same candidates).
U256 nonce_candidate(const U256& d, const Digest& digest,
                     std::uint32_t counter);
/// Digest -> integer mod n (leftmost-bits rule). Shared with the batch
/// verifier so both paths reduce the message hash identically.
U256 digest_to_scalar(const Digest& d);
}  // namespace detail

/// ECDH: shared secret = x-coordinate of d * Q, expanded through HKDF with
/// the given info label. Returns nullopt for invalid peer keys.
std::optional<util::Bytes> ecdh_shared(const EcdsaPrivateKey& mine,
                                       const EcdsaPublicKey& peer,
                                       util::BytesView info, std::size_t len);

}  // namespace aseck::crypto
