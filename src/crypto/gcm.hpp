#pragma once
// AES-GCM (NIST SP 800-38D) authenticated encryption. Used by the secure
// diagnostics/cloud channel and smart-key session layer.

#include <optional>

#include "crypto/aes.hpp"
#include "util/bytes.hpp"

namespace aseck::crypto {

struct GcmResult {
  util::Bytes ciphertext;
  std::array<std::uint8_t, 16> tag;
};

/// Encrypts `plain` with 96-bit IV and additional authenticated data.
GcmResult aes_gcm_encrypt(const Aes& aes, util::BytesView iv96,
                          util::BytesView aad, util::BytesView plain);

/// Decrypts and verifies; returns nullopt on authentication failure.
std::optional<util::Bytes> aes_gcm_decrypt(const Aes& aes, util::BytesView iv96,
                                           util::BytesView aad,
                                           util::BytesView cipher,
                                           util::BytesView tag);

}  // namespace aseck::crypto
