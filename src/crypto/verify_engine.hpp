#pragma once
// ECDSA verification engine: the shared front door for every
// signature-consuming substrate (V2X BSM receive path, certificate chain
// validation, OTA metadata verification).
//
// What it adds over bare ecdsa_verify:
//  * a bounded LRU verify-result cache keyed by SHA-256(digest || pubkey ||
//    signature) — V2X re-verifies identical (message, cert) pairs whenever a
//    sender's beacon reaches several receivers or a chain is re-walked, and
//    production 1609.2 stacks cache exactly this way;
//  * a batch-verify API that amortizes cache probes over a burst of SPDUs
//    (the per-simulation-step receive queue);
//  * shared MetricsRegistry export: crypto.verify.{calls,cache_hits,
//    evictions} counters and a crypto.verify.latency_us histogram.
//
// The engine is deliberately single-threaded and allocation-light: the sim
// is single-threaded and bit-deterministic, and the cache (ordered map, no
// hashing, no clocks on the unbound path) preserves that.

#include <cstdint>
#include <vector>

#include "crypto/ecdsa.hpp"
#include "crypto/sha256.hpp"
#include "sim/telemetry.hpp"
#include "util/lru.hpp"

namespace aseck::crypto {

class VerifyEngine {
 public:
  static constexpr std::size_t kDefaultCacheCapacity = 4096;

  explicit VerifyEngine(std::size_t cache_capacity = kDefaultCacheCapacity)
      : cache_(cache_capacity) {}

  /// Verifies a precomputed digest; consults/fills the result cache.
  bool verify_digest(const EcdsaPublicKey& pub, const Digest& digest,
                     const EcdsaSignature& sig);
  /// Hashes `msg` with SHA-256 and verifies.
  bool verify(const EcdsaPublicKey& pub, util::BytesView msg,
              const EcdsaSignature& sig);

  struct BatchItem {
    const EcdsaPublicKey* pub = nullptr;
    Digest digest{};
    const EcdsaSignature* sig = nullptr;
  };
  /// Verifies each item (cache-assisted), returning per-item verdicts in
  /// order. Equivalent to calling verify_digest per item but keeps the whole
  /// burst on one engine so repeated (digest, key, sig) triples in a receive
  /// queue hit the cache.
  std::vector<bool> verify_batch(const std::vector<BatchItem>& items);

  /// Exports counters/latency onto a shared registry (idempotent; later
  /// verifications also tick the registry instruments). Counter values
  /// accumulated before binding are carried over.
  void bind_metrics(sim::MetricsRegistry& reg);

  std::uint64_t calls() const { return calls_; }
  std::uint64_t cache_hits() const { return cache_.hits(); }
  std::uint64_t evictions() const { return cache_.evictions(); }
  std::size_t cache_size() const { return cache_.size(); }
  std::size_t cache_capacity() const { return cache_.capacity(); }
  void set_cache_capacity(std::size_t cap);

 private:
  static Digest cache_key(const EcdsaPublicKey& pub, const Digest& digest,
                          const EcdsaSignature& sig);

  util::LruCache<Digest, bool> cache_;
  std::uint64_t calls_ = 0;
  sim::Counter* c_calls_ = nullptr;
  sim::Counter* c_hits_ = nullptr;
  sim::Counter* c_evictions_ = nullptr;
  sim::LatencyHistogram* h_latency_us_ = nullptr;
  std::uint64_t exported_evictions_ = 0;
};

}  // namespace aseck::crypto
