#pragma once
// ECDSA verification engine: the shared front door for every
// signature-consuming substrate (V2X BSM receive path, certificate chain
// validation, OTA metadata verification).
//
// What it adds over bare ecdsa_verify:
//  * a bounded LRU verify-result cache keyed by SHA-256(digest || pubkey ||
//    signature) — V2X re-verifies identical (message, cert) pairs whenever a
//    sender's beacon reaches several receivers or a chain is re-walked, and
//    production 1609.2 stacks cache exactly this way;
//  * a batch-verify API that amortizes cache probes over a burst of SPDUs
//    and (opt-in) routes the misses through the true batch kernel
//    (ecdsa_verify_batch): one random-linear-combination check and one
//    shared Montgomery batch inversion per burst instead of a full
//    double-scalar-mult per item;
//  * shared MetricsRegistry export: crypto.verify.{calls,cache_hits,
//    evictions,primitive,batched} counters and a crypto.verify.batch_items
//    histogram of kernel batch sizes.
//
// Every exported instrument is a deterministic function of the verify
// workload — no wall-clock content — so merged registries can feed digest
// JSON that must be byte-identical across runs and thread counts. Wall-clock
// timing lives in the benches, next to the other timing, not here.
//
// The engine is deliberately single-threaded and allocation-light: callers
// that want parallelism run one engine per VerifyPool lane.

#include <cstdint>
#include <vector>

#include "crypto/batch_verify.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/sha256.hpp"
#include "sim/telemetry.hpp"
#include "util/lru.hpp"

namespace aseck::crypto {

class VerifyEngine {
 public:
  static constexpr std::size_t kDefaultCacheCapacity = 4096;

  explicit VerifyEngine(std::size_t cache_capacity = kDefaultCacheCapacity)
      : cache_(cache_capacity) {}

  /// Verifies a precomputed digest; consults/fills the result cache.
  bool verify_digest(const EcdsaPublicKey& pub, const Digest& digest,
                     const EcdsaSignature& sig);
  /// Hashes `msg` with SHA-256 and verifies.
  bool verify(const EcdsaPublicKey& pub, util::BytesView msg,
              const EcdsaSignature& sig);

  using BatchItem = BatchVerifyItem;
  /// Verifies each item (cache-assisted), returning per-item verdicts in
  /// order — including null-pointer items, which verdict false and still
  /// count as calls. Duplicate triples within the burst are resolved once.
  /// With the batch kernel enabled, cache misses go through
  /// ecdsa_verify_batch; verdicts are identical either way.
  std::vector<bool> verify_batch(const std::vector<BatchItem>& items);

  /// Routes verify_batch misses through the RLC batch kernel when the burst
  /// has at least `min_batch` of them. Off by default (per-item path).
  void set_batch_kernel(bool on, std::size_t min_batch = 2) {
    batch_kernel_ = on;
    batch_min_ = min_batch < 1 ? 1 : min_batch;
  }
  bool batch_kernel() const { return batch_kernel_; }
  /// Extra entropy folded into the kernel's randomizer transcript.
  void set_batch_salt(util::Bytes salt) { salt_ = std::move(salt); }
  /// Kernel work accounting (RLC checks, bisections, fallbacks).
  const BatchVerifyStats& batch_stats() const { return batch_stats_; }

  /// Exports counters onto a shared registry (idempotent; later
  /// verifications also tick the registry instruments). Totals accumulated
  /// before binding are carried over — for every counter alike, so a fresh
  /// registry always ends up matching the engine's own view.
  void bind_metrics(sim::MetricsRegistry& reg);

  std::uint64_t calls() const { return calls_; }
  /// LRU hits plus in-burst duplicate resolutions.
  std::uint64_t cache_hits() const { return cache_.hits() + alias_hits_; }
  std::uint64_t evictions() const { return cache_.evictions(); }
  /// Verifications that reached real point arithmetic (cache misses).
  std::uint64_t primitive_calls() const { return primitive_; }
  /// Of those, how many were resolved through the batch kernel.
  std::uint64_t batched_calls() const { return batched_; }
  std::size_t cache_size() const { return cache_.size(); }
  std::size_t cache_capacity() const { return cache_.capacity(); }
  void set_cache_capacity(std::size_t cap);

 private:
  static Digest cache_key(const EcdsaPublicKey& pub, const Digest& digest,
                          const EcdsaSignature& sig);
  /// Ticks the bound eviction counter up to the cache's current total.
  void sync_evictions();

  util::LruCache<Digest, bool> cache_;
  std::uint64_t calls_ = 0;
  std::uint64_t alias_hits_ = 0;
  std::uint64_t primitive_ = 0;
  std::uint64_t batched_ = 0;
  bool batch_kernel_ = false;
  std::size_t batch_min_ = 2;
  util::Bytes salt_;
  BatchVerifyStats batch_stats_;
  sim::Counter* c_calls_ = nullptr;
  sim::Counter* c_hits_ = nullptr;
  sim::Counter* c_evictions_ = nullptr;
  sim::Counter* c_primitive_ = nullptr;
  sim::Counter* c_batched_ = nullptr;
  sim::LatencyHistogram* h_batch_items_ = nullptr;
  /// Cache evictions already reflected into the *currently bound* counter;
  /// reset at bind time after the full-total carry (the old code instead
  /// carried only the un-exported delta into fresh registries).
  std::uint64_t synced_evictions_ = 0;
};

}  // namespace aseck::crypto
