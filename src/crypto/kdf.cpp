#include "crypto/kdf.hpp"

#include <cstring>
#include <stdexcept>

namespace aseck::crypto {

Block mp_compress(util::BytesView msg, bool she_padding) {
  util::Bytes data(msg.begin(), msg.end());
  if (she_padding) {
    // SHE padding: 1-bit, zero fill, 40-bit big-endian message bit length in
    // the last 5 bytes of the final block.
    const std::uint64_t bit_len = static_cast<std::uint64_t>(msg.size()) * 8;
    data.push_back(0x80);
    while (data.size() % kAesBlockSize != kAesBlockSize - 5) data.push_back(0);
    util::append_be(data, bit_len, 5);
  } else if (data.size() % kAesBlockSize != 0) {
    throw std::invalid_argument("mp_compress: unaligned input without padding");
  }
  Block h{};
  for (std::size_t off = 0; off < data.size(); off += kAesBlockSize) {
    Block m;
    std::memcpy(m.data(), &data[off], kAesBlockSize);
    const Block e = Aes(util::BytesView(h.data(), h.size())).encrypt(m);
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      h[i] = static_cast<std::uint8_t>(e[i] ^ h[i] ^ m[i]);
    }
  }
  return h;
}

Block she_kdf(const Block& key, const Block& c) {
  // The SHE constants already carry the padding/length encoding, so the
  // compression runs over exactly the two blocks K || C.
  util::Bytes msg(key.begin(), key.end());
  msg.insert(msg.end(), c.begin(), c.end());
  return mp_compress(msg, /*she_padding=*/false);
}

namespace {
Block make_constant(std::uint8_t id) {
  // SHE spec constants, e.g. KEY_UPDATE_ENC_C =
  // 0x0101534845008000_00000000000000B0: prefix 0x01, usage id, "SHE",
  // 0x00 0x80 pad marker, and 0xB0 trailer.
  Block c{};
  c[0] = 0x01;
  c[1] = id;
  c[2] = 0x53;  // 'S'
  c[3] = 0x48;  // 'H'
  c[4] = 0x45;  // 'E'
  c[5] = 0x00;
  c[6] = 0x80;
  c[15] = 0xB0;
  return c;
}
}  // namespace

const Block& she_key_update_enc_c() {
  static const Block c = make_constant(0x01);
  return c;
}
const Block& she_key_update_mac_c() {
  static const Block c = make_constant(0x02);
  return c;
}
const Block& she_debug_key_c() {
  static const Block c = make_constant(0x03);
  return c;
}
const Block& she_prng_key_c() {
  static const Block c = make_constant(0x04);
  return c;
}

}  // namespace aseck::crypto
