#include "access/immobilizer.hpp"

namespace aseck::access {

Immobilizer::Immobilizer(std::uint64_t paired_key40, std::uint64_t seed)
    : expected_(paired_key40), rng_(seed) {}

bool Immobilizer::authorize(const Transponder& presented) {
  ++rounds_;
  const std::uint64_t challenge = rng_.next_u64() & crypto::Dst40::kChallengeMask;
  return presented.respond(challenge) == expected_.respond(challenge);
}

CrackResult crack_transponder(
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& observed_pairs,
    std::uint64_t true_key_hint, unsigned key_bits) {
  CrackResult out;
  if (observed_pairs.empty() || key_bits > 40) return out;
  const std::uint64_t space = 1ULL << key_bits;
  const std::uint64_t base = (true_key_hint & crypto::Dst40::kKeyMask) &
                             ~(space - 1);  // known upper bits
  for (std::uint64_t low = 0; low < space; ++low) {
    const std::uint64_t candidate = base | low;
    ++out.keys_tried;
    const crypto::Dst40 c(candidate);
    bool all_match = true;
    std::size_t used = 0;
    for (const auto& [challenge, response] : observed_pairs) {
      ++used;
      if (c.respond(challenge) != response) {
        all_match = false;
        break;
      }
      // Two pairs disambiguate almost surely (24-bit responses).
      if (used >= 2) break;
    }
    if (all_match) {
      out.found = true;
      out.key = candidate;
      out.pairs_needed = used;
      return out;
    }
  }
  return out;
}

}  // namespace aseck::access
