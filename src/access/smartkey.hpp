#pragma once
// Smart-device car access (the "+1" layer innovations the paper lists:
// remote lock/unlock, passive start, phone-as-key). ECDH-established session
// keys, server-issued access tokens with expiry and capability bits, and
// immediate revocation — contrast with the fixed-key fob of pkes.hpp.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "crypto/ecdsa.hpp"
#include "crypto/gcm.hpp"
#include "util/time.hpp"

namespace aseck::access {

using util::SimTime;

enum class Capability { kUnlock, kStart, kTrunkOnly, kMonitor };

/// Access token: issued by the owner's cloud account for a device key.
struct AccessToken {
  std::string device_id;
  crypto::EcdsaPublicKey device_key;
  std::set<Capability> capabilities;
  SimTime expires;
  crypto::EcdsaSignature server_sig;

  util::Bytes tbs() const;
};

/// Owner cloud service: issues and revokes tokens.
class KeyServer {
 public:
  explicit KeyServer(crypto::Drbg& rng);

  const crypto::EcdsaPublicKey& public_key() const { return key_.public_key(); }

  AccessToken issue(const std::string& device_id,
                    const crypto::EcdsaPublicKey& device_key,
                    std::set<Capability> caps, SimTime expires);
  void revoke(const std::string& device_id) { revoked_.insert(device_id); }
  bool is_revoked(const std::string& device_id) const {
    return revoked_.count(device_id) > 0;
  }

 private:
  crypto::EcdsaPrivateKey key_;
  std::set<std::string> revoked_;
};

/// Vehicle-side smart access controller.
class SmartAccess {
 public:
  SmartAccess(const crypto::EcdsaPublicKey& server_key, const KeyServer* revocation);

  enum class Result { kGranted, kBadToken, kExpired, kRevoked, kNoCapability,
                      kBadSignature };

  /// Device presents its token and proves key possession by signing a fresh
  /// challenge (supplied by the car as `challenge` and signed as `proof`).
  Result request(const AccessToken& token, Capability want, SimTime now,
                 util::BytesView challenge, const crypto::EcdsaSignature& proof);

  static const char* result_name(Result r);

 private:
  crypto::EcdsaPublicKey server_key_;
  const KeyServer* revocation_;
};

}  // namespace aseck::access
