#include "access/pkes.hpp"

namespace aseck::access {

KeyFob::KeyFob(const crypto::Block& key, double process_us)
    : cmac_(util::BytesView(key.data(), key.size())), process_us_(process_us) {}

crypto::Block KeyFob::respond(const crypto::Block& challenge) const {
  return cmac_.tag(util::BytesView(challenge.data(), challenge.size()));
}

PkesCar::PkesCar(const crypto::Block& key, PkesConfig cfg, std::uint64_t seed)
    : cmac_(util::BytesView(key.data(), key.size())), cfg_(cfg), rng_(seed) {}

PkesCar::Attempt PkesCar::try_unlock(const KeyFob& fob, double fob_distance_m,
                                     const RelayAttacker& relay) {
  Attempt a;

  // Can the LF challenge reach the fob at all?
  double effective_distance = fob_distance_m;
  double extra_delay_us = 0;
  if (relay.active) {
    // The relay captures the LF field near the car and replays it near the
    // fob: range check is against the station distances instead.
    if (relay.station_to_car_m > cfg_.lf_range_m ||
        relay.station_to_fob_m > cfg_.lf_range_m) {
      a.out_of_range = true;
      return a;
    }
    // Two relay hops (challenge out, response back) over the link.
    extra_delay_us = 2.0 * (relay.link_latency_us + relay.process_us) +
                     (relay.station_to_car_m + relay.station_to_fob_m) /
                         cfg_.speed_of_light_m_per_us;
    effective_distance = relay.station_to_car_m;  // fob hears the station
  } else if (fob_distance_m > cfg_.lf_range_m) {
    a.out_of_range = true;
    return a;
  }

  // Challenge-response.
  crypto::Block challenge;
  for (auto& b : challenge) b = static_cast<std::uint8_t>(rng_.next_u64());
  const crypto::Block response = fob.respond(challenge);
  a.response_valid =
      util::ct_equal(util::BytesView(response.data(), 16),
                     util::BytesView(cmac_.tag(util::BytesView(challenge.data(), 16)).data(), 16));

  // Round-trip time: propagation both ways + fob processing + relay delays.
  const double prop_us = 2.0 * effective_distance / cfg_.speed_of_light_m_per_us;
  a.rtt_us = prop_us + fob.processing_us() + extra_delay_us +
             rng_.gaussian(0.0, 0.5);  // measurement jitter

  if (cfg_.rtt_limit_us > 0 && a.rtt_us > cfg_.rtt_limit_us) {
    a.rtt_rejected = true;
    a.unlocked = false;
    return a;
  }
  a.unlocked = a.response_valid;
  return a;
}

}  // namespace aseck::access
