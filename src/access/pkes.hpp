#pragma once
// Passive Keyless Entry and Start (PKES) with the relay attack of
// Francillon et al. (NDSS 2011), and the distance-bounding countermeasure.
//
// Physics model: the LF challenge reaches ~2 m; the fob answers over UHF.
// The car measures the challenge->response round-trip time. A relay pair
// extends the LF range but cannot beat the speed of light: every relayed
// exchange adds processing + propagation delay, which a tight RTT bound
// detects. The attack's success is purely a function of the RTT budget —
// exactly what experiment E8 sweeps.

#include <cstdint>
#include <optional>

#include "crypto/cmac.hpp"
#include "util/rng.hpp"

namespace aseck::access {

/// Key fob with an AES-CMAC challenge-response credential.
class KeyFob {
 public:
  KeyFob(const crypto::Block& key, double process_us = 300.0);

  /// Computes the response tag for a challenge.
  crypto::Block respond(const crypto::Block& challenge) const;
  double processing_us() const { return process_us_; }

 private:
  crypto::Cmac cmac_;
  double process_us_;
};

struct PkesConfig {
  double lf_range_m = 2.0;           // challenge reach
  double speed_of_light_m_per_us = 299.8;
  double rtt_limit_us = 0;           // 0 = no distance bounding
};

/// Relay attacker: one station near the car, one near the fob, connected by
/// a link with `link_latency_us` one-way (cable, RF, or IP).
struct RelayAttacker {
  bool active = false;
  double station_to_car_m = 0.5;
  double station_to_fob_m = 0.5;
  double link_latency_us = 20.0;
  double process_us = 5.0;  // per-station amplification/retransmit cost
};

/// Vehicle-side PKES unit.
class PkesCar {
 public:
  PkesCar(const crypto::Block& key, PkesConfig cfg, std::uint64_t seed);

  struct Attempt {
    bool unlocked = false;
    bool response_valid = false;
    double rtt_us = 0;
    bool rtt_rejected = false;
    bool out_of_range = false;
  };

  /// Tries to unlock with the fob at `fob_distance_m` from the car,
  /// optionally through a relay.
  Attempt try_unlock(const KeyFob& fob, double fob_distance_m,
                     const RelayAttacker& relay = {});

  const PkesConfig& config() const { return cfg_; }
  void set_rtt_limit(double us) { cfg_.rtt_limit_us = us; }

 private:
  crypto::Cmac cmac_;
  PkesConfig cfg_;
  util::Rng rng_;
};

}  // namespace aseck::access
