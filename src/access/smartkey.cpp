#include "access/smartkey.hpp"

namespace aseck::access {

util::Bytes AccessToken::tbs() const {
  util::Bytes out;
  out.insert(out.end(), device_id.begin(), device_id.end());
  out.push_back(0);
  const util::Bytes kb = device_key.to_bytes();
  out.insert(out.end(), kb.begin(), kb.end());
  for (Capability c : capabilities) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
  util::append_be(out, expires.ns, 8);
  return out;
}

KeyServer::KeyServer(crypto::Drbg& rng)
    : key_(crypto::EcdsaPrivateKey::generate(rng)) {}

AccessToken KeyServer::issue(const std::string& device_id,
                             const crypto::EcdsaPublicKey& device_key,
                             std::set<Capability> caps, SimTime expires) {
  AccessToken t;
  t.device_id = device_id;
  t.device_key = device_key;
  t.capabilities = std::move(caps);
  t.expires = expires;
  t.server_sig = key_.sign(t.tbs());
  return t;
}

SmartAccess::SmartAccess(const crypto::EcdsaPublicKey& server_key,
                         const KeyServer* revocation)
    : server_key_(server_key), revocation_(revocation) {}

SmartAccess::Result SmartAccess::request(const AccessToken& token,
                                         Capability want, SimTime now,
                                         util::BytesView challenge,
                                         const crypto::EcdsaSignature& proof) {
  if (!crypto::ecdsa_verify(server_key_, token.tbs(), token.server_sig)) {
    return Result::kBadToken;
  }
  if (now > token.expires) return Result::kExpired;
  if (revocation_ && revocation_->is_revoked(token.device_id)) {
    return Result::kRevoked;
  }
  if (!token.capabilities.count(want)) return Result::kNoCapability;
  if (!crypto::ecdsa_verify(token.device_key, challenge, proof)) {
    return Result::kBadSignature;
  }
  return Result::kGranted;
}

const char* SmartAccess::result_name(Result r) {
  switch (r) {
    case Result::kGranted: return "granted";
    case Result::kBadToken: return "bad_token";
    case Result::kExpired: return "expired";
    case Result::kRevoked: return "revoked";
    case Result::kNoCapability: return "no_capability";
    case Result::kBadSignature: return "bad_signature";
  }
  return "?";
}

}  // namespace aseck::access
