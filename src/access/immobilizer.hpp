#pragma once
// Engine immobilizer with a DST40-like transponder (paper Section 4.3 and
// the Bono et al. USENIX Security 2005 attack): the car challenges the key's
// transponder; a 40-bit proprietary cipher authorizes engine start. The
// short key makes exhaustive search tractable — `crack_transponder` measures
// exactly that, parameterized by key-space bits so benches can extrapolate.

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/dst40.hpp"
#include "util/rng.hpp"

namespace aseck::access {

/// The key-fob transponder (victim device).
class Transponder {
 public:
  explicit Transponder(std::uint64_t key40) : cipher_(key40) {}
  std::uint32_t respond(std::uint64_t challenge) const {
    return cipher_.respond(challenge);
  }

 private:
  crypto::Dst40 cipher_;
};

/// Vehicle-side immobilizer unit.
class Immobilizer {
 public:
  Immobilizer(std::uint64_t paired_key40, std::uint64_t seed);

  /// One authentication round: challenge the presented transponder; true if
  /// the engine may start.
  bool authorize(const Transponder& presented);

  std::uint64_t rounds() const { return rounds_; }

 private:
  crypto::Dst40 expected_;
  util::Rng rng_;
  std::uint64_t rounds_ = 0;
};

/// Exhaustive key search from eavesdropped challenge/response pairs.
/// `key_bits` restricts the search to keys whose upper (40 - key_bits) bits
/// match the true key (i.e. the attacker knows them), so the bench can
/// measure cost on a subspace and extrapolate to the full 2^40.
struct CrackResult {
  bool found = false;
  std::uint64_t key = 0;
  std::uint64_t keys_tried = 0;
  std::size_t pairs_needed = 0;  // pairs consumed to disambiguate
};
CrackResult crack_transponder(
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& observed_pairs,
    std::uint64_t true_key_hint, unsigned key_bits);

}  // namespace aseck::access
