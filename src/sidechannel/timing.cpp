#include "sidechannel/timing.hpp"

#include "util/stats.hpp"

namespace aseck::sidechannel {

TimingLeakyVerifier::TimingLeakyVerifier(util::Bytes secret, double per_byte_ns,
                                         double jitter_ns, bool constant_time,
                                         std::uint64_t seed)
    : secret_(std::move(secret)),
      per_byte_ns_(per_byte_ns),
      jitter_ns_(jitter_ns),
      constant_time_(constant_time),
      rng_(seed) {}

TimingLeakyVerifier::Response TimingLeakyVerifier::try_code(util::BytesView code) {
  ++attempts_;
  std::size_t compared = 0;
  bool equal = code.size() == secret_.size();
  if (constant_time_) {
    compared = secret_.size();
    if (equal) equal = util::ct_equal(code, secret_);
  } else {
    // Early-exit comparison: time reveals the matching prefix length.
    for (std::size_t i = 0; i < std::min(code.size(), secret_.size()); ++i) {
      ++compared;
      if (code[i] != secret_[i]) {
        equal = false;
        break;
      }
    }
  }
  const double elapsed = static_cast<double>(compared) * per_byte_ns_ +
                         rng_.gaussian(0.0, jitter_ns_);
  return Response{equal, elapsed};
}

util::Bytes timing_attack(TimingLeakyVerifier& device, std::size_t secret_len,
                          std::size_t samples) {
  util::Bytes guess(secret_len, 0);
  for (std::size_t pos = 0; pos < secret_len; ++pos) {
    double best_mean = -1e300;
    std::uint8_t best_byte = 0;
    for (int v = 0; v < 256; ++v) {
      guess[pos] = static_cast<std::uint8_t>(v);
      util::RunningStats lat;
      for (std::size_t s = 0; s < samples; ++s) {
        const auto resp = device.try_code(guess);
        if (resp.accepted) return guess;  // full match found early
        lat.add(resp.elapsed_ns);
      }
      if (lat.mean() > best_mean) {
        best_mean = lat.mean();
        best_byte = static_cast<std::uint8_t>(v);
      }
    }
    guess[pos] = best_byte;
  }
  return guess;
}

}  // namespace aseck::sidechannel
