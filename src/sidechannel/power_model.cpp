#include "sidechannel/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace aseck::sidechannel {

LeakyAesDevice::LeakyAesDevice(const crypto::Block& key, LeakageConfig cfg,
                               std::uint64_t seed)
    : key_(key), cfg_(cfg), noise_rng_(seed) {}

Trace LeakyAesDevice::capture_chosen(const std::array<std::uint8_t, 16>& pt) {
  Trace t;
  t.plaintext = pt;
  t.samples.resize(16);

  std::array<int, 16> order;
  for (int i = 0; i < 16; ++i) order[static_cast<std::size_t>(i)] = i;
  if (cfg_.countermeasure == Countermeasure::kShuffling) {
    std::vector<int> v(order.begin(), order.end());
    noise_rng_.shuffle(v);
    std::copy(v.begin(), v.end(), order.begin());
  }

  for (int slot = 0; slot < 16; ++slot) {
    const int b = order[static_cast<std::size_t>(slot)];
    std::uint8_t intermediate = crypto::aes_sbox(
        static_cast<std::uint8_t>(pt[static_cast<std::size_t>(b)] ^
                                  key_[static_cast<std::size_t>(b)]));
    if (cfg_.countermeasure == Countermeasure::kMasking) {
      // Device computes on the masked share; the unmasked value never
      // appears, so only HW(sbox(x) ^ m) with uniform fresh m leaks.
      const auto mask = static_cast<std::uint8_t>(noise_rng_.next_u64());
      intermediate = static_cast<std::uint8_t>(intermediate ^ mask);
    }
    t.samples[static_cast<std::size_t>(slot)] =
        static_cast<double>(util::hamming_weight(intermediate)) +
        noise_rng_.gaussian(0.0, cfg_.noise_sigma);
  }
  return t;
}

Trace LeakyAesDevice::capture(util::Rng& plaintext_rng) {
  std::array<std::uint8_t, 16> pt;
  const util::Bytes r = plaintext_rng.bytes(16);
  std::copy(r.begin(), r.end(), pt.begin());
  return capture_chosen(pt);
}

int CpaResult::correct_bytes(const crypto::Block& true_key) const {
  int n = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    if (recovered_key[i] == true_key[i]) ++n;
  }
  return n;
}

CpaResult cpa_attack(const std::vector<Trace>& traces) {
  CpaResult result;
  if (traces.size() < 2) return result;  // pearson needs n >= 2
  const std::size_t n = traces.size();
  const std::size_t points = traces[0].samples.size();

  for (std::size_t byte = 0; byte < 16; ++byte) {
    double best_corr = -1.0;
    std::uint8_t best_guess = 0;
    std::vector<double> hyp(n);
    for (int guess = 0; guess < 256; ++guess) {
      for (std::size_t i = 0; i < n; ++i) {
        hyp[i] = static_cast<double>(util::hamming_weight(crypto::aes_sbox(
            static_cast<std::uint8_t>(traces[i].plaintext[byte] ^ guess))));
      }
      // Correlate against every sample point (shuffling spreads leakage).
      for (std::size_t p = 0; p < points; ++p) {
        std::vector<double> col(n);
        for (std::size_t i = 0; i < n; ++i) col[i] = traces[i].samples[p];
        const double corr = std::abs(util::pearson(hyp, col));
        if (corr > best_corr) {
          best_corr = corr;
          best_guess = static_cast<std::uint8_t>(guess);
        }
      }
    }
    result.recovered_key[byte] = best_guess;
    result.best_correlation[byte] = best_corr;
  }
  return result;
}

std::size_t cpa_traces_needed(LeakyAesDevice& device, util::Rng& rng,
                              const std::vector<std::size_t>& schedule) {
  std::vector<Trace> traces;
  for (std::size_t target : schedule) {
    while (traces.size() < target) traces.push_back(device.capture(rng));
    const CpaResult r = cpa_attack(traces);
    if (r.correct_bytes(device.key()) == 16) return target;
  }
  return 0;
}

double tvla_max_t(LeakyAesDevice& device, util::Rng& rng,
                  std::size_t traces_per_class) {
  // Fixed-vs-random: class A uses one fixed plaintext, class B random ones.
  std::array<std::uint8_t, 16> fixed{};
  fixed.fill(0x5a);
  std::vector<util::RunningStats> a(16), b(16);
  for (std::size_t i = 0; i < traces_per_class; ++i) {
    const Trace ta = device.capture_chosen(fixed);
    const Trace tb = device.capture(rng);
    for (std::size_t p = 0; p < 16; ++p) {
      a[p].add(ta.samples[p]);
      b[p].add(tb.samples[p]);
    }
  }
  double max_t = 0.0;
  for (std::size_t p = 0; p < 16; ++p) {
    max_t = std::max(max_t, std::abs(util::welch_t(a[p], b[p])));
  }
  return max_t;
}

}  // namespace aseck::sidechannel
