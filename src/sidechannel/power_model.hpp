#pragma once
// Simulated power side-channel for an AES-128 implementation.
//
// Substitution for lab equipment (see DESIGN.md): each "trace" contains one
// sample per S-box lookup of the first AES round, modeled as
//   sample[b] = HW(sbox(pt[b] ^ k[b])) + N(0, noise_sigma)
// which is the standard academic leakage proxy (Hamming weight of the
// processed intermediate plus Gaussian measurement noise).
//
// Countermeasures modeled:
//  * First-order Boolean masking — the device processes sbox'(x ^ m) with a
//    fresh random mask per trace, so the unmasked intermediate never leaks;
//    first-order CPA fails regardless of trace count.
//  * Shuffling — S-box order is permuted per trace, spreading each byte's
//    leakage over 16 time samples (correlation drops ~16x, traces needed
//    grows ~256x).

#include <cstdint>
#include <vector>

#include "crypto/aes.hpp"
#include "util/rng.hpp"

namespace aseck::sidechannel {

struct Trace {
  std::array<std::uint8_t, 16> plaintext;
  std::vector<double> samples;  // 16 samples, one per S-box position
};

enum class Countermeasure { kNone, kMasking, kShuffling };

struct LeakageConfig {
  double noise_sigma = 1.0;
  Countermeasure countermeasure = Countermeasure::kNone;
};

/// Simulated device under attack: fixed key, leaky first round.
class LeakyAesDevice {
 public:
  LeakyAesDevice(const crypto::Block& key, LeakageConfig cfg,
                 std::uint64_t seed = 1);

  /// Encrypts a random plaintext and returns the leaked trace.
  Trace capture(util::Rng& plaintext_rng);

  /// Captures with a *chosen* plaintext (for TVLA fixed-class traces).
  Trace capture_chosen(const std::array<std::uint8_t, 16>& pt);

  const crypto::Block& key() const { return key_; }

 private:
  crypto::Block key_;
  LeakageConfig cfg_;
  util::Rng noise_rng_;
};

/// Correlation power analysis: recovers the 16 key bytes from traces.
struct CpaResult {
  crypto::Block recovered_key{};
  std::array<double, 16> best_correlation{};
  /// Bytes matching the true key (when provided).
  int correct_bytes(const crypto::Block& true_key) const;
};

CpaResult cpa_attack(const std::vector<Trace>& traces);

/// Runs CPA with growing trace counts; returns the smallest count (from the
/// given schedule) that recovers the full key, or 0 if none succeeds.
std::size_t cpa_traces_needed(LeakyAesDevice& device, util::Rng& rng,
                              const std::vector<std::size_t>& schedule);

/// TVLA (Welch t) fixed-vs-random leakage assessment: returns the maximum
/// |t| over sample points. |t| > 4.5 conventionally indicates leakage.
double tvla_max_t(LeakyAesDevice& device, util::Rng& rng, std::size_t traces_per_class);

}  // namespace aseck::sidechannel
