#pragma once
// Timing side-channel model: a MAC/passcode comparison with an early-exit
// loop leaks the length of the matching prefix through response latency.
// The attack recovers the secret byte-by-byte — the reason util::ct_equal
// exists and SHE comparisons are constant-time.

#include <cstdint>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace aseck::sidechannel {

/// Device that compares an attacker-supplied code against its secret.
class TimingLeakyVerifier {
 public:
  /// `per_byte_ns`: loop iteration cost; `jitter_ns`: measurement noise.
  TimingLeakyVerifier(util::Bytes secret, double per_byte_ns, double jitter_ns,
                      bool constant_time, std::uint64_t seed = 7);

  struct Response {
    bool accepted;
    double elapsed_ns;  // simulated response latency
  };
  Response try_code(util::BytesView code);

  std::uint64_t attempts() const { return attempts_; }
  std::size_t secret_len() const { return secret_.size(); }

 private:
  util::Bytes secret_;
  double per_byte_ns_;
  double jitter_ns_;
  bool constant_time_;
  util::Rng rng_;
  std::uint64_t attempts_ = 0;
};

/// Byte-by-byte timing attack: for each position, tries all 256 values with
/// `samples` repetitions and keeps the value with the highest mean latency.
/// Returns the recovered code (may be wrong under high jitter or against a
/// constant-time verifier).
util::Bytes timing_attack(TimingLeakyVerifier& device, std::size_t secret_len,
                          std::size_t samples);

}  // namespace aseck::sidechannel
